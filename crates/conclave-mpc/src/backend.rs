//! Unified MPC backend engine.
//!
//! [`MpcEngine`] executes individual relational operators under a configured
//! backend — secret sharing (Sharemind-like) or garbled circuits (Obliv-C /
//! ObliVM-like) — over cleartext inputs, returning the result together with
//! [`MpcStepStats`] (simulated runtime, primitive/gate counts, traffic and
//! memory). It also provides *analytic estimators* that produce the same
//! statistics from cardinalities alone, which the benchmark harness uses to
//! reproduce the paper's figures at scales that cannot be executed in-process
//! (up to 10⁹ records).

use crate::cost::{GarbledCostModel, PrimitiveCounts, SecretShareCostModel};
use crate::garbled::{gates, CircuitStats};
use crate::oblivious;
use crate::protocol::Protocol;
use crate::relation::SharedRelation;
use crate::share::Shares;
use conclave_engine::Relation;
use conclave_ir::expr::{BinOp, Expr};
use conclave_ir::ops::{Operand, Operator};
use conclave_net::NetworkModel;
use std::fmt;
use std::time::Duration;

/// Which MPC framework the backend models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum BackendKind {
    /// Three-party additive secret sharing (Sharemind-like).
    SharemindLike,
    /// Two-party garbled circuits (Obliv-C-like).
    OblivCLike,
    /// Two-party garbled circuits with a heavier runtime (ObliVM-like), used
    /// for the SMCQL comparison.
    OblivVmLike,
}

impl BackendKind {
    /// Number of computing parties the framework supports.
    pub fn parties(self) -> u32 {
        match self {
            BackendKind::SharemindLike => 3,
            BackendKind::OblivCLike | BackendKind::OblivVmLike => 2,
        }
    }

    /// Returns `true` for secret-sharing backends.
    pub fn is_secret_sharing(self) -> bool {
        matches!(self, BackendKind::SharemindLike)
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BackendKind::SharemindLike => "sharemind-like",
            BackendKind::OblivCLike => "obliv-c-like",
            BackendKind::OblivVmLike => "oblivm-like",
        };
        f.write_str(s)
    }
}

/// Configuration of an MPC backend instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpcBackendConfig {
    /// Framework being modelled.
    pub kind: BackendKind,
    /// Network model between the parties.
    pub network: NetworkModel,
    /// RNG seed for the sharing layer (determinism in tests and benches).
    pub seed: u64,
    /// Secret-sharing cost calibration.
    pub ss_cost: SecretShareCostModel,
    /// Garbled-circuit cost calibration.
    pub gc_cost: GarbledCostModel,
}

impl MpcBackendConfig {
    /// Default configuration for the given framework.
    pub fn new(kind: BackendKind) -> Self {
        let gc_cost = match kind {
            BackendKind::OblivVmLike => GarbledCostModel::obliv_vm(),
            _ => GarbledCostModel::obliv_c(),
        };
        MpcBackendConfig {
            kind,
            network: NetworkModel::lan(),
            seed: 0xC0C1A7E,
            ss_cost: SecretShareCostModel::default(),
            gc_cost,
        }
    }

    /// Sharemind-like defaults.
    pub fn sharemind() -> Self {
        Self::new(BackendKind::SharemindLike)
    }

    /// Obliv-C-like defaults.
    pub fn obliv_c() -> Self {
        Self::new(BackendKind::OblivCLike)
    }

    /// ObliVM-like defaults.
    pub fn obliv_vm() -> Self {
        Self::new(BackendKind::OblivVmLike)
    }
}

impl Default for MpcBackendConfig {
    fn default() -> Self {
        MpcBackendConfig::sharemind()
    }
}

/// Statistics for one MPC step (one operator, or one whole MPC job).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MpcStepStats {
    /// Simulated wall-clock time of the step.
    pub simulated_time: Duration,
    /// Secret-sharing primitive counts (zero for garbled-circuit backends).
    pub counts: PrimitiveCounts,
    /// Garbled-circuit gate counts (zero for secret-sharing backends).
    pub circuit: CircuitStats,
    /// Peak additional memory the step needs, in bytes (garbled backends).
    pub memory_bytes: f64,
    /// Total input rows processed.
    pub input_rows: u64,
    /// Output rows produced.
    pub output_rows: u64,
}

impl MpcStepStats {
    /// Merges another step's statistics (times add; the memory peak is the max).
    pub fn merge(&mut self, other: &MpcStepStats) {
        self.simulated_time += other.simulated_time;
        self.counts.merge(&other.counts);
        self.circuit.merge(&other.circuit);
        self.memory_bytes = self.memory_bytes.max(other.memory_bytes);
        self.input_rows += other.input_rows;
        self.output_rows = other.output_rows;
    }
}

/// Errors from the MPC engine.
#[derive(Debug, Clone, PartialEq)]
pub enum MpcError {
    /// The operator is not executable under this backend.
    Unsupported(String),
    /// The garbled-circuit backend exceeded its memory limit (the OOM cliffs
    /// of Figure 1).
    OutOfMemory {
        /// Bytes the computation would need.
        needed: f64,
        /// The backend's limit.
        limit: f64,
    },
    /// Execution failed (bad column, arity, etc.).
    Exec(String),
}

impl fmt::Display for MpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpcError::Unsupported(s) => write!(f, "unsupported under MPC: {s}"),
            MpcError::OutOfMemory { needed, limit } => write!(
                f,
                "garbled-circuit backend out of memory: needs {:.1} GB, limit {:.1} GB",
                needed / 1e9,
                limit / 1e9
            ),
            MpcError::Exec(s) => write!(f, "MPC execution failed: {s}"),
        }
    }
}

impl std::error::Error for MpcError {}

/// Result alias for MPC operations.
pub type MpcResult<T> = Result<T, MpcError>;

/// Executes relational operators under a simulated MPC backend.
#[derive(Debug)]
pub struct MpcEngine {
    config: MpcBackendConfig,
    proto: Protocol,
}

impl MpcEngine {
    /// Creates an engine for the given configuration.
    pub fn new(config: MpcBackendConfig) -> Self {
        let proto = Protocol::new(config.kind.parties() as usize, config.seed);
        MpcEngine { config, proto }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &MpcBackendConfig {
        &self.config
    }

    /// Mutable access to the underlying secret-sharing protocol (used by the
    /// driver to run hybrid protocols that interleave MPC and STP steps).
    pub fn protocol(&mut self) -> &mut Protocol {
        &mut self.proto
    }

    /// Secret-shares a cleartext relation into the engine.
    pub fn share(&mut self, rel: &Relation) -> MpcResult<SharedRelation> {
        SharedRelation::from_relation(rel, &mut self.proto).map_err(MpcError::Exec)
    }

    /// Secret-shares a columnar relation into the engine, column-at-a-time
    /// (used by the driver when the vectorized cleartext engine is active).
    pub fn share_columnar(
        &mut self,
        rel: &conclave_engine::ColumnarRelation,
    ) -> MpcResult<SharedRelation> {
        SharedRelation::from_columnar(rel, &mut self.proto).map_err(MpcError::Exec)
    }

    /// Secret-shares a [`conclave_engine::Table`], picking the
    /// column-at-a-time path whenever its columnar representation is already
    /// materialized (see [`SharedRelation::from_table`]).
    pub fn share_table(&mut self, table: &conclave_engine::Table) -> MpcResult<SharedRelation> {
        SharedRelation::from_table(table, &mut self.proto).map_err(MpcError::Exec)
    }

    /// Opens a shared relation back to cleartext.
    pub fn reconstruct(&mut self, rel: &SharedRelation) -> Relation {
        rel.reconstruct(&mut self.proto)
    }

    /// Converts the protocol's current primitive counters into step stats and
    /// resets them.
    pub fn drain_stats(&mut self, input_rows: u64, output_rows: u64) -> MpcStepStats {
        let counts = self.proto.counts();
        self.proto.reset_counts();
        MpcStepStats {
            simulated_time: self
                .config
                .ss_cost
                .time_no_overhead(&counts, &self.config.network),
            counts,
            circuit: CircuitStats::default(),
            memory_bytes: 0.0,
            input_rows,
            output_rows,
        }
    }

    /// Executes one operator on cleartext inputs: shares them, runs the
    /// oblivious protocol, reconstructs the result, and reports statistics
    /// (including the sharing/opening cost, as a standalone MPC job would pay).
    pub fn execute_op(
        &mut self,
        op: &Operator,
        inputs: &[&Relation],
    ) -> MpcResult<(Relation, MpcStepStats)> {
        let input_rows: u64 = inputs.iter().map(|r| r.num_rows() as u64).sum();
        match self.config.kind {
            BackendKind::SharemindLike => {
                self.proto.reset_counts();
                let shared_inputs: Vec<SharedRelation> = inputs
                    .iter()
                    .map(|r| self.share(r))
                    .collect::<MpcResult<_>>()?;
                self.execute_and_open(op, shared_inputs, input_rows)
            }
            BackendKind::OblivCLike | BackendKind::OblivVmLike => {
                self.execute_garbled(op, inputs, input_rows)
            }
        }
    }

    /// [`MpcEngine::execute_op`] over the unified [`conclave_engine::Table`]
    /// data plane. Secret-sharing backends share each input in whatever
    /// representation it already holds (columnar tables go column-at-a-time
    /// with no conversion); garbled backends materialize rows, which is the
    /// unavoidable share boundary for that substrate.
    pub fn execute_op_tables(
        &mut self,
        op: &Operator,
        inputs: &[&conclave_engine::Table],
    ) -> MpcResult<(Relation, MpcStepStats)> {
        let input_rows: u64 = inputs.iter().map(|t| t.num_rows() as u64).sum();
        match self.config.kind {
            BackendKind::SharemindLike => {
                self.proto.reset_counts();
                let shared_inputs: Vec<SharedRelation> = inputs
                    .iter()
                    .map(|t| self.share_table(t))
                    .collect::<MpcResult<_>>()?;
                self.execute_and_open(op, shared_inputs, input_rows)
            }
            BackendKind::OblivCLike | BackendKind::OblivVmLike => {
                let rows: Vec<&Relation> = inputs.iter().map(|t| t.as_rows()).collect();
                self.execute_garbled(op, &rows, input_rows)
            }
        }
    }

    /// Shared tail of the secret-sharing execution paths: run the oblivious
    /// protocol over already-shared inputs, open the result and charge the
    /// standalone-job overhead.
    fn execute_and_open(
        &mut self,
        op: &Operator,
        shared_inputs: Vec<SharedRelation>,
        input_rows: u64,
    ) -> MpcResult<(Relation, MpcStepStats)> {
        let refs: Vec<&SharedRelation> = shared_inputs.iter().collect();
        let shared_out = self.execute_shared(op, &refs)?;
        let out = self.reconstruct(&shared_out);
        let mut stats = self.drain_stats(input_rows, out.num_rows() as u64);
        stats.simulated_time += Duration::from_secs_f64(self.config.ss_cost.job_overhead);
        Ok((out, stats))
    }

    /// Executes one operator over already-shared relations (secret-sharing
    /// backends only). Statistics accumulate in the protocol counters; call
    /// [`MpcEngine::drain_stats`] to collect them.
    pub fn execute_shared(
        &mut self,
        op: &Operator,
        inputs: &[&SharedRelation],
    ) -> MpcResult<SharedRelation> {
        if !self.config.kind.is_secret_sharing() {
            return Err(MpcError::Unsupported(
                "execute_shared requires a secret-sharing backend".into(),
            ));
        }
        let need = |n: usize| -> MpcResult<()> {
            if inputs.len() == n {
                Ok(())
            } else {
                Err(MpcError::Exec(format!(
                    "{} expects {n} inputs, got {}",
                    op.name(),
                    inputs.len()
                )))
            }
        };
        let proto = &mut self.proto;
        match op {
            Operator::Project { columns } => {
                need(1)?;
                inputs[0].project(columns).map_err(MpcError::Exec)
            }
            Operator::Concat => {
                let parts: Vec<SharedRelation> = inputs.iter().map(|r| (*r).clone()).collect();
                SharedRelation::concat(&parts).map_err(MpcError::Exec)
            }
            Operator::Filter { predicate } => {
                need(1)?;
                oblivious_filter(inputs[0], predicate, proto)
            }
            Operator::Join {
                left_keys,
                right_keys,
                ..
            } => {
                need(2)?;
                oblivious::cartesian_join(inputs[0], inputs[1], left_keys, right_keys, proto)
                    .map_err(MpcError::Exec)
            }
            Operator::Aggregate {
                group_by,
                func,
                over,
                out,
            } => {
                need(1)?;
                if group_by.len() > 1 {
                    return Err(MpcError::Unsupported(
                        "multi-column group-by under MPC".into(),
                    ));
                }
                let sorted = if let Some(key) = group_by.first() {
                    oblivious::sort_by(inputs[0], key, true, proto).map_err(MpcError::Exec)?
                } else {
                    inputs[0].clone()
                };
                oblivious::aggregate_sorted(&sorted, group_by, *func, over.as_deref(), out, proto)
                    .map_err(MpcError::Exec)
            }
            Operator::Multiply { out, operands } => {
                need(1)?;
                mpc_multiply(inputs[0], out, operands, proto)
            }
            Operator::SortBy { column, ascending } => {
                need(1)?;
                oblivious::sort_by(inputs[0], column, *ascending, proto).map_err(MpcError::Exec)
            }
            Operator::Merge { column, ascending } => {
                let parts: Vec<SharedRelation> = inputs.iter().map(|r| (*r).clone()).collect();
                oblivious::merge_sorted(&parts, column, *ascending, proto).map_err(MpcError::Exec)
            }
            Operator::Limit { n } => {
                need(1)?;
                let mut rel = inputs[0].clone();
                rel.rows.truncate(*n);
                Ok(rel)
            }
            Operator::Shuffle => {
                need(1)?;
                Ok(oblivious::shuffle(inputs[0], proto))
            }
            Operator::Enumerate { out } => {
                need(1)?;
                let mut schema = inputs[0].schema.clone();
                schema
                    .push(conclave_ir::schema::ColumnDef::new(
                        out,
                        conclave_ir::types::DataType::Int,
                    ))
                    .map_err(|e| MpcError::Exec(e.to_string()))?;
                let rows = inputs[0]
                    .rows
                    .iter()
                    .enumerate()
                    .map(|(i, r)| {
                        let mut row = r.clone();
                        row.push(proto.constant(i as i64));
                        row
                    })
                    .collect();
                Ok(SharedRelation { schema, rows })
            }
            Operator::ObliviousSelect { index_column } => {
                need(2)?;
                oblivious::oblivious_select(inputs[0], inputs[1], index_column, proto)
                    .map_err(MpcError::Exec)
            }
            Operator::Distinct { columns } => {
                need(1)?;
                let proj = inputs[0].project(columns).map_err(MpcError::Exec)?;
                let key = columns
                    .first()
                    .ok_or_else(|| MpcError::Exec("distinct needs columns".into()))?;
                let sorted = oblivious::sort_by(&proj, key, true, proto).map_err(MpcError::Exec)?;
                distinct_sorted(&sorted, proto)
            }
            Operator::DistinctCount { column, out } => {
                need(1)?;
                let proj = inputs[0]
                    .project(std::slice::from_ref(column))
                    .map_err(MpcError::Exec)?;
                let sorted =
                    oblivious::sort_by(&proj, column, true, proto).map_err(MpcError::Exec)?;
                let distinct = distinct_sorted(&sorted, proto)?;
                let n = distinct.num_rows() as i64;
                let schema =
                    conclave_ir::schema::Schema::new(vec![conclave_ir::schema::ColumnDef::new(
                        out,
                        conclave_ir::types::DataType::Int,
                    )]);
                Ok(SharedRelation {
                    schema,
                    rows: vec![vec![proto.constant(n)]],
                })
            }
            Operator::RevealTo { .. }
            | Operator::Open { .. }
            | Operator::CloseTo
            | Operator::Collect { .. } => {
                need(1)?;
                Ok(inputs[0].clone())
            }
            Operator::Divide { .. } => Err(MpcError::Unsupported(
                "division under MPC; Conclave pushes divisions out of the MPC frontier".into(),
            )),
            Operator::Input { .. } => Err(MpcError::Unsupported("input binding".into())),
            Operator::HybridJoin { .. }
            | Operator::PublicJoin { .. }
            | Operator::HybridAggregate { .. } => Err(MpcError::Unsupported(format!(
                "{} is a multi-site protocol orchestrated by the driver",
                op.name()
            ))),
        }
    }

    // ------------------------------------------------------------------
    // Garbled-circuit execution (gate counting + memory model).
    // ------------------------------------------------------------------

    fn execute_garbled(
        &mut self,
        op: &Operator,
        inputs: &[&Relation],
        input_rows: u64,
    ) -> MpcResult<(Relation, MpcStepStats)> {
        let cols: u64 = inputs
            .iter()
            .map(|r| r.num_cols() as u64)
            .max()
            .unwrap_or(1);
        let (and_gates, memory) = self.garbled_cost_of(op, inputs)?;
        if self.config.gc_cost.exceeds_memory(memory) {
            return Err(MpcError::OutOfMemory {
                needed: memory,
                limit: self.config.gc_cost.memory_limit_bytes,
            });
        }
        let out =
            conclave_engine::execute(op, inputs).map_err(|e| MpcError::Exec(e.to_string()))?;
        let circuit = CircuitStats {
            and_gates,
            xor_gates: and_gates * 2,
            input_wires: input_rows * cols * 64,
            output_wires: out.num_rows() as u64 * out.num_cols() as u64 * 64,
        };
        let stats = MpcStepStats {
            simulated_time: self.config.gc_cost.time(and_gates, &self.config.network),
            counts: PrimitiveCounts::default(),
            circuit,
            memory_bytes: memory,
            input_rows,
            output_rows: out.num_rows() as u64,
        };
        Ok((out, stats))
    }

    /// Gate count and memory footprint of an operator under garbled circuits.
    fn garbled_cost_of(&self, op: &Operator, inputs: &[&Relation]) -> MpcResult<(u64, f64)> {
        let rows: Vec<u64> = inputs.iter().map(|r| r.num_rows() as u64).collect();
        let widths: Vec<u64> = inputs.iter().map(|r| r.num_cols() as u64).collect();
        let total_rows: u64 = rows.iter().sum();
        let per_record = self.config.gc_cost.state_bytes_per_record;
        Ok(match op {
            Operator::Join { left_keys, .. } => {
                let n = rows.first().copied().unwrap_or(0);
                let m = rows.get(1).copied().unwrap_or(0);
                let w = widths.iter().sum::<u64>();
                (
                    gates::join(n, m, left_keys.len() as u64, w),
                    total_rows as f64 * per_record * 10.0,
                )
            }
            Operator::Aggregate { group_by, .. } => (
                gates::aggregate(total_rows, group_by.len() as u64),
                total_rows as f64 * per_record * 3.0,
            ),
            Operator::Distinct { .. }
            | Operator::DistinctCount { .. }
            | Operator::SortBy { .. } => (
                gates::distinct(total_rows),
                total_rows as f64 * per_record * 3.0,
            ),
            Operator::Filter { predicate } => (
                total_rows * predicate.op_count() as u64 * 64,
                total_rows as f64 * per_record,
            ),
            Operator::Multiply { operands, .. } => (
                total_rows * operands.len().saturating_sub(1) as u64 * 64 * 64,
                total_rows as f64 * per_record,
            ),
            _ => (
                gates::project(total_rows, widths.iter().copied().max().unwrap_or(1)),
                total_rows as f64 * per_record,
            ),
        })
    }

    // ------------------------------------------------------------------
    // Analytic estimators (for paper-scale cardinalities).
    // ------------------------------------------------------------------

    /// Estimates the cost of secret-sharing `rows × cols` elements into the MPC.
    pub fn estimate_input(&self, rows: u64, cols: u64) -> MpcStepStats {
        let counts = PrimitiveCounts {
            input_elems: rows * cols,
            ..Default::default()
        };
        self.stats_from_counts(counts, rows, rows)
    }

    /// Estimates the cost of opening `rows × cols` elements out of the MPC.
    pub fn estimate_open(&self, rows: u64, cols: u64) -> MpcStepStats {
        let counts = PrimitiveCounts {
            opened_elems: rows * cols,
            ..Default::default()
        };
        self.stats_from_counts(counts, rows, rows)
    }

    /// Estimates the cost of one operator from cardinalities alone.
    ///
    /// `input_rows`/`input_cols` describe each input; `output_rows` is the
    /// (estimated) result cardinality. The same primitive-count formulas as
    /// the real execution path are used, so estimates and measurements agree
    /// asymptotically.
    pub fn estimate_op(
        &self,
        op: &Operator,
        input_rows: &[u64],
        input_cols: &[u64],
        output_rows: u64,
    ) -> MpcResult<MpcStepStats> {
        let n: u64 = input_rows.iter().sum();
        let cols: u64 = input_cols.iter().copied().max().unwrap_or(1);
        match self.config.kind {
            BackendKind::SharemindLike => {
                let counts = match op {
                    Operator::Join { left_keys, .. } => PrimitiveCounts {
                        equalities: input_rows.first().copied().unwrap_or(0)
                            * input_rows.get(1).copied().unwrap_or(0)
                            * left_keys.len() as u64,
                        ..Default::default()
                    },
                    Operator::Aggregate { group_by, .. } => {
                        let mut c = sort_counts(n, cols);
                        if group_by.is_empty() {
                            c = PrimitiveCounts::default();
                        }
                        c.merge(&PrimitiveCounts {
                            equalities: n,
                            mults: 2 * n,
                            shuffled_elems: n * (cols + 1),
                            opened_elems: n,
                            ..Default::default()
                        });
                        c
                    }
                    Operator::SortBy { .. }
                    | Operator::Distinct { .. }
                    | Operator::DistinctCount { .. } => {
                        let mut c = sort_counts(n, cols);
                        c.merge(&PrimitiveCounts {
                            equalities: n,
                            opened_elems: n,
                            ..Default::default()
                        });
                        c
                    }
                    Operator::Merge { .. } => PrimitiveCounts {
                        comparisons: n * log2(n),
                        mults: 2 * n * log2(n) * cols,
                        ..Default::default()
                    },
                    Operator::Filter { predicate } => PrimitiveCounts {
                        comparisons: n * predicate.op_count() as u64,
                        shuffled_elems: n * cols,
                        opened_elems: n,
                        ..Default::default()
                    },
                    Operator::Multiply { operands, .. } => PrimitiveCounts {
                        mults: n * operands.len().saturating_sub(1) as u64,
                        ..Default::default()
                    },
                    Operator::Shuffle => PrimitiveCounts {
                        shuffled_elems: n * cols,
                        ..Default::default()
                    },
                    Operator::ObliviousSelect { .. } => PrimitiveCounts {
                        mults: (n + output_rows) * log2(n + output_rows) * cols,
                        ..Default::default()
                    },
                    Operator::Project { .. }
                    | Operator::Concat
                    | Operator::Limit { .. }
                    | Operator::Enumerate { .. }
                    | Operator::RevealTo { .. }
                    | Operator::CloseTo
                    | Operator::Open { .. }
                    | Operator::Collect { .. } => PrimitiveCounts::default(),
                    Operator::HybridJoin { .. } => {
                        return Ok(self.estimate_hybrid_join(
                            input_rows.first().copied().unwrap_or(0),
                            input_rows.get(1).copied().unwrap_or(0),
                            output_rows,
                            cols,
                        ))
                    }
                    Operator::HybridAggregate { .. } => {
                        return Ok(self.estimate_hybrid_aggregate(n, output_rows, cols))
                    }
                    Operator::PublicJoin { .. } => {
                        return Ok(self.estimate_public_join(n, output_rows))
                    }
                    other => {
                        return Err(MpcError::Unsupported(format!(
                            "no secret-sharing estimate for {}",
                            other.name()
                        )))
                    }
                };
                Ok(self.stats_from_counts(counts, n, output_rows))
            }
            BackendKind::OblivCLike | BackendKind::OblivVmLike => {
                let per_record = self.config.gc_cost.state_bytes_per_record;
                let (and_gates, memory) = match op {
                    Operator::Join { left_keys, .. } => (
                        gates::join(
                            input_rows.first().copied().unwrap_or(0),
                            input_rows.get(1).copied().unwrap_or(0),
                            left_keys.len() as u64,
                            cols,
                        ),
                        n as f64 * per_record * 10.0,
                    ),
                    Operator::Aggregate { group_by, .. } => (
                        gates::aggregate(n, group_by.len() as u64),
                        n as f64 * per_record * 3.0,
                    ),
                    Operator::Distinct { .. }
                    | Operator::DistinctCount { .. }
                    | Operator::SortBy { .. } => (gates::distinct(n), n as f64 * per_record * 3.0),
                    Operator::Filter { predicate } => {
                        (n * predicate.op_count() as u64 * 64, n as f64 * per_record)
                    }
                    _ => (gates::project(n, cols), n as f64 * per_record),
                };
                if self.config.gc_cost.exceeds_memory(memory) {
                    return Err(MpcError::OutOfMemory {
                        needed: memory,
                        limit: self.config.gc_cost.memory_limit_bytes,
                    });
                }
                Ok(MpcStepStats {
                    simulated_time: self.config.gc_cost.time(and_gates, &self.config.network),
                    counts: PrimitiveCounts::default(),
                    circuit: CircuitStats {
                        and_gates,
                        xor_gates: 2 * and_gates,
                        input_wires: n * cols * 64,
                        output_wires: output_rows * cols * 64,
                    },
                    memory_bytes: memory,
                    input_rows: n,
                    output_rows,
                })
            }
        }
    }

    /// Estimates the MPC-side cost of the hybrid join protocol of §5.3
    /// (Figure 3): oblivious shuffles of both inputs, revealing the key
    /// columns to the STP, secret-sharing the index relations back, two
    /// oblivious-select invocations, and a final shuffle of the result.
    pub fn estimate_hybrid_join(
        &self,
        n_left: u64,
        n_right: u64,
        output_rows: u64,
        cols: u64,
    ) -> MpcStepStats {
        let n = n_left + n_right;
        let total = (n + output_rows).max(2);
        let counts = PrimitiveCounts {
            shuffled_elems: n * cols + output_rows * 2 * cols,
            opened_elems: n,                   // key columns revealed to the STP
            input_elems: 2 * output_rows,      // index relations shared back in
            mults: total * log2(total) * cols, // oblivious indexing
            ..Default::default()
        };
        self.stats_from_counts(counts, n, output_rows)
    }

    /// Estimates the MPC-side cost of the hybrid aggregation protocol of
    /// §5.3: an oblivious shuffle, revealing the group-by column, re-sharing
    /// the equality flags, a linear oblivious accumulation scan, and a final
    /// shuffle-and-reveal of the flags.
    pub fn estimate_hybrid_aggregate(&self, n: u64, output_rows: u64, cols: u64) -> MpcStepStats {
        let counts = PrimitiveCounts {
            shuffled_elems: 2 * n * cols,
            opened_elems: 2 * n, // group-by column + final flags
            input_elems: n,      // equality flags shared by the STP
            mults: 2 * n,        // conditional accumulation muxes
            ..Default::default()
        };
        self.stats_from_counts(counts, n, output_rows)
    }

    /// Estimates the cost of the public join of §5.3: the MPC is avoided
    /// entirely; parties exchange key columns in the clear and the helper
    /// joins locally, so the only cost charged here is data movement.
    pub fn estimate_public_join(&self, n: u64, output_rows: u64) -> MpcStepStats {
        let bytes = (n + output_rows) * 8;
        MpcStepStats {
            simulated_time: self.config.network.transfer_time(bytes),
            counts: PrimitiveCounts::default(),
            circuit: CircuitStats::default(),
            memory_bytes: 0.0,
            input_rows: n,
            output_rows,
        }
    }

    /// Builds step statistics from primitive counts. Also the entry point
    /// for externally-measured counts: the distributed party runtime
    /// executes operators itself and reports its counters here so
    /// simulated-time accounting stays uniform across both modes.
    pub fn stats_from_counts(
        &self,
        counts: PrimitiveCounts,
        input_rows: u64,
        output_rows: u64,
    ) -> MpcStepStats {
        MpcStepStats {
            simulated_time: self
                .config
                .ss_cost
                .time_no_overhead(&counts, &self.config.network),
            counts,
            circuit: CircuitStats::default(),
            memory_bytes: 0.0,
            input_rows,
            output_rows,
        }
    }
}

/// Primitive counts of a Batcher sort of `n` rows of `cols` columns.
fn sort_counts(n: u64, cols: u64) -> PrimitiveCounts {
    let n = n.max(2);
    let log = log2(n);
    let compare_exchanges = n * log * log / 4;
    PrimitiveCounts {
        comparisons: compare_exchanges,
        mults: 2 * compare_exchanges * cols,
        ..Default::default()
    }
}

fn log2(n: u64) -> u64 {
    64 - n.max(2).leading_zeros() as u64
}

/// Evaluates a (restricted) predicate over a shared row, producing a shared
/// 0/1 bit. Supported forms: comparisons between columns and integer
/// literals, and boolean combinations thereof.
fn eval_predicate_shared(
    expr: &Expr,
    rel: &SharedRelation,
    row: &[Shares],
    proto: &mut Protocol,
) -> MpcResult<Shares> {
    match expr {
        Expr::Bin { op, left, right } => {
            match op {
                BinOp::And | BinOp::Or => {
                    let l = eval_predicate_shared(left, rel, row, proto)?;
                    let r = eval_predicate_shared(right, rel, row, proto)?;
                    let prod = proto.mul(&l, &r);
                    if *op == BinOp::And {
                        Ok(prod)
                    } else {
                        // a OR b = a + b - a·b
                        let sum = proto.add(&l, &r);
                        Ok(proto.sub(&sum, &prod))
                    }
                }
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    let l = operand_shares(left, rel, row, proto)?;
                    let r = operand_shares(right, rel, row, proto)?;
                    let result = match op {
                        BinOp::Eq => proto.eq(&l, &r),
                        BinOp::Ne => {
                            let e = proto.eq(&l, &r);
                            let one = proto.constant(1);
                            proto.sub(&one, &e)
                        }
                        BinOp::Lt => proto.lt(&l, &r),
                        BinOp::Gt => proto.lt(&r, &l),
                        BinOp::Le => {
                            let gt = proto.lt(&r, &l);
                            let one = proto.constant(1);
                            proto.sub(&one, &gt)
                        }
                        BinOp::Ge => {
                            let lt = proto.lt(&l, &r);
                            let one = proto.constant(1);
                            proto.sub(&one, &lt)
                        }
                        _ => unreachable!(),
                    };
                    Ok(result)
                }
                _ => Err(MpcError::Unsupported(format!(
                    "arithmetic operator {op} in an MPC filter predicate"
                ))),
            }
        }
        Expr::Not(inner) => {
            let b = eval_predicate_shared(inner, rel, row, proto)?;
            let one = proto.constant(1);
            Ok(proto.sub(&one, &b))
        }
        other => Err(MpcError::Unsupported(format!(
            "predicate form `{other}` under MPC"
        ))),
    }
}

fn operand_shares(
    expr: &Expr,
    rel: &SharedRelation,
    row: &[Shares],
    proto: &mut Protocol,
) -> MpcResult<Shares> {
    match expr {
        Expr::Col(name) => {
            let idx = rel
                .col_index(name)
                .ok_or_else(|| MpcError::Exec(format!("unknown column `{name}`")))?;
            Ok(row[idx].clone())
        }
        Expr::Const(v) => {
            let i = v
                .as_int()
                .ok_or_else(|| MpcError::Unsupported("non-integer literal under MPC".into()))?;
            Ok(proto.constant(i))
        }
        other => Err(MpcError::Unsupported(format!(
            "operand form `{other}` under MPC"
        ))),
    }
}

/// Oblivious filter: computes the predicate bit per row, shuffles, reveals
/// the bits and keeps the selected rows (leaking only the output size, like
/// the paper's non-padded operators).
fn oblivious_filter(
    rel: &SharedRelation,
    predicate: &Expr,
    proto: &mut Protocol,
) -> MpcResult<SharedRelation> {
    let mut flagged_rows = Vec::with_capacity(rel.num_rows());
    for row in &rel.rows {
        let flag = eval_predicate_shared(predicate, rel, row, proto)?;
        let mut r = row.clone();
        r.push(flag);
        flagged_rows.push(r);
    }
    let mut schema = rel.schema.clone();
    schema
        .push(conclave_ir::schema::ColumnDef::new(
            "__filter_flag",
            conclave_ir::types::DataType::Int,
        ))
        .map_err(|e| MpcError::Exec(e.to_string()))?;
    let flagged = SharedRelation {
        schema,
        rows: flagged_rows,
    };
    let shuffled = oblivious::shuffle(&flagged, proto);
    let mut rows = Vec::new();
    for row in shuffled.rows {
        let flag = row.last().expect("flag present").clone();
        if proto.open(&flag) == 1 {
            rows.push(row[..row.len() - 1].to_vec());
        }
    }
    Ok(SharedRelation {
        schema: rel.schema.clone(),
        rows,
    })
}

/// Column arithmetic under MPC: multiplies operand columns/literals into `out`.
fn mpc_multiply(
    rel: &SharedRelation,
    out: &str,
    operands: &[Operand],
    proto: &mut Protocol,
) -> MpcResult<SharedRelation> {
    let replace = rel.col_index(out);
    let mut schema = rel.schema.clone();
    if replace.is_none() {
        schema
            .push(conclave_ir::schema::ColumnDef::new(
                out,
                conclave_ir::types::DataType::Int,
            ))
            .map_err(|e| MpcError::Exec(e.to_string()))?;
    }
    let mut rows = Vec::with_capacity(rel.num_rows());
    for row in &rel.rows {
        let mut acc = proto.constant(1);
        let mut first = true;
        for o in operands {
            match o {
                Operand::Col(c) => {
                    let idx = rel
                        .col_index(c)
                        .ok_or_else(|| MpcError::Exec(format!("unknown column `{c}`")))?;
                    if first {
                        acc = row[idx].clone();
                        first = false;
                    } else {
                        acc = proto.mul(&acc, &row[idx]);
                    }
                }
                Operand::Lit(v) => {
                    let i = v.as_int().ok_or_else(|| {
                        MpcError::Unsupported("non-integer literal under MPC".into())
                    })?;
                    acc = proto.mul_public(&acc, i);
                    first = false;
                }
            }
        }
        let mut new_row = row.clone();
        match replace {
            Some(i) => new_row[i] = acc,
            None => new_row.push(acc),
        }
        rows.push(new_row);
    }
    Ok(SharedRelation { schema, rows })
}

/// Removes duplicate adjacent rows (over all columns) from a key-sorted
/// relation, the core of the MPC `distinct` operator.
fn distinct_sorted(rel: &SharedRelation, proto: &mut Protocol) -> MpcResult<SharedRelation> {
    if rel.num_rows() == 0 {
        return Ok(rel.clone());
    }
    let mut keep_flags: Vec<Shares> = Vec::with_capacity(rel.num_rows());
    keep_flags.push(proto.constant(1));
    for i in 1..rel.num_rows() {
        // keep = 1 - all-columns-equal(previous, current)
        let mut all_eq = proto.constant(1);
        for c in 0..rel.num_cols() {
            let e = proto.eq(&rel.rows[i][c], &rel.rows[i - 1][c]);
            all_eq = proto.mul(&all_eq, &e);
        }
        let one = proto.constant(1);
        keep_flags.push(proto.sub(&one, &all_eq));
    }
    let mut rows = Vec::new();
    for (i, row) in rel.rows.iter().enumerate() {
        if proto.open(&keep_flags[i]) == 1 {
            rows.push(row.clone());
        }
    }
    Ok(SharedRelation {
        schema: rel.schema.clone(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use conclave_engine::execute;
    use conclave_ir::ops::{AggFunc, JoinKind};

    fn sharemind() -> MpcEngine {
        MpcEngine::new(MpcBackendConfig::sharemind())
    }

    fn sales() -> Relation {
        Relation::from_ints(
            &["companyID", "price"],
            &[vec![1, 10], vec![2, 5], vec![1, 20], vec![3, 7], vec![2, 5]],
        )
    }

    #[test]
    fn backend_kind_properties() {
        assert_eq!(BackendKind::SharemindLike.parties(), 3);
        assert_eq!(BackendKind::OblivCLike.parties(), 2);
        assert!(BackendKind::SharemindLike.is_secret_sharing());
        assert!(!BackendKind::OblivVmLike.is_secret_sharing());
        assert_eq!(BackendKind::SharemindLike.to_string(), "sharemind-like");
    }

    #[test]
    fn sharemind_aggregate_matches_cleartext() {
        let mut eng = sharemind();
        let rel = sales();
        let op = Operator::Aggregate {
            group_by: vec!["companyID".into()],
            func: AggFunc::Sum,
            over: Some("price".into()),
            out: "rev".into(),
        };
        let (out, stats) = eng.execute_op(&op, &[&rel]).unwrap();
        let expected = execute(&op, &[&rel]).unwrap();
        assert!(out.same_rows_unordered(&expected));
        assert!(stats.counts.comparisons > 0);
        assert!(
            stats.simulated_time > Duration::from_secs(1),
            "includes job overhead"
        );
        assert_eq!(stats.input_rows, 5);
        assert_eq!(stats.output_rows, 3);
    }

    #[test]
    fn sharemind_join_matches_cleartext_and_counts_quadratic_equalities() {
        let mut eng = sharemind();
        let left = Relation::from_ints(&["k", "a"], &[vec![1, 1], vec![2, 2], vec![3, 3]]);
        let right = Relation::from_ints(&["k", "b"], &[vec![2, 20], vec![3, 30], vec![4, 40]]);
        let op = Operator::Join {
            left_keys: vec!["k".into()],
            right_keys: vec!["k".into()],
            kind: JoinKind::Inner,
        };
        let (out, stats) = eng.execute_op(&op, &[&left, &right]).unwrap();
        let expected = execute(&op, &[&left, &right]).unwrap();
        assert!(out.same_rows_unordered(&expected));
        assert_eq!(stats.counts.equalities, 9);
    }

    #[test]
    fn sharemind_filter_multiply_sort_limit() {
        let mut eng = sharemind();
        let rel = sales();
        let filter = Operator::Filter {
            predicate: Expr::col("price").gt(Expr::lit(6)),
        };
        let (out, _) = eng.execute_op(&filter, &[&rel]).unwrap();
        assert!(out.same_rows_unordered(&execute(&filter, &[&rel]).unwrap()));

        let mul = Operator::Multiply {
            out: "sq".into(),
            operands: vec![
                Operand::col("price"),
                Operand::col("price"),
                Operand::lit(2),
            ],
        };
        let (out, _) = eng.execute_op(&mul, &[&rel]).unwrap();
        assert_eq!(
            out.column_values("sq").unwrap()[0],
            conclave_ir::types::Value::Int(200)
        );

        let sort = Operator::SortBy {
            column: "price".into(),
            ascending: true,
        };
        let (out, _) = eng.execute_op(&sort, &[&rel]).unwrap();
        assert!(out.is_sorted_by("price", true));

        let limit = Operator::Limit { n: 2 };
        let (out, _) = eng.execute_op(&limit, &[&rel]).unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn sharemind_distinct_and_distinct_count() {
        let mut eng = sharemind();
        let rel = sales();
        let d = Operator::Distinct {
            columns: vec!["companyID".into()],
        };
        let (out, _) = eng.execute_op(&d, &[&rel]).unwrap();
        assert_eq!(out.num_rows(), 3);
        let dc = Operator::DistinctCount {
            column: "price".into(),
            out: "n".into(),
        };
        let (out, _) = eng.execute_op(&dc, &[&rel]).unwrap();
        assert_eq!(out.scalar(), Some(&conclave_ir::types::Value::Int(4)));
    }

    #[test]
    fn complex_predicates_under_mpc() {
        let mut eng = sharemind();
        let rel = sales();
        let pred = Expr::col("price")
            .ge(Expr::lit(5))
            .and(Expr::col("companyID").ne(Expr::lit(3)))
            .or(Expr::col("price").eq(Expr::lit(7)));
        let op = Operator::Filter {
            predicate: pred.clone(),
        };
        let (out, _) = eng.execute_op(&op, &[&rel]).unwrap();
        let expected = execute(&op, &[&rel]).unwrap();
        assert!(out.same_rows_unordered(&expected));
        // An arithmetic predicate is rejected.
        let bad = Operator::Filter {
            predicate: Expr::col("price").add(Expr::lit(1)),
        };
        assert!(matches!(
            eng.execute_op(&bad, &[&rel]),
            Err(MpcError::Unsupported(_))
        ));
    }

    #[test]
    fn unsupported_operators() {
        let mut eng = sharemind();
        let rel = sales();
        assert!(matches!(
            eng.execute_op(
                &Operator::Divide {
                    out: "x".into(),
                    num: Operand::col("price"),
                    den: Operand::lit(2)
                },
                &[&rel]
            ),
            Err(MpcError::Unsupported(_))
        ));
        assert!(eng
            .execute_op(
                &Operator::HybridJoin {
                    left_keys: vec!["companyID".into()],
                    right_keys: vec!["companyID".into()],
                    stp: 1
                },
                &[&rel, &rel]
            )
            .is_err());
        // Multi-column group-by is not supported under MPC.
        assert!(eng
            .execute_op(
                &Operator::Aggregate {
                    group_by: vec!["companyID".into(), "price".into()],
                    func: AggFunc::Count,
                    over: None,
                    out: "n".into()
                },
                &[&rel]
            )
            .is_err());
    }

    #[test]
    fn execute_op_tables_matches_execute_op_and_avoids_conversions() {
        let rel = sales();
        let op = Operator::Aggregate {
            group_by: vec!["companyID".into()],
            func: AggFunc::Sum,
            over: Some("price".into()),
            out: "rev".into(),
        };
        let mut eng = sharemind();
        let (expected, row_stats) = eng.execute_op(&op, &[&rel]).unwrap();
        // Columnar-backed table: shared column-at-a-time, zero conversions.
        let mut eng2 = sharemind();
        let table = conclave_engine::Table::from_columns(
            conclave_engine::ColumnarRelation::from_rows(&rel),
        );
        let (out, stats) = eng2.execute_op_tables(&op, &[&table]).unwrap();
        assert!(out.same_rows_unordered(&expected));
        assert_eq!(table.conversion_counts().total(), 0);
        assert_eq!(stats.counts.input_elems, row_stats.counts.input_elems);
        // Garbled backends take the row path through the same entry point.
        let mut gc = MpcEngine::new(MpcBackendConfig::obliv_c());
        let rows_table = conclave_engine::Table::from_rows(rel.clone());
        let (gc_out, gc_stats) = gc.execute_op_tables(&op, &[&rows_table]).unwrap();
        assert!(gc_out.same_rows_unordered(&expected));
        assert!(gc_stats.circuit.and_gates > 0);
    }

    #[test]
    fn garbled_backend_executes_and_counts_gates() {
        let mut eng = MpcEngine::new(MpcBackendConfig::obliv_c());
        let rel = sales();
        let op = Operator::Aggregate {
            group_by: vec!["companyID".into()],
            func: AggFunc::Sum,
            over: Some("price".into()),
            out: "rev".into(),
        };
        let (out, stats) = eng.execute_op(&op, &[&rel]).unwrap();
        assert!(out.same_rows_unordered(&execute(&op, &[&rel]).unwrap()));
        assert!(stats.circuit.and_gates > 0);
        assert_eq!(stats.counts, PrimitiveCounts::default());
        // execute_shared is a secret-sharing-only API.
        let mut p = Protocol::new(2, 1);
        let shared = SharedRelation::from_relation(&rel, &mut p).unwrap();
        assert!(eng.execute_shared(&Operator::Shuffle, &[&shared]).is_err());
    }

    #[test]
    fn garbled_join_hits_out_of_memory_at_figure_1_scale() {
        let mut eng = MpcEngine::new(MpcBackendConfig::obliv_c());
        let n = 20_000usize;
        let rows: Vec<Vec<i64>> = (0..n as i64).map(|i| vec![i, i]).collect();
        let big = Relation::from_ints(&["k", "v"], &rows);
        let op = Operator::Join {
            left_keys: vec!["k".into()],
            right_keys: vec!["k".into()],
            kind: JoinKind::Inner,
        };
        match eng.execute_op(&op, &[&big, &big]) {
            Err(MpcError::OutOfMemory { needed, limit }) => {
                assert!(needed > limit);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
        // Estimates hit the same wall.
        assert!(matches!(
            eng.estimate_op(&op, &[40_000, 40_000], &[2, 2], 40_000),
            Err(MpcError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn estimates_track_paper_asymptotics() {
        let eng = sharemind();
        let join = Operator::Join {
            left_keys: vec!["k".into()],
            right_keys: vec!["k".into()],
            kind: JoinKind::Inner,
        };
        let t1 = eng
            .estimate_op(&join, &[1_000, 1_000], &[2, 2], 1_000)
            .unwrap()
            .simulated_time
            .as_secs_f64();
        let t2 = eng
            .estimate_op(&join, &[2_000, 2_000], &[2, 2], 2_000)
            .unwrap()
            .simulated_time
            .as_secs_f64();
        assert!((t2 / t1 - 4.0).abs() < 0.5, "MPC join should be quadratic");

        // Hybrid join is asymptotically better than the MPC join at scale.
        let hybrid = eng.estimate_hybrid_join(100_000, 100_000, 100_000, 2);
        let full = eng
            .estimate_op(&join, &[100_000, 100_000], &[2, 2], 100_000)
            .unwrap();
        assert!(hybrid.simulated_time < full.simulated_time / 10);

        // Public join is cheaper still.
        let public = eng.estimate_public_join(200_000, 100_000);
        assert!(public.simulated_time < hybrid.simulated_time);

        // Hybrid aggregation beats the sort-based MPC aggregation.
        let agg = Operator::Aggregate {
            group_by: vec!["k".into()],
            func: AggFunc::Sum,
            over: Some("v".into()),
            out: "s".into(),
        };
        let hybrid_agg = eng.estimate_hybrid_aggregate(100_000, 10_000, 2);
        let full_agg = eng.estimate_op(&agg, &[100_000], &[2], 10_000).unwrap();
        assert!(hybrid_agg.simulated_time < full_agg.simulated_time);
    }

    #[test]
    fn estimate_input_and_open_scale_linearly() {
        let eng = sharemind();
        let a = eng.estimate_input(1_000, 2).simulated_time.as_secs_f64();
        let b = eng.estimate_input(10_000, 2).simulated_time.as_secs_f64();
        assert!((b / a - 10.0).abs() < 0.5);
        assert!(eng.estimate_open(1_000, 2).simulated_time > Duration::ZERO);
    }

    #[test]
    fn step_stats_merge() {
        let mut a = MpcStepStats {
            simulated_time: Duration::from_secs(1),
            memory_bytes: 10.0,
            input_rows: 5,
            output_rows: 5,
            ..Default::default()
        };
        let b = MpcStepStats {
            simulated_time: Duration::from_secs(2),
            memory_bytes: 3.0,
            input_rows: 7,
            output_rows: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.simulated_time, Duration::from_secs(3));
        assert_eq!(a.memory_bytes, 10.0);
        assert_eq!(a.input_rows, 12);
        assert_eq!(a.output_rows, 2);
    }

    #[test]
    fn error_display() {
        assert!(MpcError::Unsupported("x".into()).to_string().contains('x'));
        assert!(MpcError::OutOfMemory {
            needed: 5e9,
            limit: 4e9
        }
        .to_string()
        .contains("out of memory"));
        assert!(MpcError::Exec("boom".into()).to_string().contains("boom"));
    }

    #[test]
    fn config_constructors() {
        assert_eq!(MpcBackendConfig::default().kind, BackendKind::SharemindLike);
        assert_eq!(MpcBackendConfig::obliv_vm().kind, BackendKind::OblivVmLike);
        let eng = MpcEngine::new(MpcBackendConfig::obliv_c());
        assert_eq!(eng.config().kind, BackendKind::OblivCLike);
    }
}
