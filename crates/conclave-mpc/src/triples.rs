//! Beaver multiplication triples.
//!
//! A Beaver triple is a sharing of random values `(a, b, c)` with `c = a·b`.
//! Given shared `x` and `y`, the parties open `d = x - a` and `e = y - b`
//! (which reveal nothing, because `a` and `b` are uniform) and compute a
//! sharing of `x·y` locally as `c + d·b + e·a + d·e`.
//!
//! Production systems generate triples with offline protocols (homomorphic
//! encryption or oblivious transfer). Like Sharemind's deployment model, our
//! simulator uses a trusted dealer for the offline phase and charges the
//! online communication (one opening round per batch) to the simulated
//! network.

use crate::ring::RingElem;
use crate::share::Shares;
use rand::Rng;

/// A Beaver triple in shared form.
#[derive(Debug, Clone)]
pub struct BeaverTriple {
    /// Sharing of the random value `a`.
    pub a: Shares,
    /// Sharing of the random value `b`.
    pub b: Shares,
    /// Sharing of `c = a * b`.
    pub c: Shares,
}

/// Dealer that generates Beaver triples for `n` parties.
#[derive(Debug)]
pub struct TripleDealer {
    parties: usize,
    /// Number of triples handed out, for cost accounting.
    pub issued: u64,
}

impl TripleDealer {
    /// Creates a dealer for `parties` computing parties.
    pub fn new(parties: usize) -> Self {
        TripleDealer { parties, issued: 0 }
    }

    /// Generates one triple.
    pub fn triple<R: Rng>(&mut self, rng: &mut R) -> BeaverTriple {
        let a = RingElem(rng.gen::<u64>());
        let b = RingElem(rng.gen::<u64>());
        let c = a * b;
        self.issued += 1;
        BeaverTriple {
            a: Shares::share(a, self.parties, rng),
            b: Shares::share(b, self.parties, rng),
            c: Shares::share(c, self.parties, rng),
        }
    }

    /// Multiplies two shared values using a fresh triple, returning the
    /// sharing of the product along with the two masked openings `(d, e)`
    /// whose transmission the caller must account to the network.
    pub fn beaver_multiply<R: Rng>(
        &mut self,
        x: &Shares,
        y: &Shares,
        rng: &mut R,
    ) -> (Shares, RingElem, RingElem) {
        let t = self.triple(rng);
        let d = x.sub(&t.a).reconstruct();
        let e = y.sub(&t.b).reconstruct();
        // z = c + d*b + e*a + d*e
        let mut z = t.c.clone();
        z = z.add(&t.b.mul_public(d));
        z = z.add(&t.a.mul_public(e));
        z = z.add_public(d * e);
        (z, d, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn triple_is_consistent() {
        let mut dealer = TripleDealer::new(3);
        let mut rng = StdRng::seed_from_u64(1);
        let t = dealer.triple(&mut rng);
        assert_eq!(t.a.reconstruct() * t.b.reconstruct(), t.c.reconstruct());
        assert_eq!(dealer.issued, 1);
    }

    #[test]
    fn beaver_multiplication_is_correct() {
        let mut dealer = TripleDealer::new(3);
        let mut rng = StdRng::seed_from_u64(2);
        for (x, y) in [(3i64, 4i64), (-5, 7), (0, 123), (i32::MAX as i64, 2)] {
            let sx = Shares::share(RingElem::from_i64(x), 3, &mut rng);
            let sy = Shares::share(RingElem::from_i64(y), 3, &mut rng);
            let (z, _d, _e) = dealer.beaver_multiply(&sx, &sy, &mut rng);
            assert_eq!(z.reconstruct().to_i64(), x.wrapping_mul(y));
        }
        assert_eq!(dealer.issued, 4);
    }

    proptest! {
        #[test]
        fn beaver_multiplication_matches_wrapping_mul(x in any::<i64>(), y in any::<i64>()) {
            let mut dealer = TripleDealer::new(3);
            let mut rng = StdRng::seed_from_u64(3);
            let sx = Shares::share(RingElem::from_i64(x), 3, &mut rng);
            let sy = Shares::share(RingElem::from_i64(y), 3, &mut rng);
            let (z, _, _) = dealer.beaver_multiply(&sx, &sy, &mut rng);
            prop_assert_eq!(z.reconstruct().to_i64(), x.wrapping_mul(y));
        }
    }
}
