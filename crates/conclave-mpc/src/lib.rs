//! MPC substrates for the Conclave reproduction.
//!
//! The paper's prototype generates code for two external MPC frameworks:
//! Sharemind (3-party additive secret sharing) and Obliv-C (2-party garbled
//! circuits); its SMCQL comparison additionally uses ObliVM. None of these
//! are available here, so this crate implements the substrates from scratch:
//!
//! * [`ring`], [`share`], [`triples`], [`protocol`] — a real additive
//!   secret-sharing layer over `Z_{2^64}` with Beaver-triple multiplication,
//!   reveal/reshare, and *simulated-oblivious* comparisons (the comparison
//!   result is computed by a trusted simulator while the documented
//!   communication/computation cost of a bit-decomposition protocol is
//!   charged — see DESIGN.md §2 for the substitution rationale).
//! * [`oblivious`], [`relation`] — oblivious relational sub-protocols over
//!   secret-shared relations: shuffles, Batcher sorting networks, merges,
//!   Laud-style oblivious indexing, Cartesian-product joins, and the
//!   Jónsson-style sorting aggregation the paper builds on.
//! * [`garbled`] — a garbled-circuit backend model (Obliv-C / ObliVM-like):
//!   boolean circuit construction with gate counting and a memory model that
//!   reproduces the out-of-memory cliffs in Figure 1.
//! * [`cost`] — cost models converting primitive counts into simulated
//!   wall-clock time, calibrated against the datapoints the paper reports.
//! * [`backend`] — a unified engine that executes IR operators under a chosen
//!   backend over cleartext inputs, returning the result relation together
//!   with simulated runtime and traffic statistics.
//! * [`runtime`] — the **distributed party runtime**: a session-lifetime
//!   [`runtime::PartySession`] (identity, dealer streams, triple cache) that
//!   hands out per-plan-step [`runtime::StepCtx`] drivers. Each step drives
//!   open/multiply/comparisons and the oblivious relational operators through
//!   real [`conclave_net::Transport`] message rounds on its own logical
//!   stream, recording observed (not modeled) traffic. The in-process
//!   [`Protocol`] remains the fast path and the differential-testing oracle
//!   for it.
//! * [`circuits`] — bit-decomposed comparison circuits for the party
//!   runtime: signed less-than and equality computed entirely on shares
//!   (Kogge-Stone carry adders over XOR-shared bits, binary Beaver ANDs,
//!   daBit bit-to-arithmetic conversion), so no operand value ever crosses
//!   the wire unmasked.
//! * [`dealer`] — the **offline phase**: a standalone dealer that
//!   pregenerates SPDZ-authenticated Beaver triples, binary triples, dual
//!   bit masks, daBits, and input masks, delivered to the online parties as
//!   per-party files ([`dealer::write_party_files`]), over a dedicated
//!   dealer link ([`dealer::serve_party`]), or synthesized in-process from
//!   the session seed. Online shares carry SPDZ MACs ([`share::AuthShare`])
//!   checked at every reveal boundary.

// Also enforced workspace-wide via [workspace.lints]; stated here so the
// guarantee is visible at the crate root.
#![forbid(unsafe_code)]

pub mod backend;
pub mod circuits;
pub mod cost;
pub mod dealer;
pub mod garbled;
pub mod oblivious;
pub mod protocol;
pub mod relation;
pub mod ring;
pub mod runtime;
pub mod share;
pub mod triples;

pub use backend::{BackendKind, MpcBackendConfig, MpcEngine, MpcError, MpcResult, MpcStepStats};
pub use cost::{GarbledCostModel, PrimitiveCounts, SecretShareCostModel};
pub use dealer::{
    generate_blocks, load_party_file, serve_party, write_party_files, DealerSource, DealerStream,
    InputMask, MaterialBlocks, MaterialSpec,
};
pub use protocol::Protocol;
pub use relation::SharedRelation;
pub use ring::RingElem;
pub use runtime::{PartyError, PartyRelation, PartyResult, PartySession, PendingOpen, StepCtx};
pub use share::{AuthShare, Shares};
