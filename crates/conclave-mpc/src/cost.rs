//! Cost models converting protocol primitive counts into simulated time.
//!
//! # Calibration
//!
//! The constants below are calibrated against datapoints reported in the
//! paper and the studies it cites, so that reproduced experiments preserve
//! the original *shapes* (who wins, by what factor, where curves cross):
//!
//! * "Sharemind takes 200 s to sort 16,000 elements" (§2.3, citing Jónsson et
//!   al.): a Batcher network on 16 k elements performs ≈3.1 M compare-
//!   exchanges, giving roughly 150–250 µs per compare-exchange; we charge 150 µs per
//!   oblivious comparison plus 5 µs per mux multiplication.
//! * Figure 1c: a Sharemind projection exceeds 10 minutes past ≈3 M input
//!   records (≈37 MB), giving ≈120 µs of per-element secret-sharing / storage
//!   overhead for data import+export.
//! * Figure 5a: a pure-MPC Sharemind join at 10 k records per party takes
//!   over twenty minutes, and Figure 6's pure-MPC credit query exceeds the
//!   two-hour cut-off at 30 k records — consistent with a Cartesian-product
//!   join at ≈35 µs per oblivious equality test.
//! * Figure 1 (Obliv-C): the garbled-circuit join runs out of memory at ≈30 k
//!   records and the projection at ≈300 k records, which fixes the memory
//!   model's per-record state constants; throughput is set to ≈1 M AND
//!   gates/s, slower per arithmetic operation than Sharemind, matching §7.4's
//!   observation that secret sharing suits relational arithmetic better.

use conclave_net::NetworkModel;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Counters of secret-sharing protocol primitives executed (or estimated).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrimitiveCounts {
    /// Field elements secret-shared into the MPC (input loading).
    pub input_elems: u64,
    /// Field elements opened / revealed out of the MPC.
    pub opened_elems: u64,
    /// Beaver multiplications.
    pub mults: u64,
    /// Oblivious less-than comparisons.
    pub comparisons: u64,
    /// Oblivious equality tests.
    pub equalities: u64,
    /// Elements moved by oblivious shuffles (rows × columns).
    pub shuffled_elems: u64,
    /// Binary AND gates evaluated on XOR-shared bits (comparison circuits).
    /// Zero on the in-process oracle path, which charges a flat amortized
    /// `comparisons`/`equalities` tally instead; the party runtime tallies
    /// both the flat count *and* the per-bit gates it actually evaluated.
    pub bit_ands: u64,
    /// Communication rounds spent inside comparison circuits (masked
    /// openings, prefix-adder levels, bit-to-arithmetic conversions). Like
    /// [`PrimitiveCounts::bit_ands`], only the circuit path reports these.
    pub circuit_rounds: u64,
    /// Deferred SPDZ MAC checks performed at reveal boundaries (each costs
    /// two synchronous rounds: a commitment broadcast and a sigma opening).
    /// Zero on the in-process oracle path and in unauthenticated sessions.
    pub mac_checks: u64,
}

impl PrimitiveCounts {
    /// Adds another set of counts to this one.
    pub fn merge(&mut self, other: &PrimitiveCounts) {
        self.input_elems += other.input_elems;
        self.opened_elems += other.opened_elems;
        self.mults += other.mults;
        self.comparisons += other.comparisons;
        self.equalities += other.equalities;
        self.shuffled_elems += other.shuffled_elems;
        self.bit_ands += other.bit_ands;
        self.circuit_rounds += other.circuit_rounds;
        self.mac_checks += other.mac_checks;
    }

    /// The counts accumulated since `baseline` was snapshotted (field-wise
    /// difference). Used by the party runtime to attribute a session-lifetime
    /// counter to individual plan steps.
    pub fn since(&self, baseline: &PrimitiveCounts) -> PrimitiveCounts {
        PrimitiveCounts {
            input_elems: self.input_elems - baseline.input_elems,
            opened_elems: self.opened_elems - baseline.opened_elems,
            mults: self.mults - baseline.mults,
            comparisons: self.comparisons - baseline.comparisons,
            equalities: self.equalities - baseline.equalities,
            shuffled_elems: self.shuffled_elems - baseline.shuffled_elems,
            bit_ands: self.bit_ands - baseline.bit_ands,
            circuit_rounds: self.circuit_rounds - baseline.circuit_rounds,
            mac_checks: self.mac_checks - baseline.mac_checks,
        }
    }

    /// Total number of non-linear operations (the quantity the paper's
    /// asymptotic arguments count).
    pub fn nonlinear_ops(&self) -> u64 {
        self.mults + self.comparisons + self.equalities
    }

    /// Approximate bytes exchanged between parties for these primitives
    /// (per-party, one direction): every non-linear op opens two masked
    /// values, every input/open moves one share.
    ///
    /// When the counts come from the circuit path (`bit_ands > 0`), the
    /// flat 16-byte-per-comparison estimate is replaced by the measured
    /// gate count: each word-packed binary AND opens two masked 8-byte
    /// words per 64 gates (0.25 B/gate), and each comparison additionally
    /// pays one masked decomposition opening plus one bit-to-arithmetic
    /// opening. With `bit_ands == 0` this reduces to the original flat
    /// formula, so oracle-path estimates and calibration anchors are
    /// unchanged.
    pub fn bytes(&self) -> u64 {
        let compare_bytes = if self.bit_ands > 0 {
            self.bit_ands / 4 + 16 * (self.comparisons + self.equalities)
        } else {
            16 * (self.comparisons + self.equalities)
        };
        16 * self.mults
            + compare_bytes
            + 8 * (self.input_elems + self.opened_elems)
            + 8 * self.shuffled_elems
    }
}

/// Cost model for the secret-sharing backend (Sharemind-like, 3 parties).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SecretShareCostModel {
    /// Seconds per Beaver multiplication (amortized, batched).
    pub per_mult: f64,
    /// Seconds per oblivious less-than comparison (bit-decomposition based).
    pub per_comparison: f64,
    /// Seconds per oblivious equality test.
    pub per_equality: f64,
    /// Seconds per binary AND gate on XOR-shared bits. Used instead of the
    /// flat `per_comparison`/`per_equality` charges when a count set carries
    /// measured circuit gates (`bit_ands > 0`); calibrated so a 64-bit
    /// Kogge-Stone less-than (~2100 gates across its three decomposed
    /// values) lands near the 150 µs flat anchor.
    pub per_bit_and: f64,
    /// Seconds per element secret-shared into the MPC (import + storage).
    pub per_input_elem: f64,
    /// Seconds per element opened out of the MPC.
    pub per_open_elem: f64,
    /// Seconds per element moved by an oblivious shuffle.
    pub per_shuffle_elem: f64,
    /// Fixed protocol setup time per MPC job (connection setup, triple
    /// precomputation warm-up).
    pub job_overhead: f64,
}

impl Default for SecretShareCostModel {
    fn default() -> Self {
        SecretShareCostModel {
            per_mult: 5.0e-6,
            per_comparison: 150.0e-6,
            per_equality: 35.0e-6,
            per_bit_and: 7.0e-8,
            per_input_elem: 60.0e-6,
            per_open_elem: 60.0e-6,
            per_shuffle_elem: 20.0e-6,
            job_overhead: 2.0,
        }
    }
}

impl SecretShareCostModel {
    /// Converts primitive counts into simulated elapsed time, including the
    /// communication time implied by the network model (protocols are
    /// computation- and bandwidth-bound; round latency is amortized by
    /// batching, which Sharemind does aggressively).
    pub fn time(&self, counts: &PrimitiveCounts, net: &NetworkModel) -> Duration {
        // Counts that carry measured circuit gates (`bit_ands > 0`) also
        // carry the flat `comparisons`/`equalities` tallies for the same
        // operations; charge the measured gates *instead of* the flat
        // amortized rates so the two views never double-bill.
        let compare_compute = if counts.bit_ands > 0 {
            counts.bit_ands as f64 * self.per_bit_and
        } else {
            counts.comparisons as f64 * self.per_comparison
                + counts.equalities as f64 * self.per_equality
        };
        let compute = counts.mults as f64 * self.per_mult
            + compare_compute
            + counts.input_elems as f64 * self.per_input_elem
            + counts.opened_elems as f64 * self.per_open_elem
            + counts.shuffled_elems as f64 * self.per_shuffle_elem;
        let comm = counts.bytes() as f64 / net.bandwidth_bps
            + counts.circuit_rounds as f64 * net.latency_s;
        Duration::from_secs_f64(self.job_overhead + compute + comm)
    }

    /// Time without the fixed job overhead — useful for composing several
    /// estimates of the same MPC job.
    pub fn time_no_overhead(&self, counts: &PrimitiveCounts, net: &NetworkModel) -> Duration {
        let with = self.time(counts, net);
        with.saturating_sub(Duration::from_secs_f64(self.job_overhead))
    }
}

/// Cost and memory model for garbled-circuit backends (Obliv-C, ObliVM).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GarbledCostModel {
    /// Seconds per AND gate (XOR gates are free under free-XOR).
    pub per_and_gate: f64,
    /// Bytes of garbled-circuit state retained per input record (wire labels
    /// plus framework bookkeeping); drives the out-of-memory cliffs.
    pub state_bytes_per_record: f64,
    /// Extra state retained per AND gate evaluated within a join's nested
    /// loop (Obliv-C's join materializes comparison state).
    pub state_bytes_per_join_pair: f64,
    /// Memory limit in bytes before the backend aborts (the evaluation VMs
    /// had 8 GB; the framework gets ~4 GB of usable heap).
    pub memory_limit_bytes: f64,
    /// Fixed setup time per job (circuit generation, OT extension).
    pub job_overhead: f64,
}

impl GarbledCostModel {
    /// Obliv-C-like defaults (used for Figure 1).
    pub fn obliv_c() -> Self {
        GarbledCostModel {
            per_and_gate: 1.0e-6,
            state_bytes_per_record: 14_000.0,
            state_bytes_per_join_pair: 4_800.0,
            memory_limit_bytes: 4.0e9,
            job_overhead: 2.0,
        }
    }

    /// ObliVM-like defaults (used for the SMCQL baseline of §7.4): roughly
    /// 3× slower per gate and a heavier runtime, matching the paper's
    /// observation that ObliVM is slower than both Obliv-C and Sharemind.
    pub fn obliv_vm() -> Self {
        GarbledCostModel {
            per_and_gate: 3.0e-6,
            state_bytes_per_record: 20_000.0,
            state_bytes_per_join_pair: 6_000.0,
            memory_limit_bytes: 16.0e9, // SMCQL experiments used 32 GB VMs
            job_overhead: 5.0,
        }
    }

    /// Simulated time to evaluate `and_gates` AND gates plus transferring the
    /// garbled tables (32 bytes per AND gate) over the network.
    pub fn time(&self, and_gates: u64, net: &NetworkModel) -> Duration {
        let compute = and_gates as f64 * self.per_and_gate;
        let comm = and_gates as f64 * 32.0 / net.bandwidth_bps;
        Duration::from_secs_f64(self.job_overhead + compute + comm)
    }

    /// Returns `true` if a computation with the given memory footprint
    /// exceeds the backend's memory limit (→ the OOM cliffs of Figure 1).
    pub fn exceeds_memory(&self, state_bytes: f64) -> bool {
        state_bytes > self.memory_limit_bytes
    }
}

impl Default for GarbledCostModel {
    fn default() -> Self {
        GarbledCostModel::obliv_c()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_merge_and_bytes() {
        let mut a = PrimitiveCounts {
            mults: 10,
            comparisons: 5,
            ..Default::default()
        };
        let b = PrimitiveCounts {
            mults: 1,
            comparisons: 0,
            equalities: 2,
            input_elems: 3,
            opened_elems: 4,
            shuffled_elems: 5,
            bit_ands: 0,
            circuit_rounds: 0,
            mac_checks: 1,
        };
        a.merge(&b);
        assert_eq!(a.mults, 11);
        assert_eq!(a.mac_checks, 1);
        assert_eq!(a.nonlinear_ops(), 11 + 5 + 2);
        assert_eq!(a.bytes(), 16 * 18 + 8 * 7 + 8 * 5);
    }

    #[test]
    fn circuit_counts_replace_flat_comparison_charges() {
        let lan = NetworkModel::lan();
        let model = SecretShareCostModel::default();
        let flat = PrimitiveCounts {
            comparisons: 1000,
            ..Default::default()
        };
        // The same 1000 comparisons as measured by the circuit path: ~2100
        // AND gates each, plus the log-depth rounds actually spent.
        let measured = PrimitiveCounts {
            comparisons: 1000,
            bit_ands: 2100 * 1000,
            circuit_rounds: 9,
            ..Default::default()
        };
        // Measured gates substitute for (not stack on) the flat rate, so the
        // two estimates stay within the same order of magnitude.
        let t_flat = model.time_no_overhead(&flat, &lan).as_secs_f64();
        let t_measured = model.time_no_overhead(&measured, &lan).as_secs_f64();
        assert!(
            t_measured < 2.0 * t_flat && t_measured > 0.5 * t_flat,
            "flat {t_flat:.4} s vs measured {t_measured:.4} s"
        );
        // Circuit bytes reflect the per-gate masked openings.
        assert!(measured.bytes() > flat.bytes());
        // merge/since round-trip the new counters.
        let mut acc = flat;
        acc.merge(&measured);
        assert_eq!(acc.bit_ands, 2100 * 1000);
        assert_eq!(acc.circuit_rounds, 9);
        assert_eq!(acc.since(&flat), measured);
    }

    #[test]
    fn sharemind_sort_anchor_matches_paper() {
        // §2.3: sorting 16,000 elements takes ≈200 s in Sharemind.
        // A Batcher network on n=16,384 performs ~n/4·log²n·... ≈ 3.1M
        // compare-exchanges; each costs one comparison and two muxes.
        let n = 16_384u64;
        let log = 14u64;
        let compare_exchanges = n * log * log / 4;
        let counts = PrimitiveCounts {
            comparisons: compare_exchanges,
            mults: 2 * compare_exchanges,
            input_elems: n,
            ..Default::default()
        };
        let t = SecretShareCostModel::default()
            .time(&counts, &NetworkModel::lan())
            .as_secs_f64();
        assert!(
            (100.0..400.0).contains(&t),
            "expected ≈200 s for a 16 k oblivious sort, got {t:.0} s"
        );
    }

    #[test]
    fn cartesian_join_anchor_matches_paper() {
        // Fig. 5a: a pure-MPC join at ~10 k total records takes on the order
        // of tens of minutes.
        let per_side = 5_000u64;
        let counts = PrimitiveCounts {
            equalities: per_side * per_side,
            input_elems: 2 * per_side,
            ..Default::default()
        };
        let t = SecretShareCostModel::default()
            .time(&counts, &NetworkModel::lan())
            .as_secs_f64();
        assert!(t > 300.0 && t < 3_600.0, "got {t:.0} s");
    }

    #[test]
    fn projection_storage_anchor() {
        // Fig. 1c: pure projection exceeds 10 minutes past ~3–5 M records.
        let n = 4_000_000u64;
        let counts = PrimitiveCounts {
            input_elems: n,
            opened_elems: n,
            ..Default::default()
        };
        let t = SecretShareCostModel::default()
            .time(&counts, &NetworkModel::lan())
            .as_secs_f64();
        assert!(t > 400.0, "got {t:.0} s");
    }

    #[test]
    fn time_no_overhead_subtracts_setup() {
        let m = SecretShareCostModel::default();
        let counts = PrimitiveCounts {
            mults: 1000,
            ..Default::default()
        };
        let with = m.time(&counts, &NetworkModel::lan());
        let without = m.time_no_overhead(&counts, &NetworkModel::lan());
        assert!(with > without);
        assert!((with - without).as_secs_f64() - m.job_overhead < 1e-9);
    }

    #[test]
    fn garbled_memory_cliffs_match_figure_1() {
        let m = GarbledCostModel::obliv_c();
        // Projection: OOM somewhere between 100 k and 500 k records (paper:
        // ≈300 k).
        assert!(!m.exceeds_memory(100_000.0 * m.state_bytes_per_record));
        assert!(m.exceeds_memory(500_000.0 * m.state_bytes_per_record));
        // Join: OOM between 10 k and 50 k total records (paper: ≈30 k). Join
        // state grows with the number of compared pairs across parties.
        let join_state = |n: f64| (n / 2.0) * (n / 2.0).sqrt() * m.state_bytes_per_join_pair;
        let _ = join_state; // the backend uses its own formula; sanity-check records-based state here
        assert!(!m.exceeds_memory(10_000.0 * m.state_bytes_per_record * 8.0));
        assert!(m.exceeds_memory(40_000.0 * m.state_bytes_per_record * 8.0));
    }

    #[test]
    fn obliv_vm_is_slower_than_obliv_c() {
        let gates = 10_000_000u64;
        let lan = NetworkModel::lan();
        let c = GarbledCostModel::obliv_c().time(gates, &lan);
        let vm = GarbledCostModel::obliv_vm().time(gates, &lan);
        assert!(vm > c);
    }

    #[test]
    fn secret_sharing_beats_gc_for_arithmetic() {
        // §7.4: Sharemind is better suited to arithmetic-heavy queries than
        // ObliVM. Compare one million 64-bit multiplications.
        let lan = NetworkModel::lan();
        let ss = SecretShareCostModel::default().time(
            &PrimitiveCounts {
                mults: 1_000_000,
                ..Default::default()
            },
            &lan,
        );
        // A 64-bit multiplier is ~4,000 AND gates.
        let gc = GarbledCostModel::obliv_vm().time(1_000_000 * 4_000, &lan);
        assert!(ss < gc);
    }
}
