//! Garbled-circuit backend model (Obliv-C / ObliVM-like).
//!
//! Garbled circuits evaluate a boolean circuit gate by gate; under the
//! standard free-XOR and half-gates optimizations only AND gates cost
//! communication and computation. This module provides:
//!
//! * a [`CircuitBuilder`] that constructs the boolean circuits relational
//!   operators compile to (adders, comparators, equality testers and
//!   multiplexers over 64-bit integers) and counts their gates, and
//! * gate- and state-accounting helpers ([`CircuitStats`]) that, combined
//!   with [`crate::cost::GarbledCostModel`], reproduce the runtime curves and
//!   out-of-memory cliffs of Figure 1.
//!
//! Circuit *evaluation* is performed on cleartext values (the wire labels are
//! not cryptographically garbled); this preserves result correctness and gate
//! counts, which is what the performance reproduction needs.

use serde::{Deserialize, Serialize};

/// Width in bits of the integers the relational circuits operate on.
pub const WORD_BITS: u64 = 64;

/// Gate and state counters for one garbled-circuit job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CircuitStats {
    /// AND gates (cost communication and crypto under half-gates).
    pub and_gates: u64,
    /// XOR gates (free under free-XOR; tracked for completeness).
    pub xor_gates: u64,
    /// Input wires fed into the circuit.
    pub input_wires: u64,
    /// Output wires revealed.
    pub output_wires: u64,
}

impl CircuitStats {
    /// Merges another stats object into this one.
    pub fn merge(&mut self, other: &CircuitStats) {
        self.and_gates += other.and_gates;
        self.xor_gates += other.xor_gates;
        self.input_wires += other.input_wires;
        self.output_wires += other.output_wires;
    }

    /// Total gates of any kind.
    pub fn total_gates(&self) -> u64 {
        self.and_gates + self.xor_gates
    }
}

/// Builds the standard arithmetic/comparison circuits and counts their gates.
///
/// Gate counts use the textbook constructions: a ripple-carry adder costs one
/// AND per bit, a comparator one AND per bit, an equality test one AND per
/// bit (bitwise XNOR tree), a multiplexer one AND per bit, and a schoolbook
/// multiplier roughly `bits²` ANDs.
#[derive(Debug, Default, Clone)]
pub struct CircuitBuilder {
    stats: CircuitStats,
}

impl CircuitBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        CircuitBuilder::default()
    }

    /// Snapshot of the gate counters.
    pub fn stats(&self) -> CircuitStats {
        self.stats
    }

    /// Feeds a `bits`-wide input into the circuit.
    pub fn input(&mut self, bits: u64) {
        self.stats.input_wires += bits;
    }

    /// Feeds `count` 64-bit integer inputs.
    pub fn input_words(&mut self, count: u64) {
        self.input(count * WORD_BITS);
    }

    /// Reveals a `bits`-wide output.
    pub fn output(&mut self, bits: u64) {
        self.stats.output_wires += bits;
    }

    /// 64-bit addition: `a + b`.
    pub fn add(&mut self, a: i64, b: i64) -> i64 {
        self.stats.and_gates += WORD_BITS;
        self.stats.xor_gates += 2 * WORD_BITS;
        a.wrapping_add(b)
    }

    /// 64-bit less-than comparison.
    pub fn lt(&mut self, a: i64, b: i64) -> bool {
        self.stats.and_gates += WORD_BITS;
        self.stats.xor_gates += 2 * WORD_BITS;
        a < b
    }

    /// 64-bit equality test.
    pub fn eq(&mut self, a: i64, b: i64) -> bool {
        self.stats.and_gates += WORD_BITS;
        self.stats.xor_gates += WORD_BITS;
        a == b
    }

    /// 64-bit multiplexer: returns `t` if `c` else `f`.
    pub fn mux(&mut self, c: bool, t: i64, f: i64) -> i64 {
        self.stats.and_gates += WORD_BITS;
        self.stats.xor_gates += 2 * WORD_BITS;
        if c {
            t
        } else {
            f
        }
    }

    /// 64-bit multiplication (schoolbook, ~bits² AND gates).
    pub fn mul(&mut self, a: i64, b: i64) -> i64 {
        self.stats.and_gates += WORD_BITS * WORD_BITS;
        self.stats.xor_gates += WORD_BITS * WORD_BITS;
        a.wrapping_mul(b)
    }
}

/// Analytic gate-count formulas for whole relational operators, used by the
/// estimator when the data is too large to evaluate gate by gate.
pub mod gates {
    use super::WORD_BITS;

    /// Gates for obliviously aggregating `n` rows with `g` group-by columns:
    /// a bitonic sort (`n·log²n` comparator+mux stages) followed by a linear
    /// scan of equality + adder + mux per row.
    pub fn aggregate(n: u64, g: u64) -> u64 {
        let n = n.max(2);
        let log = 64 - (n - 1).leading_zeros() as u64;
        let sort = n * log * log / 2 * 2 * WORD_BITS;
        let scan = n * (g.max(1) + 2) * WORD_BITS;
        sort + scan
    }

    /// Gates for a Cartesian-product join of `n × m` rows over `k` key
    /// columns with `w` payload columns muxed into the output.
    pub fn join(n: u64, m: u64, k: u64, w: u64) -> u64 {
        n * m * (k.max(1) + w) * WORD_BITS
    }

    /// Gates for projecting `n` rows of `w` columns (re-wiring only; the cost
    /// is dominated by input/output handling, roughly one gate per bit).
    pub fn project(n: u64, w: u64) -> u64 {
        n * w * WORD_BITS
    }

    /// Gates for a distinct / distinct-count over `n` rows (sort + adjacent
    /// equality scan).
    pub fn distinct(n: u64) -> u64 {
        aggregate(n, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::GarbledCostModel;
    use conclave_net::NetworkModel;

    #[test]
    fn builder_counts_gates_and_computes_correctly() {
        let mut b = CircuitBuilder::new();
        b.input_words(2);
        assert_eq!(b.add(3, 4), 7);
        assert!(b.lt(3, 4));
        assert!(!b.lt(4, 3));
        assert!(b.eq(5, 5));
        assert_eq!(b.mux(true, 1, 2), 1);
        assert_eq!(b.mux(false, 1, 2), 2);
        assert_eq!(b.mul(6, 7), 42);
        b.output(64);
        let s = b.stats();
        assert_eq!(s.input_wires, 128);
        assert_eq!(s.output_wires, 64);
        // add + 2*lt + eq + 2*mux = 6 word-level ops at 64 ANDs each, plus
        // the 4096-AND multiplier.
        assert_eq!(s.and_gates, 6 * 64 + 64 * 64);
        assert!(s.xor_gates > 0);
        assert!(s.total_gates() > s.and_gates);
    }

    #[test]
    fn stats_merge() {
        let mut a = CircuitStats {
            and_gates: 10,
            xor_gates: 5,
            input_wires: 1,
            output_wires: 2,
        };
        let b = CircuitStats {
            and_gates: 1,
            xor_gates: 1,
            input_wires: 1,
            output_wires: 1,
        };
        a.merge(&b);
        assert_eq!(a.and_gates, 11);
        assert_eq!(a.total_gates(), 17);
    }

    #[test]
    fn join_gates_grow_quadratically() {
        let g1 = gates::join(1_000, 1_000, 1, 2);
        let g2 = gates::join(2_000, 2_000, 1, 2);
        assert_eq!(g2, g1 * 4);
    }

    #[test]
    fn aggregate_gates_are_superlinear_but_subquadratic() {
        let g1 = gates::aggregate(10_000, 1);
        let g2 = gates::aggregate(20_000, 1);
        let ratio = g2 as f64 / g1 as f64;
        assert!(ratio > 2.0 && ratio < 4.0, "ratio {ratio}");
        assert!(gates::distinct(1_000) > gates::project(1_000, 1));
    }

    #[test]
    fn obliv_c_join_is_impractical_at_figure_1_scale() {
        // Fig. 1b: the Obliv-C join is far slower than insecure execution and
        // only reaches tens of thousands of records before failing.
        let m = GarbledCostModel::obliv_c();
        let lan = NetworkModel::lan();
        let t = m.time(gates::join(5_000, 5_000, 1, 1), &lan);
        assert!(t.as_secs_f64() > 100.0, "got {:?}", t);
    }
}
