//! In-process protocol vs distributed channel-transport throughput.
//!
//! Prices the party runtime's real message rounds against the single-process
//! `Protocol` engine on the two primitives everything else is built from:
//!
//! * `open`: secret-share a column and open it again (one broadcast round on
//!   the mesh vs a local reconstruction in-process), and
//! * `multiply`: a batch of Beaver multiplications (one `d`/`e` opening round
//!   on the mesh vs in-struct mask reconstruction in-process).
//!
//! The gap between the two series is the cost of *actually exchanging*
//! per-party messages — the quantity the simulated path models and the party
//! runtime measures.

use conclave_mpc::runtime::{PartyResult, PartySession, StepCtx};
use conclave_mpc::{AuthShare, Protocol};
use conclave_net::ChannelTransport;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const SIZES: [usize; 2] = [1_000, 10_000];
const PARTIES: u32 = 3;

fn values(n: usize) -> Vec<i64> {
    (0..n as i64)
        .map(|i| i.wrapping_mul(37) % 100_000)
        .collect()
}

/// Runs one per-party program on a fresh channel mesh and returns party 0's
/// result.
fn on_mesh<R, F>(f: F) -> R
where
    R: Send,
    F: Fn(&mut StepCtx) -> PartyResult<R> + Sync,
{
    let mesh = ChannelTransport::mesh(PARTIES);
    std::thread::scope(|s| {
        let handles: Vec<_> = mesh
            .into_iter()
            .map(|t| {
                let f = &f;
                s.spawn(move || {
                    let mut sess = PartySession::new(&t, 1);
                    let mut proto = sess.step(0);
                    f(&mut proto)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("party panicked").expect("party failed"))
            .next()
            .expect("at least one party")
    })
}

fn bench_open(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport_open");
    group.sample_size(10);
    for n in SIZES {
        let vals = values(n);
        group.bench_with_input(BenchmarkId::new("in_process", n), &vals, |b, vals| {
            b.iter(|| {
                let mut proto = Protocol::new(PARTIES as usize, 1);
                let shared: Vec<_> = vals.iter().map(|&v| proto.share_value(v)).collect();
                let opened: i64 = shared.iter().map(|s| proto.open(s)).sum();
                opened
            })
        });
        group.bench_with_input(BenchmarkId::new("channel_mesh", n), &vals, |b, vals| {
            b.iter(|| {
                on_mesh(|proto| {
                    let own = (proto.party() == 0).then_some(vals.as_slice());
                    let shares = proto.input_column(0, own, vals.len())?;
                    let opened = proto.open_column(&shares)?;
                    Ok(opened.iter().sum::<i64>())
                })
            })
        });
    }
    group.finish();
}

fn bench_multiply(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport_multiply");
    group.sample_size(10);
    for n in SIZES {
        let vals = values(n);
        group.bench_with_input(BenchmarkId::new("in_process", n), &vals, |b, vals| {
            b.iter(|| {
                let mut proto = Protocol::new(PARTIES as usize, 1);
                let shared: Vec<_> = vals.iter().map(|&v| proto.share_value(v)).collect();
                let mut acc = 0i64;
                for pair in shared.chunks(2) {
                    if let [x, y] = pair {
                        let z = proto.mul(x, y);
                        acc = acc.wrapping_add(proto.open(&z));
                    }
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("channel_mesh", n), &vals, |b, vals| {
            b.iter(|| {
                on_mesh(|proto| {
                    let own = (proto.party() == 0).then_some(vals.as_slice());
                    let shares = proto.input_column(0, own, vals.len())?;
                    let pairs: Vec<(AuthShare, AuthShare)> = shares
                        .chunks(2)
                        .filter_map(|c| match c {
                            [x, y] => Some((*x, *y)),
                            _ => None,
                        })
                        .collect();
                    let products = proto.mul_batch(&pairs)?;
                    let opened = proto.open_column(&products)?;
                    Ok(opened.iter().fold(0i64, |a, &v| a.wrapping_add(v)))
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_open, bench_multiply);
criterion_main!(benches);
