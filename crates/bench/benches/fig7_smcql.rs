//! Criterion bench for Figure 7: the SMCQL comparison (aspirin count and
//! comorbidity).
//!
//! * `fig7_series` regenerates both simulated sweeps.
//! * `fig7_real_queries` executes the two HealthLNK-style queries for real at
//!   small scale under both systems: Conclave's compiled plan and the SMCQL
//!   baseline (slicing + ObliVM-like backend).

use bench::figures::{fig7a, fig7b};
use bench::queries;
use conclave_core::{compile, ConclaveConfig, Driver};
use conclave_data::HealthGenerator;
use conclave_smcql::queries as smcql_queries;
use conclave_smcql::SmcqlPlanner;
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashMap;

fn series(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_series");
    group.sample_size(10);
    group.bench_function("fig7a_aspirin_sweep", |b| b.iter(fig7a));
    group.bench_function("fig7b_comorbidity_sweep", |b| b.iter(fig7b));
    group.finish();
}

fn real_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_real_queries");
    group.sample_size(10);
    let rows = 400usize;
    let mut gen = HealthGenerator::new(3);
    let d0 = gen.diagnoses(0, rows);
    let d1 = gen.diagnoses(1, rows);
    let m0 = gen.medications(0, rows);
    let m1 = gen.medications(1, rows);
    let cd0 = gen.comorbidity_diagnoses(0, rows);
    let cd1 = gen.comorbidity_diagnoses(1, rows);

    // Conclave: compiled aspirin-count plan.
    let aspirin_plan = compile(&queries::aspirin_count(), &ConclaveConfig::standard()).unwrap();
    let mut aspirin_inputs = HashMap::new();
    aspirin_inputs.insert("diagnoses1".to_string(), d0.clone());
    aspirin_inputs.insert("diagnoses2".to_string(), d1.clone());
    aspirin_inputs.insert("medications1".to_string(), m0.clone());
    aspirin_inputs.insert("medications2".to_string(), m1.clone());
    group.bench_function("conclave_aspirin_400", |b| {
        b.iter(|| {
            let mut driver = Driver::new(ConclaveConfig::standard().with_sequential_local());
            driver.run(&aspirin_plan, &aspirin_inputs).unwrap()
        })
    });
    group.bench_function("smcql_aspirin_400", |b| {
        b.iter(|| {
            let mut planner = SmcqlPlanner::default_paper_setup();
            smcql_queries::aspirin_count(&mut planner, [&d0, &d1], [&m0, &m1]).unwrap()
        })
    });

    // Comorbidity under both systems.
    let comorbidity_plan = compile(&queries::comorbidity(), &ConclaveConfig::standard()).unwrap();
    let mut comorbidity_inputs = HashMap::new();
    comorbidity_inputs.insert("diagnoses1".to_string(), cd0.clone());
    comorbidity_inputs.insert("diagnoses2".to_string(), cd1.clone());
    group.bench_function("conclave_comorbidity_400", |b| {
        b.iter(|| {
            let mut driver = Driver::new(ConclaveConfig::standard().with_sequential_local());
            driver.run(&comorbidity_plan, &comorbidity_inputs).unwrap()
        })
    });
    group.bench_function("smcql_comorbidity_400", |b| {
        b.iter(|| {
            let mut planner = SmcqlPlanner::default_paper_setup();
            smcql_queries::comorbidity(&mut planner, [&cd0, &cd1], 10).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, series, real_queries);
criterion_main!(benches);
