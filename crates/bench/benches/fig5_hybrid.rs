//! Criterion bench for Figure 5: hybrid join and hybrid aggregation
//! microbenchmarks.
//!
//! * `fig5_series` regenerates the simulated sweeps of Figures 5a and 5b.
//! * `fig5_real_protocols` executes the hybrid join, public join, hybrid
//!   aggregation and their pure-MPC counterparts for real at small scale, so
//!   the relative ordering (public < hybrid < MPC) is grounded in executed
//!   protocols rather than only in the cost model.

use bench::figures::{fig5a, fig5b};
use conclave_core::hybrid_exec;
use conclave_data::SyntheticGenerator;
use conclave_engine::{ColumnarExecutor, Table};
use conclave_ir::ops::{AggFunc, JoinKind, Operator};
use conclave_mpc::backend::{MpcBackendConfig, MpcEngine};
use criterion::{criterion_group, criterion_main, Criterion};

fn series(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_series");
    group.sample_size(10);
    group.bench_function("fig5a_join_sweep", |b| b.iter(fig5a));
    group.bench_function("fig5b_aggregation_sweep", |b| b.iter(fig5b));
    group.finish();
}

fn real_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_real_protocols");
    group.sample_size(10);
    let mut gen = SyntheticGenerator::new(5);
    let (left, right) = gen.overlapping_pair(150, 1.0);
    let keyed = gen.zipf_keyed(200, 20, 1.1);
    let left_table = Table::from_rows(left.clone());
    let right_table = Table::from_rows(right.clone());
    let keyed_table = Table::from_rows(keyed.clone());
    let stp = ColumnarExecutor::new();

    group.bench_function("hybrid_join_150", |b| {
        b.iter(|| {
            let mut engine = MpcEngine::new(MpcBackendConfig::sharemind());
            hybrid_exec::hybrid_join(
                &mut engine,
                &stp,
                &left_table,
                &right_table,
                &["key".to_string()],
                &["key".to_string()],
                1,
            )
            .unwrap()
        })
    });
    group.bench_function("public_join_150", |b| {
        b.iter(|| {
            hybrid_exec::public_join(
                &stp,
                &left_table,
                &right_table,
                &["key".to_string()],
                &["key".to_string()],
                1,
            )
            .unwrap()
        })
    });
    group.bench_function("mpc_join_150", |b| {
        let op = Operator::Join {
            left_keys: vec!["key".into()],
            right_keys: vec!["key".into()],
            kind: JoinKind::Inner,
        };
        b.iter(|| {
            let mut engine = MpcEngine::new(MpcBackendConfig::sharemind());
            engine.execute_op(&op, &[&left, &right]).unwrap()
        })
    });
    group.bench_function("hybrid_aggregation_200", |b| {
        b.iter(|| {
            let mut engine = MpcEngine::new(MpcBackendConfig::sharemind());
            hybrid_exec::hybrid_aggregate(
                &mut engine,
                &stp,
                &keyed_table,
                &["key".to_string()],
                AggFunc::Sum,
                Some("value"),
                "total",
                1,
            )
            .unwrap()
        })
    });
    group.bench_function("mpc_aggregation_200", |b| {
        let op = Operator::Aggregate {
            group_by: vec!["key".into()],
            func: AggFunc::Sum,
            over: Some("value".into()),
            out: "total".into(),
        };
        b.iter(|| {
            let mut engine = MpcEngine::new(MpcBackendConfig::sharemind());
            engine.execute_op(&op, &[&keyed]).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, series, real_protocols);
criterion_main!(benches);
