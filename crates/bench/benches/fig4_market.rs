//! Criterion bench for Figure 4: the market-concentration (HHI) query.
//!
//! * `fig4_series` regenerates the full Sharemind-only / insecure-Spark /
//!   Conclave sweep up to 1.3 B records (simulated).
//! * `fig4_real_end_to_end` compiles and executes the query for real over
//!   generated taxi data at several small sizes, under both the optimized and
//!   the MPC-only configuration.

use bench::figures::fig4;
use bench::queries::market_concentration;
use conclave_core::{compile, ConclaveConfig, Driver};
use conclave_data::TaxiGenerator;
use conclave_engine::Relation;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;

fn series(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_series");
    group.sample_size(10);
    group.bench_function("sweep_to_1_3B", |b| b.iter(fig4));
    group.finish();
}

fn taxi_inputs(total: usize) -> HashMap<String, Relation> {
    let mut gen = TaxiGenerator::new(7);
    let parts = gen.split_across_parties(total, 3);
    let mut inputs = HashMap::new();
    for (name, rel) in ["inputA", "inputB", "inputC"].iter().zip(parts) {
        inputs.insert(name.to_string(), rel);
    }
    inputs
}

fn real_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_real_end_to_end");
    group.sample_size(10);
    let query = market_concentration();
    for &total in &[300usize, 3_000] {
        let inputs = taxi_inputs(total);
        let plan = compile(&query, &ConclaveConfig::standard()).unwrap();
        group.bench_with_input(BenchmarkId::new("conclave", total), &inputs, |b, inputs| {
            b.iter(|| {
                let mut driver = Driver::new(ConclaveConfig::standard().with_sequential_local());
                driver.run(&plan, inputs).unwrap()
            })
        });
    }
    // The MPC-only baseline is only feasible at the smallest size.
    let inputs = taxi_inputs(120);
    let plan = compile(&query, &ConclaveConfig::mpc_only()).unwrap();
    group.bench_function("mpc_only_120", |b| {
        b.iter(|| {
            let mut driver = Driver::new(ConclaveConfig::mpc_only().with_sequential_local());
            driver.run(&plan, &inputs).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, series, real_end_to_end);
criterion_main!(benches);
