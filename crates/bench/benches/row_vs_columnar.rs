//! Row engine vs vectorized columnar engine microbenchmark.
//!
//! Measures the cleartext hot path the ROADMAP's "as fast as the hardware
//! allows" goal cares about: a filter followed by a grouped aggregation —
//! the shape of the market/taxi queries' local pre-processing — at 10⁴, 10⁵
//! and 10⁶ rows. Each engine consumes its native storage format (rows stay
//! `Vec<Vec<Value>>`, columns stay typed vectors), so the numbers compare
//! execution strategies, not conversion overhead. A `convert` group prices
//! the row↔columnar conversions separately.
//!
//! The `driven` group measures the same pipeline at the *driver* level —
//! compile, bind, execute through the full `Session`/`Driver` stack — and
//! contrasts the unified `Table` data plane (conversion only at input and
//! collect boundaries) with the pre-redesign behavior of converting
//! row↔columnar at every operator edge.

use conclave_core::config::ConclaveConfig;
use conclave_core::session::Session;
use conclave_engine::{execute, execute_columnar, ColumnarRelation, Relation, Table};
use conclave_ir::builder::{Query, QueryBuilder};
use conclave_ir::expr::Expr;
use conclave_ir::ops::{AggFunc, Operator};
use conclave_ir::party::Party;
use conclave_ir::schema::Schema;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const SIZES: [usize; 3] = [10_000, 100_000, 1_000_000];

fn filter_op() -> Operator {
    Operator::Filter {
        predicate: Expr::col("price").gt(Expr::lit(500)),
    }
}

fn aggregate_op() -> Operator {
    Operator::Aggregate {
        group_by: vec!["companyID".into()],
        func: AggFunc::Sum,
        over: Some("price".into()),
        out: "rev".into(),
    }
}

fn dataset(n: usize) -> Relation {
    // Deterministic data: 50 companies, prices spread over 0..1000 so the
    // `price > 500` filter keeps roughly half the rows.
    let rows: Vec<Vec<i64>> = (0..n as i64)
        .map(|i| vec![i % 50, (i * 37) % 1000])
        .collect();
    Relation::from_ints(&["companyID", "price"], &rows)
}

fn row_pipeline(rel: &Relation) -> Relation {
    let filtered = execute(&filter_op(), &[rel]).expect("filter");
    execute(&aggregate_op(), &[&filtered]).expect("aggregate")
}

fn columnar_pipeline(rel: &ColumnarRelation) -> ColumnarRelation {
    let filtered = execute_columnar(&filter_op(), &[rel]).expect("filter");
    execute_columnar(&aggregate_op(), &[&filtered]).expect("aggregate")
}

fn filter_aggregate(c: &mut Criterion) {
    let mut group = c.benchmark_group("row_vs_columnar/filter_aggregate");
    for n in SIZES {
        group.sample_size(if n >= 1_000_000 { 5 } else { 10 });
        let rows = dataset(n);
        let cols = ColumnarRelation::from_rows(&rows);
        // Sanity: the engines agree before we time them.
        assert!(row_pipeline(&rows).same_rows_unordered(&columnar_pipeline(&cols).to_rows()));
        group.bench_with_input(BenchmarkId::new("row", n), &rows, |b, rel| {
            b.iter(|| row_pipeline(criterion::black_box(rel)))
        });
        group.bench_with_input(BenchmarkId::new("columnar", n), &cols, |b, rel| {
            b.iter(|| columnar_pipeline(criterion::black_box(rel)))
        });
    }
    group.finish();
}

/// The single-party filter + grouped-sum query, compiled to an all-local
/// plan: the driven counterpart of the engine-level pipelines above.
fn driven_query() -> Query {
    let p = Party::new(1, "solo");
    let schema = Schema::ints(&["companyID", "price"]);
    let mut q = QueryBuilder::new();
    let t = q.input("sales", schema, p.clone());
    let paid = q.filter(t, Expr::col("price").gt(Expr::lit(500)));
    let rev = q.aggregate(paid, "rev", AggFunc::Sum, &["companyID"], "price");
    q.collect(rev, &[p]);
    q.build().expect("driven query builds")
}

/// Emulates the pre-`Table` columnar driver path: every operator edge pays a
/// row→columnar conversion on the way in and a columnar→row conversion on
/// the way out (the driver stored row-major `Relation`s between nodes).
fn per_node_convert_pipeline(rel: &Relation) -> Relation {
    let filtered = execute_columnar(&filter_op(), &[&ColumnarRelation::from_rows(rel)])
        .expect("filter")
        .to_rows();
    execute_columnar(&aggregate_op(), &[&ColumnarRelation::from_rows(&filtered)])
        .expect("aggregate")
        .to_rows()
}

fn driven(c: &mut Criterion) {
    let mut group = c.benchmark_group("row_vs_columnar/driven");
    let query = driven_query();
    for n in SIZES {
        group.sample_size(if n >= 1_000_000 { 5 } else { 10 });
        let rows = dataset(n);
        let cols = ColumnarRelation::from_rows(&rows);

        // Row-mode driver (pre-redesign default).
        let row_session = Session::new(ConclaveConfig::standard().with_sequential_local())
            .bind("sales", rows.clone());
        group.bench_with_input(BenchmarkId::new("driver_row", n), &row_session, |b, s| {
            b.iter(|| {
                criterion::black_box(s)
                    .run(&query)
                    .expect("row driver runs")
            })
        });

        // Columnar-mode driver on the unified Table plane: column-backed
        // inputs, zero mid-plan conversions (the report asserts it).
        let col_session = Session::new(
            ConclaveConfig::standard()
                .with_sequential_local()
                .with_columnar(),
        )
        .bind("sales", Table::from_columns(cols.clone()));
        let report = col_session.run(&query).expect("columnar driver runs");
        assert_eq!(
            report.conversions.row_to_columnar, 0,
            "driven columnar plan must not convert mid-plan"
        );
        group.bench_with_input(
            BenchmarkId::new("driver_columnar", n),
            &col_session,
            |b, s| {
                b.iter(|| {
                    criterion::black_box(s)
                        .run(&query)
                        .expect("columnar driver runs")
                })
            },
        );

        // The pre-redesign columnar data plane: row↔columnar conversion at
        // every operator boundary.
        group.bench_with_input(
            BenchmarkId::new("columnar_per_node_convert", n),
            &rows,
            |b, rel| b.iter(|| per_node_convert_pipeline(criterion::black_box(rel))),
        );
    }
    group.finish();
}

fn conversion(c: &mut Criterion) {
    let mut group = c.benchmark_group("row_vs_columnar/convert");
    group.sample_size(10);
    let rows = dataset(100_000);
    let cols = ColumnarRelation::from_rows(&rows);
    group.bench_function("from_rows_100k", |b| {
        b.iter(|| ColumnarRelation::from_rows(criterion::black_box(&rows)))
    });
    group.bench_function("to_rows_100k", |b| {
        b.iter(|| criterion::black_box(&cols).to_rows())
    });
    group.finish();
}

criterion_group!(benches, filter_aggregate, driven, conversion);
criterion_main!(benches);
