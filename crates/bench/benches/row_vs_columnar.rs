//! Row engine vs vectorized columnar engine microbenchmark.
//!
//! Measures the cleartext hot path the ROADMAP's "as fast as the hardware
//! allows" goal cares about: a filter followed by a grouped aggregation —
//! the shape of the market/taxi queries' local pre-processing — at 10⁴, 10⁵
//! and 10⁶ rows. Each engine consumes its native storage format (rows stay
//! `Vec<Vec<Value>>`, columns stay typed vectors), so the numbers compare
//! execution strategies, not conversion overhead. A `convert` group prices
//! the row↔columnar conversions separately.

use conclave_engine::{execute, execute_columnar, ColumnarRelation, Relation};
use conclave_ir::expr::Expr;
use conclave_ir::ops::{AggFunc, Operator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const SIZES: [usize; 3] = [10_000, 100_000, 1_000_000];

fn filter_op() -> Operator {
    Operator::Filter {
        predicate: Expr::col("price").gt(Expr::lit(500)),
    }
}

fn aggregate_op() -> Operator {
    Operator::Aggregate {
        group_by: vec!["companyID".into()],
        func: AggFunc::Sum,
        over: Some("price".into()),
        out: "rev".into(),
    }
}

fn dataset(n: usize) -> Relation {
    // Deterministic data: 50 companies, prices spread over 0..1000 so the
    // `price > 500` filter keeps roughly half the rows.
    let rows: Vec<Vec<i64>> = (0..n as i64)
        .map(|i| vec![i % 50, (i * 37) % 1000])
        .collect();
    Relation::from_ints(&["companyID", "price"], &rows)
}

fn row_pipeline(rel: &Relation) -> Relation {
    let filtered = execute(&filter_op(), &[rel]).expect("filter");
    execute(&aggregate_op(), &[&filtered]).expect("aggregate")
}

fn columnar_pipeline(rel: &ColumnarRelation) -> ColumnarRelation {
    let filtered = execute_columnar(&filter_op(), &[rel]).expect("filter");
    execute_columnar(&aggregate_op(), &[&filtered]).expect("aggregate")
}

fn filter_aggregate(c: &mut Criterion) {
    let mut group = c.benchmark_group("row_vs_columnar/filter_aggregate");
    for n in SIZES {
        group.sample_size(if n >= 1_000_000 { 5 } else { 10 });
        let rows = dataset(n);
        let cols = ColumnarRelation::from_rows(&rows);
        // Sanity: the engines agree before we time them.
        assert!(row_pipeline(&rows).same_rows_unordered(&columnar_pipeline(&cols).to_rows()));
        group.bench_with_input(BenchmarkId::new("row", n), &rows, |b, rel| {
            b.iter(|| row_pipeline(criterion::black_box(rel)))
        });
        group.bench_with_input(BenchmarkId::new("columnar", n), &cols, |b, rel| {
            b.iter(|| columnar_pipeline(criterion::black_box(rel)))
        });
    }
    group.finish();
}

fn conversion(c: &mut Criterion) {
    let mut group = c.benchmark_group("row_vs_columnar/convert");
    group.sample_size(10);
    let rows = dataset(100_000);
    let cols = ColumnarRelation::from_rows(&rows);
    group.bench_function("from_rows_100k", |b| {
        b.iter(|| ColumnarRelation::from_rows(criterion::black_box(&rows)))
    });
    group.bench_function("to_rows_100k", |b| {
        b.iter(|| criterion::black_box(&cols).to_rows())
    });
    group.finish();
}

criterion_group!(benches, filter_aggregate, conversion);
criterion_main!(benches);
