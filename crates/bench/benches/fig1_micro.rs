//! Criterion bench for Figure 1: single-operator microbenchmarks.
//!
//! Two groups are measured:
//! * `fig1_series`: generating the full simulated series for each operator
//!   (this is what the `reproduce` binary prints), and
//! * `fig1_real_ops`: real execution of each operator at small scale on the
//!   cleartext engine and the Sharemind-like MPC engine, grounding the
//!   simulated numbers in actually-executed protocols.

use bench::figures::{fig1, MicroOp};
use conclave_data::SyntheticGenerator;
use conclave_ir::ops::{AggFunc, JoinKind, Operator};
use conclave_mpc::backend::{MpcBackendConfig, MpcEngine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn series(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_series");
    group.sample_size(10);
    for (name, op) in [
        ("aggregate", MicroOp::Aggregate),
        ("join", MicroOp::Join),
        ("project", MicroOp::Project),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| fig1(criterion::black_box(op)))
        });
    }
    group.finish();
}

fn real_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_real_ops");
    group.sample_size(10);
    let mut gen = SyntheticGenerator::new(42);
    let rel = gen.uniform(&["key", "value"], 1_000, 100);
    let right = gen.uniform(&["key", "weight"], 1_000, 100);

    let agg = Operator::Aggregate {
        group_by: vec!["key".into()],
        func: AggFunc::Sum,
        over: Some("value".into()),
        out: "total".into(),
    };
    let join = Operator::Join {
        left_keys: vec!["key".into()],
        right_keys: vec!["key".into()],
        kind: JoinKind::Inner,
    };
    let project = Operator::Project {
        columns: vec!["value".into()],
    };

    group.bench_function("cleartext_aggregate_1k", |b| {
        b.iter(|| conclave_engine::execute(&agg, &[&rel]).unwrap())
    });
    group.bench_function("cleartext_join_1k", |b| {
        b.iter(|| conclave_engine::execute(&join, &[&rel, &right]).unwrap())
    });
    group.bench_function("mpc_project_200", |b| {
        let small = gen.uniform(&["key", "value"], 200, 50);
        b.iter(|| {
            let mut engine = MpcEngine::new(MpcBackendConfig::sharemind());
            engine.execute_op(&project, &[&small]).unwrap()
        })
    });
    group.bench_function("mpc_aggregate_64", |b| {
        let small = gen.uniform(&["key", "value"], 64, 8);
        b.iter(|| {
            let mut engine = MpcEngine::new(MpcBackendConfig::sharemind());
            engine.execute_op(&agg, &[&small]).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, series, real_ops);
criterion_main!(benches);
