//! Criterion bench for Figure 6: the credit-card regulation query.
//!
//! * `fig6_series` regenerates the Sharemind-only vs Conclave sweep.
//! * `fig6_real_end_to_end` compiles and executes the query for real over
//!   generated credit data, with and without the trust annotations that
//!   enable the hybrid join and hybrid aggregation.

use bench::figures::fig6;
use bench::queries::credit_card_regulation;
use conclave_core::{compile, ConclaveConfig, Driver};
use conclave_data::CreditGenerator;
use conclave_engine::Relation;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;

fn series(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_series");
    group.sample_size(10);
    group.bench_function("sweep_to_300k", |b| b.iter(fig6));
    group.finish();
}

fn credit_inputs(population: usize) -> HashMap<String, Relation> {
    let mut gen = CreditGenerator::new(11);
    let mut inputs = HashMap::new();
    inputs.insert("demographics".to_string(), gen.demographics(population));
    inputs.insert("scores1".to_string(), gen.agency_scores(population));
    inputs.insert("scores2".to_string(), gen.agency_scores(population));
    inputs
}

fn real_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_real_end_to_end");
    group.sample_size(10);
    for &population in &[200usize, 1_000] {
        let inputs = credit_inputs(population);
        let hybrid_query = credit_card_regulation(true);
        let hybrid_plan = compile(&hybrid_query, &ConclaveConfig::standard()).unwrap();
        group.bench_with_input(
            BenchmarkId::new("conclave_hybrid", population),
            &inputs,
            |b, inputs| {
                b.iter(|| {
                    let mut driver =
                        Driver::new(ConclaveConfig::standard().with_sequential_local());
                    driver.run(&hybrid_plan, inputs).unwrap()
                })
            },
        );
    }
    // The pure-MPC baseline only at a tiny size (its join is quadratic).
    let inputs = credit_inputs(150);
    let baseline_query = credit_card_regulation(false);
    let baseline_plan = compile(&baseline_query, &ConclaveConfig::mpc_only()).unwrap();
    group.bench_function("sharemind_only_150", |b| {
        b.iter(|| {
            let mut driver = Driver::new(ConclaveConfig::mpc_only().with_sequential_local());
            driver.run(&baseline_plan, &inputs).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, series, real_end_to_end);
criterion_main!(benches);
