//! Criterion bench for the ablation study: what each Conclave optimization
//! contributes to the market-concentration query (DESIGN.md §5).

use bench::figures::ablations;
use bench::queries::market_concentration;
use conclave_core::{compile, ConclaveConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn ablation_series(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_series");
    group.sample_size(10);
    for &n in &[100_000u64, 1_000_000, 10_000_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| ablations(n))
        });
    }
    group.finish();
}

fn compile_times(c: &mut Criterion) {
    // Compilation itself should be cheap; track it so compiler passes do not
    // regress to something data-dependent.
    let mut group = c.benchmark_group("compile_times");
    let query = market_concentration();
    for (name, config) in [
        ("standard", ConclaveConfig::standard()),
        ("mpc_only", ConclaveConfig::mpc_only()),
        ("no_hybrid", ConclaveConfig::without_hybrid()),
    ] {
        group.bench_function(name, |b| b.iter(|| compile(&query, &config).unwrap()));
    }
    group.finish();
}

criterion_group!(benches, ablation_series, compile_times);
criterion_main!(benches);
