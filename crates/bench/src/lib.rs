//! Benchmark harness support: query builders and figure-series generators.
//!
//! Every figure in the paper's evaluation (§2.3 Figure 1, §7 Figures 4–7) is
//! reproduced by a function in [`figures`] that returns the same series the
//! paper plots — system name, input size, and runtime (or `None` where the
//! system fails or exceeds the experiment's time budget, mirroring the points
//! missing from the paper's plots). The Criterion benches and the
//! `reproduce` binary are thin wrappers around these functions.

pub mod figures;
pub mod queries;

/// One point of a figure series.
#[derive(Debug, Clone, PartialEq)]
pub struct DataPoint {
    /// System / configuration name (e.g. "Conclave", "Sharemind only").
    pub system: String,
    /// Total input records across all parties.
    pub input_records: u64,
    /// Simulated runtime in seconds; `None` if the system fails at this size
    /// (out of memory) or exceeds the experiment cut-off.
    pub runtime_secs: Option<f64>,
}

impl DataPoint {
    /// Creates a successful data point.
    pub fn ok(system: &str, input_records: u64, runtime_secs: f64) -> Self {
        DataPoint {
            system: system.to_string(),
            input_records,
            runtime_secs: Some(runtime_secs),
        }
    }

    /// Creates a failed data point (OOM / timeout).
    pub fn failed(system: &str, input_records: u64) -> Self {
        DataPoint {
            system: system.to_string(),
            input_records,
            runtime_secs: None,
        }
    }
}

/// Renders a list of data points as an aligned text table (one row per
/// (size, system) pair), which is what the `reproduce` binary prints and what
/// EXPERIMENTS.md records.
pub fn render_table(title: &str, points: &[DataPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "## {title}");
    let _ = writeln!(
        out,
        "{:>14} {:<24} {:>14}",
        "input records", "system", "runtime [s]"
    );
    for p in points {
        let runtime = match p.runtime_secs {
            Some(t) => format!("{t:.1}"),
            None => "FAILED/>cutoff".to_string(),
        };
        let _ = writeln!(
            out,
            "{:>14} {:<24} {:>14}",
            p.input_records, p.system, runtime
        );
    }
    out
}

/// The two-hour experiment cut-off the paper uses (e.g. §7.3: "at 30 k, the
/// query does not complete within two hours").
pub const CUTOFF_SECS: f64 = 2.0 * 3600.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_point_constructors() {
        let ok = DataPoint::ok("Conclave", 1000, 12.5);
        assert_eq!(ok.runtime_secs, Some(12.5));
        let failed = DataPoint::failed("Obliv-C", 1000);
        assert!(failed.runtime_secs.is_none());
    }

    #[test]
    fn table_rendering() {
        let points = vec![
            DataPoint::ok("Conclave", 10, 1.0),
            DataPoint::failed("Obliv-C", 10),
        ];
        let t = render_table("Figure X", &points);
        assert!(t.contains("Figure X"));
        assert!(t.contains("Conclave"));
        assert!(t.contains("FAILED"));
    }
}
