//! Series generators for every figure in the paper's evaluation.
//!
//! Each `figN*` function sweeps the input sizes the paper uses and produces
//! one [`DataPoint`] per (system, size) pair, using the compiled plans and
//! the calibrated cost models. Systems that run out of memory or exceed the
//! two-hour cut-off produce `None` runtimes, mirroring the truncated curves
//! in the original plots.

use crate::{queries, DataPoint, CUTOFF_SECS};
use conclave_core::{compile, CardinalityEstimator, ConclaveConfig, WorkloadStats};
use conclave_ir::ops::{AggFunc, JoinKind, Operator};
use conclave_mpc::backend::{MpcBackendConfig, MpcEngine};
use conclave_parallel::{ClusterCostModel, ClusterSpec};
use conclave_smcql::queries as smcql_queries;
use conclave_smcql::SmcqlPlanner;
use std::collections::HashMap;

fn cap(system: &str, records: u64, secs: f64) -> DataPoint {
    if secs > CUTOFF_SECS {
        DataPoint::failed(system, records)
    } else {
        DataPoint::ok(system, records, secs)
    }
}

/// The micro-benchmark operator of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroOp {
    /// Figure 1a: grouped SUM.
    Aggregate,
    /// Figure 1b: equi-join.
    Join,
    /// Figure 1c: projection.
    Project,
}

impl MicroOp {
    fn operator(self) -> Operator {
        match self {
            MicroOp::Aggregate => Operator::Aggregate {
                group_by: vec!["key".into()],
                func: AggFunc::Sum,
                over: Some("value".into()),
                out: "total".into(),
            },
            MicroOp::Join => Operator::Join {
                left_keys: vec!["key".into()],
                right_keys: vec!["key".into()],
                kind: JoinKind::Inner,
            },
            MicroOp::Project => Operator::Project {
                columns: vec!["value".into()],
            },
        }
    }
}

/// Figure 1: single-operator scalability of insecure Spark vs Sharemind vs
/// Obliv-C, for sizes 10 … 10 M total records.
pub fn fig1(op: MicroOp) -> Vec<DataPoint> {
    let sizes: Vec<u64> = vec![10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];
    let mut points = Vec::new();
    let cluster = ClusterSpec::paper_party_cluster();
    let cluster_cost = ClusterCostModel::default();
    let sharemind = MpcEngine::new(MpcBackendConfig::sharemind());
    let obliv_c = MpcEngine::new(MpcBackendConfig::obliv_c());
    let operator = op.operator();

    for &n in &sizes {
        // Insecure Spark: one job over the combined input.
        let spark = cluster_cost
            .estimate_job(&cluster, &[(operator.clone(), n, output_rows(op, n), 16)])
            .as_secs_f64();
        points.push(cap("Insecure (Spark)", n, spark));

        // Sharemind: share inputs, run the operator, open the result.
        let (in_rows, in_cols) = micro_inputs(op, n);
        let mut secs = sharemind.estimate_input(n, 2).simulated_time.as_secs_f64();
        match sharemind.estimate_op(&operator, &in_rows, &in_cols, output_rows(op, n)) {
            Ok(stats) => {
                secs += stats.simulated_time.as_secs_f64();
                secs += sharemind
                    .estimate_open(output_rows(op, n), 2)
                    .simulated_time
                    .as_secs_f64();
                secs += 2.0; // job overhead
                points.push(cap("Secure (Sharemind)", n, secs));
            }
            Err(_) => points.push(DataPoint::failed("Secure (Sharemind)", n)),
        }

        // Obliv-C: garbled circuits with the memory model.
        match obliv_c.estimate_op(&operator, &in_rows, &in_cols, output_rows(op, n)) {
            Ok(stats) => points.push(cap(
                "Secure (Obliv-C)",
                n,
                stats.simulated_time.as_secs_f64(),
            )),
            Err(_) => points.push(DataPoint::failed("Secure (Obliv-C)", n)),
        }
    }
    points
}

fn micro_inputs(op: MicroOp, n: u64) -> (Vec<u64>, Vec<u64>) {
    match op {
        MicroOp::Join => (vec![n / 2, n - n / 2], vec![2, 2]),
        _ => (vec![n], vec![2]),
    }
}

fn output_rows(op: MicroOp, n: u64) -> u64 {
    match op {
        MicroOp::Aggregate => (n / 10).max(1),
        MicroOp::Join => n / 2,
        MicroOp::Project => n,
    }
}

/// Figure 4: the market-concentration query end to end — Sharemind only,
/// insecure Spark on the joint cluster, and Conclave — for 10 … 1.3 B records.
pub fn fig4() -> Vec<DataPoint> {
    let sizes: Vec<u64> = vec![
        10,
        100,
        1_000,
        10_000,
        100_000,
        1_000_000,
        10_000_000,
        100_000_000,
        1_300_000_000,
    ];
    let query = queries::market_concentration();
    let stats = WorkloadStats {
        filter_selectivity: 0.99,
        max_groups: Some(12),
        ..Default::default()
    };
    let conclave_plan = compile(&query, &ConclaveConfig::standard()).expect("compiles");
    let mpc_plan = compile(&query, &ConclaveConfig::mpc_only()).expect("compiles");
    let conclave_est = CardinalityEstimator::new(ConclaveConfig::standard(), stats);
    let mpc_est = CardinalityEstimator::new(ConclaveConfig::mpc_only(), stats);
    let cluster_cost = ClusterCostModel::default();
    let joint_cluster = ClusterSpec::paper_insecure_cluster();

    let mut points = Vec::new();
    for &n in &sizes {
        let per_party = split_three(n);
        let inputs: HashMap<String, u64> = [
            ("inputA".to_string(), per_party[0]),
            ("inputB".to_string(), per_party[1]),
            ("inputC".to_string(), per_party[2]),
        ]
        .into();

        // Sharemind only.
        let e = mpc_est.estimate(&mpc_plan, &inputs).expect("estimate");
        if e.failed() {
            points.push(DataPoint::failed("Sharemind only", n));
        } else {
            points.push(cap("Sharemind only", n, e.total_time().as_secs_f64()));
        }

        // Insecure Spark over the combined data on the joint 9-node cluster.
        let insecure = cluster_cost
            .estimate_job(
                &joint_cluster,
                &[
                    (
                        Operator::Filter {
                            predicate: conclave_ir::expr::Expr::col("price")
                                .gt(conclave_ir::expr::Expr::lit(0)),
                        },
                        n,
                        n,
                        24,
                    ),
                    (
                        Operator::Aggregate {
                            group_by: vec!["companyID".into()],
                            func: AggFunc::Sum,
                            over: Some("price".into()),
                            out: "rev".into(),
                        },
                        n,
                        12,
                        16,
                    ),
                ],
            )
            .as_secs_f64();
        points.push(cap("Insecure Spark", n, insecure));

        // Conclave.
        let e = conclave_est
            .estimate(&conclave_plan, &inputs)
            .expect("estimate");
        points.push(cap("Conclave", n, e.total_time().as_secs_f64()));
    }
    points
}

fn split_three(n: u64) -> [u64; 3] {
    [n / 3, n / 3, n - 2 * (n / 3)]
}

/// Figure 5a: join microbenchmark — Sharemind MPC join vs Conclave hybrid
/// join vs Conclave public join, for 10 … 2 M total records.
pub fn fig5a() -> Vec<DataPoint> {
    let sizes: Vec<u64> = vec![
        10, 100, 1_000, 10_000, 100_000, 200_000, 1_000_000, 2_000_000,
    ];
    let stats = WorkloadStats {
        join_selectivity: 1.0,
        ..Default::default()
    };
    let plans = [
        (
            "Sharemind join",
            queries::single_join(false, false),
            ConclaveConfig::mpc_only(),
        ),
        (
            "Conclave hybrid join",
            queries::single_join(true, false),
            ConclaveConfig::standard(),
        ),
        (
            "Conclave public join",
            queries::single_join(false, true),
            ConclaveConfig::standard(),
        ),
    ];
    let mut points = Vec::new();
    for &n in &sizes {
        for (name, query, config) in &plans {
            let plan = compile(query, config).expect("compiles");
            let est = CardinalityEstimator::new(config.clone(), stats);
            let inputs: HashMap<String, u64> = [
                ("left".to_string(), n / 2),
                ("right".to_string(), n - n / 2),
            ]
            .into();
            let e = est.estimate(&plan, &inputs).expect("estimate");
            if e.failed() {
                points.push(DataPoint::failed(name, n));
            } else {
                points.push(cap(name, n, e.total_time().as_secs_f64()));
            }
        }
    }
    points
}

/// Figure 5b: aggregation microbenchmark — Sharemind MPC aggregation vs
/// Conclave hybrid aggregation, for 10 … 100 k total records.
pub fn fig5b() -> Vec<DataPoint> {
    let sizes: Vec<u64> = vec![10, 100, 1_000, 10_000, 30_000, 100_000];
    let stats = WorkloadStats {
        distinct_key_ratio: 0.1,
        ..Default::default()
    };
    let plans = [
        (
            "Sharemind agg.",
            queries::single_aggregation(3, false),
            ConclaveConfig::mpc_only(),
        ),
        (
            "Conclave hybrid agg.",
            queries::single_aggregation(3, true),
            ConclaveConfig::standard().without_pushdown_split(),
        ),
    ];
    let mut points = Vec::new();
    for &n in &sizes {
        for (name, query, config) in &plans {
            let plan = compile(query, config).expect("compiles");
            let est = CardinalityEstimator::new(config.clone(), stats);
            let per = split_three(n);
            let inputs: HashMap<String, u64> = [
                ("input1".to_string(), per[0]),
                ("input2".to_string(), per[1]),
                ("input3".to_string(), per[2]),
            ]
            .into();
            let e = est.estimate(&plan, &inputs).expect("estimate");
            points.push(cap(name, n, e.total_time().as_secs_f64()));
        }
    }
    points
}

/// Figure 6: the credit-card regulation query — Sharemind only vs Conclave
/// with hybrid operators — for 10 … 300 k total records.
pub fn fig6() -> Vec<DataPoint> {
    let sizes: Vec<u64> = vec![10, 100, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000];
    let stats = WorkloadStats {
        join_selectivity: 1.0,
        max_groups: Some(100),
        ..Default::default()
    };
    let conclave_query = queries::credit_card_regulation(true);
    let baseline_query = queries::credit_card_regulation(false);
    let conclave_plan = compile(&conclave_query, &ConclaveConfig::standard()).expect("compiles");
    let baseline_plan = compile(&baseline_query, &ConclaveConfig::mpc_only()).expect("compiles");
    let conclave_est = CardinalityEstimator::new(ConclaveConfig::standard(), stats);
    let baseline_est = CardinalityEstimator::new(ConclaveConfig::mpc_only(), stats);

    let mut points = Vec::new();
    for &n in &sizes {
        // Half the records are the regulator's demographics; the rest are the
        // two agencies' score relations.
        let inputs: HashMap<String, u64> = [
            ("demographics".to_string(), n / 2),
            ("scores1".to_string(), n / 4),
            ("scores2".to_string(), n - n / 2 - n / 4),
        ]
        .into();
        let b = baseline_est
            .estimate(&baseline_plan, &inputs)
            .expect("estimate");
        if b.failed() {
            points.push(DataPoint::failed("Sharemind only", n));
        } else {
            points.push(cap("Sharemind only", n, b.total_time().as_secs_f64()));
        }
        let c = conclave_est
            .estimate(&conclave_plan, &inputs)
            .expect("estimate");
        points.push(cap("Conclave", n, c.total_time().as_secs_f64()));
    }
    points
}

/// Figure 7a: the aspirin-count query — SMCQL vs Conclave — for 10 … 4 M
/// records per party.
pub fn fig7a() -> Vec<DataPoint> {
    let sizes_per_party: Vec<u64> =
        vec![10, 100, 1_000, 10_000, 40_000, 200_000, 400_000, 4_000_000];
    let overlap = 0.02;
    let selectivity = 0.25;
    let query = queries::aspirin_count();
    let plan = compile(&query, &ConclaveConfig::standard()).expect("compiles");
    let smcql = SmcqlPlanner::default_paper_setup();

    let mut points = Vec::new();
    for &per_party in &sizes_per_party {
        let total = per_party * 2;
        // SMCQL.
        match smcql_queries::estimate_aspirin_count(&smcql, per_party, overlap, selectivity) {
            Ok(t) => points.push(cap("SMCQL", total, t.as_secs_f64())),
            Err(_) => points.push(DataPoint::failed("SMCQL", total)),
        }
        // Conclave: the public join means only the filtered, matching rows
        // enter MPC; the distinct count happens after the in-the-clear sort.
        let stats = WorkloadStats {
            filter_selectivity: selectivity,
            join_selectivity: overlap,
            ..Default::default()
        };
        let est = CardinalityEstimator::new(ConclaveConfig::standard(), stats);
        let inputs: HashMap<String, u64> = [
            ("diagnoses1".to_string(), per_party),
            ("diagnoses2".to_string(), per_party),
            ("medications1".to_string(), per_party),
            ("medications2".to_string(), per_party),
        ]
        .into();
        let e = est.estimate(&plan, &inputs).expect("estimate");
        points.push(cap("Conclave", total, e.total_time().as_secs_f64()));
    }
    points
}

/// Figure 7b: the comorbidity query — SMCQL vs Conclave — for 10 … 200 k total
/// records (the x-axis is records per party in the paper; we report totals).
pub fn fig7b() -> Vec<DataPoint> {
    let sizes_per_party: Vec<u64> = vec![10, 100, 1_000, 10_000, 20_000, 100_000];
    let distinct_ratio = 0.1;
    let query = queries::comorbidity();
    let plan = compile(&query, &ConclaveConfig::standard()).expect("compiles");
    let smcql = SmcqlPlanner::default_paper_setup();

    let mut points = Vec::new();
    for &per_party in &sizes_per_party {
        let total = per_party * 2;
        match smcql_queries::estimate_comorbidity(&smcql, per_party, distinct_ratio) {
            Ok(t) => points.push(cap("SMCQL", total, t.as_secs_f64())),
            Err(_) => points.push(DataPoint::failed("SMCQL", total)),
        }
        let stats = WorkloadStats {
            distinct_key_ratio: distinct_ratio,
            ..Default::default()
        };
        let est = CardinalityEstimator::new(ConclaveConfig::standard(), stats);
        let inputs: HashMap<String, u64> = [
            ("diagnoses1".to_string(), per_party),
            ("diagnoses2".to_string(), per_party),
        ]
        .into();
        let e = est.estimate(&plan, &inputs).expect("estimate");
        points.push(cap("Conclave", total, e.total_time().as_secs_f64()));
    }
    points
}

/// Ablation sweep: the market query at a fixed size under each optimization
/// toggle, quantifying what every §5 technique contributes.
pub fn ablations(total_records: u64) -> Vec<DataPoint> {
    let query = queries::market_concentration();
    let stats = WorkloadStats {
        filter_selectivity: 0.99,
        max_groups: Some(12),
        ..Default::default()
    };
    let configs = vec![
        ("all optimizations", ConclaveConfig::standard()),
        (
            "sequential local backend",
            ConclaveConfig::standard().with_sequential_local(),
        ),
        (
            "no aggregation split",
            ConclaveConfig::standard().without_pushdown_split(),
        ),
        ("no push-down at all", {
            let mut c = ConclaveConfig::standard();
            c.use_pushdown = false;
            c
        }),
        ("MPC only", ConclaveConfig::mpc_only()),
    ];
    let per = split_three(total_records);
    let inputs: HashMap<String, u64> = [
        ("inputA".to_string(), per[0]),
        ("inputB".to_string(), per[1]),
        ("inputC".to_string(), per[2]),
    ]
    .into();
    let mut points = Vec::new();
    for (name, config) in configs {
        let plan = compile(&query, &config).expect("compiles");
        let est = CardinalityEstimator::new(config, stats);
        let e = est.estimate(&plan, &inputs).expect("estimate");
        points.push(DataPoint::ok(
            name,
            total_records,
            e.total_time().as_secs_f64(),
        ));
    }
    points
}

/// Helper used by Figure 5b / ablations: the standard configuration without
/// the aggregation-splitting push-down (so the hybrid aggregation, rather
/// than the local pre-aggregation, carries the work).
trait ConfigExt {
    fn without_pushdown_split(self) -> Self;
}

impl ConfigExt for ConclaveConfig {
    fn without_pushdown_split(mut self) -> Self {
        self.allow_cardinality_leaking_pushdown = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime(points: &[DataPoint], system: &str, n: u64) -> Option<f64> {
        points
            .iter()
            .find(|p| p.system == system && p.input_records == n)
            .and_then(|p| p.runtime_secs)
    }

    #[test]
    fn fig1_shapes_match_the_paper() {
        for op in [MicroOp::Aggregate, MicroOp::Join, MicroOp::Project] {
            let points = fig1(op);
            // Spark handles 10 M records in under two minutes.
            let spark = runtime(&points, "Insecure (Spark)", 10_000_000).unwrap();
            assert!(spark < 120.0, "{op:?}: spark at 10M took {spark}");
            // The garbled-circuit backend never reaches 10 M records, and
            // Sharemind either exceeds the cutoff (joins, aggregations) or is
            // an order of magnitude beyond the paper's plotted range
            // (projection storage overhead, Fig. 1c).
            assert!(runtime(&points, "Secure (Obliv-C)", 10_000_000).is_none());
            match runtime(&points, "Secure (Sharemind)", 10_000_000) {
                None => {}
                Some(t) => assert!(t > 600.0, "{op:?}: Sharemind at 10M took only {t}"),
            }
            // At small sizes the MPC systems do complete.
            assert!(runtime(&points, "Secure (Sharemind)", 1_000).is_some());
        }
        // Obliv-C's join runs out of memory by 100 k records (paper: ~30 k).
        let join = fig1(MicroOp::Join);
        assert!(runtime(&join, "Secure (Obliv-C)", 100_000).is_none());
        // Sharemind's projection is still feasible at 1 M but far slower than
        // Spark (storage overhead dominates, Fig. 1c).
        let proj = fig1(MicroOp::Project);
        let sm = runtime(&proj, "Secure (Sharemind)", 1_000_000).unwrap();
        let spark = runtime(&proj, "Insecure (Spark)", 1_000_000).unwrap();
        assert!(sm > spark * 3.0);
    }

    #[test]
    fn fig4_conclave_scales_to_1_3_billion_rows() {
        let points = fig4();
        let conclave = runtime(&points, "Conclave", 1_300_000_000).unwrap();
        assert!(
            conclave < 2_400.0,
            "Conclave should finish 1.3 B rows in <20–40 min, got {conclave:.0} s"
        );
        // Sharemind-only cannot get past ~10 k records on the paper's
        // minutes-scale plot: it exceeds 15 minutes at 100 k and the two-hour
        // cutoff by 1 M.
        let sharemind_100k = runtime(&points, "Sharemind only", 100_000);
        assert!(sharemind_100k.is_none() || sharemind_100k.unwrap() > 900.0);
        assert!(runtime(&points, "Sharemind only", 1_000_000).is_none());
        assert!(runtime(&points, "Sharemind only", 1_000).is_some());
        // Insecure Spark and Conclave are within the same order of magnitude
        // at 1.3 B (the joint cluster is somewhat faster at the top end).
        let insecure = runtime(&points, "Insecure Spark", 1_300_000_000).unwrap();
        assert!(insecure < conclave * 3.0 && conclave < insecure * 10.0);
    }

    #[test]
    fn fig5_hybrid_operators_beat_pure_mpc() {
        let points = fig5a();
        let hybrid = runtime(&points, "Conclave hybrid join", 200_000).unwrap();
        let public = runtime(&points, "Conclave public join", 200_000).unwrap();
        assert!(
            runtime(&points, "Sharemind join", 200_000).is_none(),
            "MPC join way past cutoff"
        );
        let mpc_10k = runtime(&points, "Sharemind join", 10_000).unwrap();
        assert!(mpc_10k > 600.0, "paper: >20 min at 10k, got {mpc_10k}");
        assert!(
            hybrid < 1_200.0,
            "hybrid join at 200k ≈ 10 min, got {hybrid}"
        );
        assert!(public < hybrid);

        let agg = fig5b();
        let sm = runtime(&agg, "Sharemind agg.", 30_000).unwrap();
        let hybrid_agg = runtime(&agg, "Conclave hybrid agg.", 30_000).unwrap();
        assert!(
            sm > 7.0 * hybrid_agg,
            "hybrid agg should win by >7x: {sm} vs {hybrid_agg}"
        );
    }

    #[test]
    fn fig6_credit_query_shapes() {
        let points = fig6();
        // Sharemind-only fails to scale beyond ~3k (paper: does not complete
        // within two hours at 30 k).
        assert!(runtime(&points, "Sharemind only", 30_000).is_none());
        assert!(runtime(&points, "Sharemind only", 1_000).is_some());
        // Conclave processes 300 k records in well under an hour (paper: <25 min).
        let conclave = runtime(&points, "Conclave", 300_000).unwrap();
        assert!(conclave < 3_600.0, "got {conclave:.0} s");
    }

    #[test]
    fn fig7_conclave_outperforms_smcql() {
        let a = fig7a();
        // Paper: at 40 k rows/party Conclave takes seconds, SMCQL ~14 minutes.
        let conclave = runtime(&a, "Conclave", 80_000).unwrap();
        let smcql = runtime(&a, "SMCQL", 80_000).unwrap();
        assert!(conclave < smcql, "{conclave} vs {smcql}");
        assert!(smcql > 120.0, "SMCQL should take minutes at 40k/party");
        // SMCQL does not finish 400 k rows/party within the cutoff; Conclave does.
        assert!(runtime(&a, "SMCQL", 800_000).is_none());
        assert!(runtime(&a, "Conclave", 800_000).is_some());

        let b = fig7b();
        let conclave = runtime(&b, "Conclave", 40_000).unwrap();
        let smcql = runtime(&b, "SMCQL", 40_000).unwrap();
        assert!(conclave < smcql);
    }

    #[test]
    fn ablations_rank_configurations_sensibly() {
        let points = ablations(1_000_000);
        let get = |name: &str| {
            points
                .iter()
                .find(|p| p.system == name)
                .and_then(|p| p.runtime_secs)
                .unwrap()
        };
        assert!(get("all optimizations") <= get("no aggregation split") + 1e-6);
        assert!(get("no aggregation split") <= get("MPC only"));
        assert!(get("all optimizations") < get("MPC only") / 10.0);
    }
}
