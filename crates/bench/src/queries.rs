//! Builders for the paper's benchmark queries, with the annotations each
//! experiment uses.

use conclave_ir::builder::{Query, QueryBuilder};
use conclave_ir::expr::Expr;
use conclave_ir::ops::{AggFunc, Operand};
use conclave_ir::party::Party;
use conclave_ir::schema::{ColumnDef, Schema};
use conclave_ir::trust::TrustSet;
use conclave_ir::types::DataType;

/// The three parties of the market-concentration and microbenchmark setups.
pub fn three_parties() -> (Party, Party, Party) {
    (
        Party::new(1, "mpc.a.com"),
        Party::new(2, "mpc.b.com"),
        Party::new(3, "mpc.c.org"),
    )
}

/// The market-concentration (HHI) query of Listing 2 / §7.1.
///
/// Taxi trips (`companyID`, `price`, `airport`) are contributed by three
/// parties; the query filters zero fares, aggregates revenue per company,
/// computes market shares against the total, squares and sums them. The final
/// share/HHI arithmetic is reversible and ends up at the recipient after
/// push-up; the heavy lifting is the per-company revenue aggregation.
pub fn market_concentration() -> Query {
    let (pa, pb, pc) = three_parties();
    let schema = Schema::new(vec![
        ColumnDef::new("companyID", DataType::Int),
        ColumnDef::new("price", DataType::Int),
        ColumnDef::new("airport", DataType::Int),
    ]);
    let mut q = QueryBuilder::new();
    let a = q.input("inputA", schema.clone(), pa.clone());
    let b = q.input("inputB", schema.clone(), pb);
    let c = q.input("inputC", schema, pc);
    let taxi = q.concat(&[a, b, c]);
    let non_zero = q.filter(taxi, Expr::col("price").gt(Expr::lit(0)));
    let proj = q.project(non_zero, &["companyID", "price"]);
    let rev = q.aggregate(proj, "local_rev", AggFunc::Sum, &["companyID"], "price");
    // Squared revenue per company; dividing by the squared total revenue (a
    // single public output value) happens at the recipient. Summing the
    // squared revenues is the remaining aggregation.
    let sq = q.multiply(
        rev,
        "rev_sq",
        vec![Operand::col("local_rev"), Operand::col("local_rev")],
    );
    let hhi_num = q.aggregate_scalar(sq, "hhi_numerator", AggFunc::Sum, "rev_sq");
    q.collect(hhi_num, &[pa]);
    q.build().expect("market query is well formed")
}

/// The credit-card regulation query of Listing 1 / §7.3.
///
/// `with_trust_annotations` controls whether the banks annotate their SSN
/// columns with the regulator as an STP (the §7.3 configuration) or not (the
/// "Sharemind only" baseline cannot use hybrid operators either way).
pub fn credit_card_regulation(with_trust_annotations: bool) -> Query {
    let regulator = Party::new(1, "mpc.ftc.gov");
    let bank_a = Party::new(2, "mpc.a.com");
    let bank_b = Party::new(3, "mpc.b.cash");
    let ssn_trust = if with_trust_annotations {
        TrustSet::of([1])
    } else {
        TrustSet::private()
    };
    let demo_schema = Schema::new(vec![
        ColumnDef::new("ssn", DataType::Int),
        ColumnDef::with_trust("zip", DataType::Int, TrustSet::of([1])),
    ]);
    let bank_schema = Schema::new(vec![
        ColumnDef::with_trust("ssn", DataType::Int, ssn_trust),
        ColumnDef::new("score", DataType::Int),
    ]);
    let mut q = QueryBuilder::new();
    let demographics = q.input("demographics", demo_schema, regulator.clone());
    let s1 = q.input("scores1", bank_schema.clone(), bank_a);
    let s2 = q.input("scores2", bank_schema, bank_b);
    let scores = q.concat(&[s1, s2]);
    let joined = q.join(demographics, scores, &["ssn"], &["ssn"]);
    let by_zip = q.count(joined, "count", &["zip"]);
    let total_sc = q.aggregate(joined, "total", AggFunc::Sum, &["zip"], "score");
    let avg = q.join(total_sc, by_zip, &["zip"], &["zip"]);
    let avg_scores = q.divide(
        avg,
        "avg_score",
        Operand::col("total"),
        Operand::col("count"),
    );
    q.collect(avg_scores, &[regulator]);
    q.build().expect("credit query is well formed")
}

/// Microbenchmark query: a single grouped SUM over a two-party or three-party
/// concatenated relation (Figure 1a / Figure 5b).
///
/// `stp_on_key` adds a trust annotation naming party 1 on the group-by column
/// so that Conclave can use the hybrid aggregation (Figure 5b).
pub fn single_aggregation(parties: usize, stp_on_key: bool) -> Query {
    build_micro(parties, stp_on_key, MicroOp::Aggregate)
}

/// Microbenchmark query: a single equi-join between two parties' relations
/// (Figure 1b / Figure 5a). `stp_on_key` enables the hybrid join; `public_key`
/// makes the key column public, enabling the public join.
pub fn single_join(stp_on_key: bool, public_key: bool) -> Query {
    let pa = Party::new(1, "mpc.a.com");
    let pb = Party::new(2, "mpc.b.com");
    let key_trust = if public_key {
        TrustSet::Public
    } else if stp_on_key {
        TrustSet::of([1])
    } else {
        TrustSet::private()
    };
    let left_schema = Schema::new(vec![
        ColumnDef::with_trust("key", DataType::Int, key_trust.clone()),
        ColumnDef::new("value", DataType::Int),
    ]);
    let right_schema = Schema::new(vec![
        ColumnDef::with_trust("key", DataType::Int, key_trust),
        ColumnDef::new("weight", DataType::Int),
    ]);
    let mut q = QueryBuilder::new();
    let l = q.input("left", left_schema, pa.clone());
    let r = q.input("right", right_schema, pb);
    let j = q.join(l, r, &["key"], &["key"]);
    q.collect(j, &[pa]);
    q.build().expect("join micro query is well formed")
}

/// Microbenchmark query: a single projection (Figure 1c).
pub fn single_projection(parties: usize) -> Query {
    build_micro(parties, false, MicroOp::Project)
}

enum MicroOp {
    Aggregate,
    Project,
}

fn build_micro(parties: usize, stp_on_key: bool, op: MicroOp) -> Query {
    let parties = parties.clamp(2, 3);
    let key_trust = if stp_on_key {
        TrustSet::of([1])
    } else {
        TrustSet::private()
    };
    let schema = Schema::new(vec![
        ColumnDef::with_trust("key", DataType::Int, key_trust),
        ColumnDef::new("value", DataType::Int),
    ]);
    let mut q = QueryBuilder::new();
    let mut handles = Vec::new();
    for i in 0..parties {
        let party = Party::new(i as u32 + 1, format!("mpc.p{}.org", i + 1));
        handles.push(q.input(&format!("input{}", i + 1), schema.clone(), party));
    }
    let cat = q.concat(&handles);
    let result = match op {
        MicroOp::Aggregate => q.aggregate(cat, "total", AggFunc::Sum, &["key"], "value"),
        MicroOp::Project => q.project(cat, &["value"]),
    };
    q.collect(result, &[Party::new(1, "mpc.p1.org")]);
    q.build().expect("micro query is well formed")
}

/// The aspirin-count query of §7.4, expressed for Conclave: patient IDs are
/// public (enabling the public join and slicing-equivalent behaviour),
/// diagnosis and medication codes are private.
pub fn aspirin_count() -> Query {
    let hospital_a = Party::new(1, "hospital-a.org");
    let hospital_b = Party::new(2, "hospital-b.org");
    let diag_schema = Schema::new(vec![
        ColumnDef::public("patientID", DataType::Int),
        ColumnDef::new("diagnosis", DataType::Int),
    ]);
    let med_schema = Schema::new(vec![
        ColumnDef::public("patientID", DataType::Int),
        ColumnDef::new("medication", DataType::Int),
    ]);
    let mut q = QueryBuilder::new();
    let d1 = q.input("diagnoses1", diag_schema.clone(), hospital_a.clone());
    let d2 = q.input("diagnoses2", diag_schema, hospital_b.clone());
    let m1 = q.input("medications1", med_schema.clone(), hospital_a.clone());
    let m2 = q.input("medications2", med_schema, hospital_b);
    let diag = q.concat(&[d1, d2]);
    let meds = q.concat(&[m1, m2]);
    // As in the paper, the join runs on the public patient IDs first (which
    // lets Conclave use its public join); the filters on the private
    // diagnosis and medication columns follow.
    let joined = q.join(diag, meds, &["patientID"], &["patientID"]);
    let matching = q.filter(
        joined,
        Expr::col("diagnosis")
            .eq(Expr::lit(conclave_data::health::HEART_DISEASE))
            .and(Expr::col("medication").eq(Expr::lit(conclave_data::health::ASPIRIN))),
    );
    let count = q.distinct_count(matching, "patientID", "num_patients");
    q.collect(count, &[hospital_a]);
    q.build().expect("aspirin query is well formed")
}

/// The comorbidity query of §7.4 for Conclave: COUNT grouped by the private
/// diagnosis column, order by the count, keep the top 10.
pub fn comorbidity() -> Query {
    let hospital_a = Party::new(1, "hospital-a.org");
    let hospital_b = Party::new(2, "hospital-b.org");
    let diag_schema = Schema::new(vec![
        ColumnDef::public("patientID", DataType::Int),
        ColumnDef::new("diagnosis", DataType::Int),
    ]);
    let mut q = QueryBuilder::new();
    let d1 = q.input("diagnoses1", diag_schema.clone(), hospital_a.clone());
    let d2 = q.input("diagnoses2", diag_schema, hospital_b);
    let diag = q.concat(&[d1, d2]);
    let counts = q.count(diag, "cnt", &["diagnosis"]);
    let sorted = q.sort_by(counts, "cnt", false);
    let top = q.limit(sorted, 10);
    q.collect(top, &[hospital_a]);
    q.build().expect("comorbidity query is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use conclave_core::{compile, ConclaveConfig};

    #[test]
    fn all_benchmark_queries_compile_under_every_configuration() {
        let queries = vec![
            market_concentration(),
            credit_card_regulation(true),
            credit_card_regulation(false),
            single_aggregation(3, true),
            single_aggregation(3, false),
            single_join(true, false),
            single_join(false, true),
            single_join(false, false),
            single_projection(3),
            aspirin_count(),
            comorbidity(),
        ];
        for q in &queries {
            for config in [
                ConclaveConfig::standard(),
                ConclaveConfig::mpc_only(),
                ConclaveConfig::without_hybrid(),
            ] {
                let plan = compile(q, &config).expect("query should compile");
                assert!(plan.dag.validate().is_ok());
            }
        }
    }

    #[test]
    fn trust_annotations_control_hybrid_operator_use() {
        let with = compile(&credit_card_regulation(true), &ConclaveConfig::standard()).unwrap();
        let without = compile(&credit_card_regulation(false), &ConclaveConfig::standard()).unwrap();
        assert!(with.hybrid_node_count() >= 2);
        assert!(without.hybrid_node_count() < with.hybrid_node_count());
    }

    #[test]
    fn public_patient_ids_enable_public_join_for_aspirin_count() {
        let plan = compile(&aspirin_count(), &ConclaveConfig::standard()).unwrap();
        assert!(plan
            .dag
            .iter()
            .any(|n| matches!(n.op, conclave_ir::ops::Operator::PublicJoin { .. })));
    }

    #[test]
    fn market_query_pushes_aggregation_down() {
        let plan = compile(&market_concentration(), &ConclaveConfig::standard()).unwrap();
        assert!(plan
            .transformations
            .iter()
            .any(|t| t.contains("secondary aggregation")));
    }
}
