//! Offline/online split bench for the standalone dealer and SPDZ MACs.
//!
//! Measures the three costs the offline/online architecture introduces and
//! prints them as JSON (reference numbers are committed in
//! `BENCH_dealer.json`):
//!
//! 1. **Offline dealing** — wall-clock for `write_party_files` with the
//!    default [`MaterialSpec`] and the size of one party's material file;
//! 2. **Online MAC overhead** — the same input/multiply/compare/open
//!    workload on a 3-party channel mesh, once with SPDZ-MACed shares and
//!    the deferred reveal-boundary integrity check (`PartySession::new`)
//!    and once on the unauthenticated pre-MAC baseline
//!    (`PartySession::unauthenticated`). The build **fails** if the MACed
//!    run exceeds 2x the unauthenticated wall-clock — authentication must
//!    stay an overhead, not a regime change;
//! 3. **File-mode end-to-end** — a full SQL query through `Session` whose
//!    party workers load the pregenerated files (`DealerMode::File`),
//!    reporting the measured rounds, wire bytes and MAC-check count.
//!
//! Usage: `dealer_phases [pair counts...]` (default: 500 and 2000 pairs).

use conclave_core::config::ConclaveConfig;
use conclave_core::session::Session;
use conclave_engine::Relation;
use conclave_mpc::dealer::{write_party_files, MaterialSpec};
use conclave_mpc::runtime::{PartyResult, PartySession};
use conclave_mpc::AuthShare;
use conclave_net::ChannelTransport;
use std::time::Instant;

/// The online workload: both columns shared, multiplied and compared, all
/// results opened, and the deferred MAC check run at the reveal boundary —
/// the same shape the party runtime executes per query.
fn online_program(sess: &mut PartySession, pairs: usize) -> PartyResult<Vec<i64>> {
    let xs: Vec<i64> = (0..pairs as i64).map(|i| i * 31 - 999).collect();
    let ys: Vec<i64> = (0..pairs as i64).map(|i| 7_777 - i * 13).collect();
    let mut proto = sess.step(0);
    let own0 = proto.party() == 0;
    let own1 = proto.party() == 1;
    let sx = proto.input_column(0, own0.then_some(xs.as_slice()), pairs)?;
    let sy = proto.input_column(1, own1.then_some(ys.as_slice()), pairs)?;
    let operands: Vec<(AuthShare, AuthShare)> =
        sx.iter().copied().zip(sy.iter().copied()).collect();
    let mut vals = proto.mul_batch(&operands)?;
    vals.extend(proto.lt_batch(&operands)?);
    let out = proto.open_column(&vals)?;
    proto.session().check_integrity()?;
    Ok(out)
}

/// One timed run of [`online_program`] on a fresh 3-party channel mesh.
/// Returns the wall-clock in seconds and party 0's opened column.
fn run_online(authenticated: bool, pairs: usize) -> (f64, Vec<i64>) {
    let mesh = ChannelTransport::mesh(3);
    let start = Instant::now();
    let mut outs: Vec<Vec<i64>> = std::thread::scope(|s| {
        let handles: Vec<_> = mesh
            .into_iter()
            .map(|t| {
                s.spawn(move || {
                    let mut sess = if authenticated {
                        PartySession::new(&t, 2024)
                    } else {
                        PartySession::unauthenticated(&t, 2024)
                    };
                    online_program(&mut sess, pairs).expect("online workload runs")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("party thread panicked"))
            .collect()
    });
    let elapsed = start.elapsed().as_secs_f64();
    (elapsed, outs.swap_remove(0))
}

/// Best-of-three timing (after one warmup) to keep the 2x guard away from
/// scheduler noise.
fn best_online(authenticated: bool, pairs: usize) -> (f64, Vec<i64>) {
    let (_, out) = run_online(authenticated, pairs);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let (t, _) = run_online(authenticated, pairs);
        best = best.min(t);
    }
    (best, out)
}

fn main() {
    let sizes: Vec<usize> = {
        let rest: Vec<usize> = std::env::args()
            .skip(1)
            .filter_map(|a| a.parse().ok())
            .collect();
        if rest.is_empty() {
            vec![500, 2000]
        } else {
            rest
        }
    };

    // Offline phase: deal the default stock for 3 parties into a temp dir.
    let dir = std::env::temp_dir().join(format!("conclave-dealer-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create dealer dir");
    let spec = MaterialSpec::default();
    let start = Instant::now();
    let files = write_party_files(&dir, 42, 3, spec).expect("dealing succeeds");
    let deal_ms = start.elapsed().as_secs_f64() * 1e3;
    let file_bytes = files
        .first()
        .and_then(|f| std::fs::metadata(f).ok())
        .map(|m| m.len())
        .unwrap_or(0);

    println!("{{");
    println!("  \"bench\": \"dealer_phases\",");
    println!("  \"parties\": 3,");
    println!(
        "  \"offline\": {{ \"deal_ms\": {deal_ms:.1}, \"file_bytes_per_party\": {file_bytes} }},"
    );

    // Online phase: MACed vs unauthenticated wall-clock on the same workload.
    println!("  \"online\": [");
    let mut worst_ratio = 0f64;
    for (i, &pairs) in sizes.iter().enumerate() {
        let (plain_s, plain_out) = best_online(false, pairs);
        let (auth_s, auth_out) = best_online(true, pairs);
        assert_eq!(
            auth_out, plain_out,
            "authenticated and unauthenticated runs must open identical values"
        );
        let ratio = auth_s / plain_s;
        worst_ratio = worst_ratio.max(ratio);
        let comma = if i + 1 == sizes.len() { "" } else { "," };
        println!(
            "    {{ \"pairs\": {pairs}, \"unauthenticated_ms\": {:.1}, \
             \"authenticated_ms\": {:.1}, \"mac_overhead\": {ratio:.2} }}{comma}",
            plain_s * 1e3,
            auth_s * 1e3,
        );
    }
    println!("  ],");

    // End-to-end: a SQL query whose party workers load the dealt files.
    let config = ConclaveConfig::standard()
        .with_sequential_local()
        .with_channel_runtime()
        .with_dealer_files(&dir);
    let start = Instant::now();
    let report = Session::new(config)
        .bind(
            "ta",
            Relation::from_ints(&["key", "val"], &[vec![1, 2], vec![2, 7], vec![1, 4]]),
        )
        .bind("tb", Relation::from_ints(&["key", "val"], &[vec![1, 3]]))
        .run_sql(
            "CREATE TABLE ta (key INT, val INT) WITH OWNER p1;
             CREATE TABLE tb (key INT, val INT) WITH OWNER p2;
             SELECT key, SUM(val) AS total FROM (ta UNION ALL tb)
             GROUP BY key
             REVEAL TO p1;",
        )
        .expect("file-mode query runs");
    let e2e_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(report.net_measured, "distributed runtime must measure");
    println!(
        "  \"file_mode_query\": {{ \"rounds\": {}, \"wire_bytes\": {}, \
         \"mac_checks\": {}, \"wall_ms\": {e2e_ms:.1} }}",
        report.net.rounds,
        report.net.total_bytes(),
        report.mpc_stats.counts.mac_checks,
    );
    println!("}}");

    let _ = std::fs::remove_dir_all(&dir);
    if worst_ratio >= 2.0 {
        eprintln!("FAIL: MACed online wall-clock is {worst_ratio:.2}x the unauthenticated baseline (budget: < 2x)");
        std::process::exit(1);
    }
}
