//! Regenerates every figure of the paper's evaluation as a text table.
//!
//! ```text
//! cargo run -p bench --release --bin reproduce            # all figures
//! cargo run -p bench --release --bin reproduce -- fig5a   # one figure
//! cargo run -p bench --release --bin reproduce -- ablations
//! ```
//!
//! The output is the same series the paper plots (system, input size,
//! runtime); EXPERIMENTS.md records a captured copy next to the paper's
//! reported numbers.

use bench::figures::{self, MicroOp};
use bench::render_table;

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let mut status = 0;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selected: Vec<&str> = if args.is_empty() {
        vec![
            "fig1a",
            "fig1b",
            "fig1c",
            "fig4",
            "fig5a",
            "fig5b",
            "fig6",
            "fig7a",
            "fig7b",
            "ablations",
        ]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };

    for name in selected {
        match name {
            "fig1a" => print_table(
                "Figure 1a — single SUM aggregation (Spark vs Sharemind vs Obliv-C)",
                &figures::fig1(MicroOp::Aggregate),
            ),
            "fig1b" => print_table(
                "Figure 1b — single JOIN (Spark vs Sharemind vs Obliv-C)",
                &figures::fig1(MicroOp::Join),
            ),
            "fig1c" => print_table(
                "Figure 1c — single PROJECT (Spark vs Sharemind vs Obliv-C)",
                &figures::fig1(MicroOp::Project),
            ),
            "fig4" => print_table(
                "Figure 4 — market concentration query (HHI) end to end",
                &figures::fig4(),
            ),
            "fig5a" => print_table(
                "Figure 5a — hybrid join vs MPC join vs public join",
                &figures::fig5a(),
            ),
            "fig5b" => print_table(
                "Figure 5b — hybrid aggregation vs MPC aggregation",
                &figures::fig5b(),
            ),
            "fig6" => print_table("Figure 6 — credit-card regulation query", &figures::fig6()),
            "fig7a" => print_table(
                "Figure 7a — aspirin count: Conclave vs SMCQL",
                &figures::fig7a(),
            ),
            "fig7b" => print_table(
                "Figure 7b — comorbidity: Conclave vs SMCQL",
                &figures::fig7b(),
            ),
            "ablations" => print_table(
                "Ablations — market query (1 M records) under each optimization toggle",
                &figures::ablations(1_000_000),
            ),
            other => {
                // Keep running the remaining requested figures; report the
                // failure via the exit code at the end.
                eprintln!("unknown experiment `{other}` (expected fig1a..fig7b, ablations)");
                status = 2;
            }
        }
    }
    status
}

fn print_table(title: &str, points: &[bench::DataPoint]) {
    println!("{}", render_table(title, points));
}
