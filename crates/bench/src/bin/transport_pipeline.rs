//! Multi-step pipeline bench for the plan-scoped party runtime.
//!
//! Runs a canonical 3-step MPC pipeline (filter → multiply → scalar
//! aggregate) over the distributed party runtime and prints, as JSON, the
//! measured synchronous rounds, wire bytes, mesh builds and wall-clock per
//! input size. CI runs it in channel mode as a smoke test and fails the
//! build if more than one transport mesh was constructed for the query
//! (`mesh_builds > 1` would mean the runtime regressed to per-step meshes).
//!
//! Usage: `transport_pipeline [channel|tcp] [row counts...]`
//! (defaults: channel mode at 10_000 and 100_000 rows).

use conclave_core::config::{ConclaveConfig, PartyRuntime};
use conclave_core::plan::compile;
use conclave_core::session::Session;
use conclave_engine::Relation;
use conclave_ir::builder::{Query, QueryBuilder};
use conclave_ir::expr::Expr;
use conclave_ir::ops::{AggFunc, Operand};
use conclave_ir::party::Party;
use conclave_ir::schema::Schema;
use std::time::Instant;

/// The canonical 3-step pipeline: every operator between the inputs and the
/// collect executes under MPC (the config disables push-down), so the MPC
/// frontier is concat → filter → multiply → aggregate — a genuine multi-step
/// sequence of secret-sharing protocol steps with data dependencies.
fn pipeline_query() -> (Query, Party) {
    let org_a = Party::new(1, "a");
    let org_b = Party::new(2, "b");
    let schema = Schema::ints(&["region", "amount"]);
    let mut q = QueryBuilder::new();
    let a = q.input("sales_a", schema.clone(), org_a.clone());
    let b = q.input("sales_b", schema, org_b);
    let all = q.concat(&[a, b]);
    let positive = q.filter(all, Expr::col("amount").gt(Expr::lit(0)));
    let squared = q.multiply(
        positive,
        "weighted",
        vec![Operand::col("amount"), Operand::lit(3)],
    );
    let total = q.aggregate_scalar(squared, "total", AggFunc::Sum, "weighted");
    q.collect(total, std::slice::from_ref(&org_a));
    (q.build().expect("pipeline query builds"), org_a)
}

fn rows(n: usize, salt: i64) -> Relation {
    Relation::from_ints(
        &["region", "amount"],
        &(0..n as i64)
            .map(|i| vec![i % 7, (i * 31 + salt) % 1000 - 100])
            .collect::<Vec<_>>(),
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mode = args.next().unwrap_or_else(|| "channel".into());
    let runtime = match mode.as_str() {
        "channel" => PartyRuntime::Channel,
        "tcp" => PartyRuntime::Tcp,
        other => {
            eprintln!("unknown mode `{other}`; use channel or tcp");
            std::process::exit(2);
        }
    };
    let sizes: Vec<usize> = {
        let rest: Vec<usize> = args.filter_map(|a| a.parse().ok()).collect();
        if rest.is_empty() {
            vec![10_000, 100_000]
        } else {
            rest
        }
    };

    let (query, recipient) = pipeline_query();
    let config = ConclaveConfig::mpc_only()
        .with_sequential_local()
        .with_party_runtime(runtime);
    let plan = compile(&query, &config).expect("pipeline compiles");
    let mpc_steps = plan
        .dag
        .iter()
        .filter(|n| n.site.is_mpc() && !n.op.is_output())
        .count();

    println!("{{");
    println!("  \"bench\": \"transport_pipeline\",");
    println!("  \"mode\": \"{mode}\",");
    println!("  \"mpc_steps\": {mpc_steps},");
    println!("  \"sizes\": [");
    for (i, &n) in sizes.iter().enumerate() {
        let session = Session::new(config.clone())
            .bind("sales_a", rows(n, 1))
            .bind("sales_b", rows(n, 2));
        let start = Instant::now();
        let report = session.run(&query).expect("pipeline runs");
        let elapsed = start.elapsed();
        assert!(report.net_measured, "distributed runtime must measure");
        let out = report.output_for(recipient.id).expect("output delivered");
        assert_eq!(out.num_rows(), 1, "scalar aggregate yields one row");
        let comma = if i + 1 == sizes.len() { "" } else { "," };
        println!(
            "    {{ \"rows_per_party\": {n}, \"rounds\": {}, \"mesh_builds\": {}, \
             \"wire_bytes\": {}, \"messages\": {}, \"wall_ms\": {} }}{comma}",
            report.net.rounds,
            report.net.mesh_builds,
            report.net.total_bytes(),
            report.net.total_messages(),
            elapsed.as_millis(),
        );
        if report.net.mesh_builds > 1 {
            eprintln!(
                "FAIL: {} transport meshes built for one query (want 1)",
                report.net.mesh_builds
            );
            std::process::exit(1);
        }
    }
    println!("  ]");
    println!("}}");
}
