//! Load generator and soak check for the multi-tenant `conclave-server`.
//!
//! Drives ≥1000 small MPC queries through one [`ConclaveServer`] from many
//! concurrent clients spread across several tenants, then prints latency
//! percentiles and the serving-layer counters as JSON (reference numbers
//! are committed in `BENCH_server.json`).
//!
//! Every tenant is seeded with *tenant-specific* data, so each query has a
//! tenant-specific expected answer; any cross-tenant leak (a cached plan or
//! a mesh serving the wrong tenant's bindings) is an immediate mismatch and
//! the binary **exits 1**. The same applies if any query is rejected or
//! errors under a configuration sized to never shed load.
//!
//! Usage: `server_load [queries] [--check]`
//!
//! `--check` re-reads the committed `BENCH_server.json` and exits 1 if the
//! measured p99 regressed to more than 2x the committed reference — the CI
//! `server` job runs exactly this.

use conclave_core::config::ConclaveConfig;
use conclave_engine::relation::Relation;
use conclave_mpc::dealer::{MaterialPool, MaterialSpec};
use conclave_server::{AdmissionLimits, ConclaveServer, ServerConfig, ServerHandle};
use conclave_sql::Catalog;
use std::time::Instant;

const TENANTS: usize = 4;
const CLIENTS: usize = 16;

/// One tenant's two-owner aggregation query: tiny on purpose — the load
/// profile of a serving deployment is many small queries, not one big one.
const SUM_SQL: &str = "CREATE TABLE ta (k INT, v INT) WITH OWNER p1;
     CREATE TABLE tb (k INT, v INT) WITH OWNER p2;
     SELECT k, SUM(v) AS total FROM (ta UNION ALL tb)
     GROUP BY k
     REVEAL TO p1;";

fn tenant_name(t: usize) -> String {
    format!("tenant-{t}")
}

/// Per-tenant inputs chosen so no two tenants share an answer: the totals
/// are 113·t + 3, pairwise distinct.
fn tenant_inputs(t: usize) -> (Relation, Relation) {
    let t = t as i64;
    (
        Relation::from_ints(&["k", "v"], &[vec![1, 10 * t + 1], vec![1, 3 * t]]),
        Relation::from_ints(&["k", "v"], &[vec![1, 100 * t + 2]]),
    )
}

fn expected_total(t: usize) -> i64 {
    113 * t as i64 + 3
}

/// Runs one query and returns (latency, ok). A result is `ok` only if it is
/// exactly this tenant's expected single row — anything else is a
/// cross-tenant mix-up or a corruption.
fn one_query(server: &ServerHandle, t: usize) -> (f64, bool) {
    let start = Instant::now();
    let outcome = server.query(&tenant_name(t), SUM_SQL);
    let secs = start.elapsed().as_secs_f64();
    let ok = match outcome {
        Ok(outcome) => {
            let expected = Relation::from_ints(&["k", "total"], &[vec![1, expected_total(t)]]);
            outcome
                .report
                .output_for(1)
                .is_some_and(|out| out.same_rows_unordered(&expected))
        }
        Err(e) => {
            eprintln!("FAIL: {} query errored: {e}", tenant_name(t));
            false
        }
    };
    (secs, ok)
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let ix = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[ix]
}

/// Pulls the committed `"p99_ms": <number>` out of BENCH_server.json without
/// a JSON dependency.
fn committed_p99(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let at = text.find("\"p99_ms\":")?;
    let rest = text[at + "\"p99_ms\":".len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let mut queries: usize = 1024;
    let mut check = false;
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check = true;
        } else {
            queries = arg.parse().expect("usage: server_load [queries] [--check]");
        }
    }
    let per_client = queries.div_ceil(CLIENTS);
    let queries = per_client * CLIENTS;

    // One pool shared by every tenant: 3 parties (the MPC backend's mesh
    // size), kept a few bundles deep by the background refiller.
    let spec = MaterialSpec {
        triples: 256,
        bit_triples: 512,
        shared_bits: 256,
        dabits: 64,
        input_masks: 128,
    };
    let pool = MaterialPool::start(42, 3, spec, 8);
    let config = ServerConfig::new(
        ConclaveConfig::standard()
            .with_sequential_local()
            .with_channel_runtime(),
    )
    .with_pool(pool)
    // Sized to queue, never shed: at most CLIENTS/TENANTS clients target one
    // tenant, all of which fit in the wait queue.
    .with_limits(AdmissionLimits {
        max_in_flight: 2,
        queue_depth: CLIENTS,
    });
    let server = ConclaveServer::start(config);

    for t in 0..TENANTS {
        let name = tenant_name(t);
        server
            .register_tenant(&name, Catalog::new())
            .expect("fresh tenant");
        let (ta, tb) = tenant_inputs(t);
        server.bind(&name, "ta", ta).expect("bind ta");
        server.bind(&name, "tb", tb).expect("bind tb");
    }

    let start = Instant::now();
    let (latencies, failures): (Vec<Vec<f64>>, Vec<usize>) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let server = server.clone();
                s.spawn(move || {
                    let tenant = c % TENANTS;
                    let mut lats = Vec::with_capacity(per_client);
                    let mut failed = 0usize;
                    for _ in 0..per_client {
                        let (secs, ok) = one_query(&server, tenant);
                        lats.push(secs * 1e3);
                        if !ok {
                            failed += 1;
                        }
                    }
                    (lats, failed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .unzip()
    });
    let wall_s = start.elapsed().as_secs_f64();

    let mut all_ms: Vec<f64> = latencies.into_iter().flatten().collect();
    all_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let failed: usize = failures.iter().sum();
    let p50 = percentile(&all_ms, 0.50);
    let p99 = percentile(&all_ms, 0.99);

    let stats = server.stats();
    let (mut hits, mut misses, mut rejected) = (0u64, 0u64, 0u64);
    for t in stats.tenants.values() {
        hits += t.cache.hits;
        misses += t.cache.misses;
        rejected += t.rejected;
    }
    let pool_stats = stats.pool.expect("the load config always has a pool");

    println!("{{");
    println!("  \"bench\": \"server_load\",");
    println!("  \"tenants\": {TENANTS}, \"clients\": {CLIENTS}, \"queries\": {queries},");
    println!(
        "  \"wall_s\": {wall_s:.2}, \"qps\": {:.0}, \"p50_ms\": {p50:.1}, \"p99_ms\": {p99:.1},",
        queries as f64 / wall_s
    );
    println!("  \"cache\": {{ \"hits\": {hits}, \"misses\": {misses} }},");
    println!(
        "  \"pool\": {{ \"dealt\": {}, \"taken\": {}, \"starved\": {} }},",
        pool_stats.dealt, pool_stats.taken, pool_stats.starved
    );
    println!("  \"failed\": {failed}, \"rejected\": {rejected}");
    println!("}}");

    if failed > 0 {
        eprintln!(
            "FAIL: {failed} queries returned a wrong or missing result (cross-tenant mix-up?)"
        );
        std::process::exit(1);
    }
    if rejected > 0 {
        eprintln!("FAIL: {rejected} queries were shed under a no-shed configuration");
        std::process::exit(1);
    }
    // Every tenant compiles its plan exactly once; everything else must hit.
    if misses != TENANTS as u64 || hits != (queries - TENANTS) as u64 {
        eprintln!("FAIL: plan cache did not amortize (hits={hits} misses={misses})");
        std::process::exit(1);
    }
    if check {
        match committed_p99("BENCH_server.json") {
            Some(reference) if p99 > 2.0 * reference => {
                eprintln!("FAIL: p99 {p99:.1}ms regressed past 2x the committed {reference:.1}ms");
                std::process::exit(1);
            }
            Some(reference) => {
                eprintln!("check: p99 {p99:.1}ms within 2x of committed {reference:.1}ms");
            }
            None => {
                eprintln!("FAIL: --check needs a committed BENCH_server.json with a p99_ms field");
                std::process::exit(1);
            }
        }
    }
}
