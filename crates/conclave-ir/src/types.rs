//! Scalar data types and values used in relations.
//!
//! Conclave queries operate almost exclusively on integers (the paper's
//! prototype supports integer columns); we additionally support 64-bit
//! floats, strings and booleans so that derived quantities such as market
//! shares or average scores can be represented exactly in cleartext steps.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The static type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer. The MPC backends operate on this type only.
    Int,
    /// 64-bit IEEE float, only valid in cleartext steps.
    Float,
    /// UTF-8 string, only valid in cleartext steps.
    Str,
    /// Boolean, only valid in cleartext steps.
    Bool,
}

impl DataType {
    /// Returns `true` if the type can be secret-shared and processed under
    /// MPC by the simulated backends.
    pub fn mpc_compatible(self) -> bool {
        matches!(self, DataType::Int | DataType::Bool)
    }

    /// Returns `true` for numeric types.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STR",
            DataType::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

/// A runtime scalar value.
///
/// `Value` implements a *total* order and hashing (floats are compared via
/// their IEEE bit patterns after normalizing NaN), so it can be used directly
/// as a group-by or join key.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Absent value (e.g. result of a failed lookup).
    Null,
}

impl Value {
    /// The dynamic type of this value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Null => None,
        }
    }

    /// Interprets the value as an `i64`, coercing floats and booleans.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Float(v) => Some(*v as i64),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// Interprets the value as an `f64`, coercing integers and booleans.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Interprets the value as a boolean (non-zero numbers are true).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Int(v) => Some(*v != 0),
            Value::Float(v) => Some(*v != 0.0),
            _ => None,
        }
    }

    /// Returns the string slice if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns `true` if this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Rough in-memory/on-wire size of the value in bytes, used by cost
    /// models and the simulated network.
    pub fn byte_size(&self) -> usize {
        match self {
            Value::Int(_) | Value::Float(_) => 8,
            Value::Bool(_) => 1,
            Value::Str(s) => s.len(),
            Value::Null => 0,
        }
    }

    /// Arithmetic addition with numeric coercion.
    pub fn add(&self, other: &Value) -> Value {
        numeric_binop(self, other, |a, b| a.wrapping_add(b), |a, b| a + b)
    }

    /// Arithmetic subtraction with numeric coercion.
    pub fn sub(&self, other: &Value) -> Value {
        numeric_binop(self, other, |a, b| a.wrapping_sub(b), |a, b| a - b)
    }

    /// Arithmetic multiplication with numeric coercion.
    pub fn mul(&self, other: &Value) -> Value {
        numeric_binop(self, other, |a, b| a.wrapping_mul(b), |a, b| a * b)
    }

    /// Division. Integer / integer produces a float to match the paper's
    /// `divide` operator (used for averages and market shares).
    pub fn div(&self, other: &Value) -> Value {
        match (self.as_float(), other.as_float()) {
            (Some(_), Some(0.0)) => Value::Null,
            (Some(a), Some(b)) => Value::Float(a / b),
            _ => Value::Null,
        }
    }

    /// Ordering key used by sorts and comparisons: a stable total order.
    fn order_class(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

fn numeric_binop(
    a: &Value,
    b: &Value,
    int_op: impl Fn(i64, i64) -> i64,
    float_op: impl Fn(f64, f64) -> f64,
) -> Value {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Value::Int(int_op(*x, *y)),
        _ => match (a.as_float(), b.as_float()) {
            (Some(x), Some(y)) => Value::Float(float_op(x, y)),
            _ => Value::Null,
        },
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => total_f64_cmp(*a, *b),
            (Value::Int(a), Value::Float(b)) => total_f64_cmp(*a as f64, *b),
            (Value::Float(a), Value::Int(b)) => total_f64_cmp(*a, *b as f64),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Null, Value::Null) => Ordering::Equal,
            _ => self.order_class().cmp(&other.order_class()),
        }
    }
}

fn total_f64_cmp(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(v) => {
                state.write_u8(2);
                // Hash integers and integral floats identically so that
                // `Int(2)` and `Float(2.0)` (which compare equal) collide.
                state.write_i64(*v);
            }
            Value::Float(v) => {
                state.write_u8(2);
                if v.fract() == 0.0 && *v >= i64::MIN as f64 && *v <= i64::MAX as f64 {
                    state.write_i64(*v as i64);
                } else {
                    state.write_u64(v.to_bits());
                }
            }
            Value::Str(s) => {
                state.write_u8(3);
                s.hash(state);
            }
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            Value::Null => state.write_u8(0),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn data_type_properties() {
        assert!(DataType::Int.mpc_compatible());
        assert!(DataType::Bool.mpc_compatible());
        assert!(!DataType::Str.mpc_compatible());
        assert!(DataType::Float.is_numeric());
        assert!(!DataType::Bool.is_numeric());
        assert_eq!(DataType::Int.to_string(), "INT");
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3i64).as_int(), Some(3));
        assert_eq!(Value::from(3.5).as_int(), Some(3));
        assert_eq!(Value::from(true).as_int(), Some(1));
        assert_eq!(Value::from("x").as_int(), None);
        assert_eq!(Value::from(3i32).as_float(), Some(3.0));
        assert_eq!(Value::from("abc").as_str(), Some("abc"));
        assert_eq!(Value::from(String::from("s")).as_str(), Some("s"));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Int(0).as_bool(), Some(false));
        assert_eq!(Value::Float(2.0).as_bool(), Some(true));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)), Value::Int(5));
        assert_eq!(Value::Int(2).sub(&Value::Int(3)), Value::Int(-1));
        assert_eq!(Value::Int(2).mul(&Value::Int(3)), Value::Int(6));
        assert_eq!(Value::Int(1).div(&Value::Int(2)), Value::Float(0.5));
        assert_eq!(Value::Int(1).div(&Value::Int(0)), Value::Null);
        assert_eq!(Value::Float(1.5).add(&Value::Int(1)), Value::Float(2.5));
        assert_eq!(Value::Str("a".into()).add(&Value::Int(1)), Value::Null);
    }

    #[test]
    fn ordering_is_total() {
        let mut vals = [
            Value::Str("b".into()),
            Value::Int(10),
            Value::Null,
            Value::Float(2.5),
            Value::Bool(true),
            Value::Int(-5),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Int(-5));
        assert_eq!(vals[3], Value::Float(2.5));
        assert_eq!(vals[4], Value::Int(10));
        assert_eq!(vals[5], Value::Str("b".into()));
    }

    #[test]
    fn int_float_equality_and_hash_consistency() {
        let a = Value::Int(7);
        let b = Value::Float(7.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(Value::Int(1).byte_size(), 8);
        assert_eq!(Value::Bool(true).byte_size(), 1);
        assert_eq!(Value::Str("abcd".into()).byte_size(), 4);
        assert_eq!(Value::Null.byte_size(), 0);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }
}
