//! Trust annotations on columns (§4.3 of the paper).
//!
//! A *trust set* names the parties authorized to learn the values of a column
//! in the clear. The owning party of an input relation is implicitly trusted
//! with all its columns, output recipients are trusted with output columns,
//! and a *public* column is trusted by every party.

use crate::party::{PartyId, PartySet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The set of parties authorized to see a column in cleartext.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrustSet {
    /// Every party (current and future) may learn the column: it is public.
    Public,
    /// Only the listed parties may learn the column.
    Parties(PartySet),
}

impl Default for TrustSet {
    fn default() -> Self {
        TrustSet::Parties(PartySet::empty())
    }
}

impl TrustSet {
    /// A trust set containing no parties: the column is private to its owner.
    pub fn private() -> Self {
        TrustSet::Parties(PartySet::empty())
    }

    /// A trust set with exactly the given parties.
    pub fn of<I: IntoIterator<Item = PartyId>>(parties: I) -> Self {
        TrustSet::Parties(PartySet::from_ids(parties))
    }

    /// Returns `true` if the column is public.
    pub fn is_public(&self) -> bool {
        matches!(self, TrustSet::Public)
    }

    /// Returns `true` if `party` is authorized to learn this column.
    pub fn trusts(&self, party: PartyId) -> bool {
        match self {
            TrustSet::Public => true,
            TrustSet::Parties(set) => set.contains(party),
        }
    }

    /// Adds a party to the trust set (no-op for public columns).
    pub fn add(&mut self, party: PartyId) {
        if let TrustSet::Parties(set) = self {
            set.insert(party);
        }
    }

    /// Intersection of two trust sets. This is the propagation rule from
    /// §5.1: a derived column may only be revealed to parties trusted with
    /// *all* operand columns it depends on.
    pub fn intersect(&self, other: &TrustSet) -> TrustSet {
        match (self, other) {
            (TrustSet::Public, o) => o.clone(),
            (s, TrustSet::Public) => s.clone(),
            (TrustSet::Parties(a), TrustSet::Parties(b)) => TrustSet::Parties(a.intersection(b)),
        }
    }

    /// Union of two trust sets (used when a party contributes several
    /// annotations for the same logical column, e.g. across `concat` inputs
    /// the result is the *intersection*, but within one schema definition the
    /// analyst may widen trust).
    pub fn union(&self, other: &TrustSet) -> TrustSet {
        match (self, other) {
            (TrustSet::Public, _) | (_, TrustSet::Public) => TrustSet::Public,
            (TrustSet::Parties(a), TrustSet::Parties(b)) => TrustSet::Parties(a.union(b)),
        }
    }

    /// The explicit party set, if the trust set is not public.
    pub fn parties(&self) -> Option<&PartySet> {
        match self {
            TrustSet::Public => None,
            TrustSet::Parties(p) => Some(p),
        }
    }

    /// Returns the set of parties in `universe` trusted with this column.
    pub fn trusted_within(&self, universe: &PartySet) -> PartySet {
        match self {
            TrustSet::Public => universe.clone(),
            TrustSet::Parties(p) => p.intersection(universe),
        }
    }
}

impl fmt::Display for TrustSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrustSet::Public => write!(f, "public"),
            TrustSet::Parties(p) if p.is_empty() => write!(f, "private"),
            TrustSet::Parties(p) => write!(f, "trust{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_private() {
        let t = TrustSet::default();
        assert!(!t.is_public());
        assert!(!t.trusts(1));
        assert_eq!(t.to_string(), "private");
    }

    #[test]
    fn public_trusts_everyone() {
        let t = TrustSet::Public;
        assert!(t.trusts(1));
        assert!(t.trusts(999));
        assert_eq!(t.to_string(), "public");
        assert!(t.parties().is_none());
    }

    #[test]
    fn add_and_trusts() {
        let mut t = TrustSet::private();
        t.add(3);
        assert!(t.trusts(3));
        assert!(!t.trusts(4));
        assert_eq!(t.to_string(), "trust{3}");
        // Adding to public is a no-op.
        let mut p = TrustSet::Public;
        p.add(1);
        assert!(p.is_public());
    }

    #[test]
    fn intersection_rules() {
        let a = TrustSet::of([1, 2]);
        let b = TrustSet::of([2, 3]);
        let i = a.intersect(&b);
        assert!(i.trusts(2));
        assert!(!i.trusts(1));
        assert!(!i.trusts(3));
        // Public is the identity for intersection.
        assert_eq!(TrustSet::Public.intersect(&a), a);
        assert_eq!(a.intersect(&TrustSet::Public), a);
    }

    #[test]
    fn union_rules() {
        let a = TrustSet::of([1]);
        let b = TrustSet::of([2]);
        let u = a.union(&b);
        assert!(u.trusts(1) && u.trusts(2));
        assert!(a.union(&TrustSet::Public).is_public());
    }

    #[test]
    fn trusted_within_universe() {
        let universe = PartySet::from_ids([1, 2, 3]);
        assert_eq!(
            TrustSet::Public.trusted_within(&universe).len(),
            3,
            "public column is trusted by all parties in the universe"
        );
        let t = TrustSet::of([2, 9]);
        let w = t.trusted_within(&universe);
        assert_eq!(w.iter().collect::<Vec<_>>(), vec![2]);
    }
}
