//! Parties participating in a Conclave computation.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Numeric identifier of a party (stable across the whole computation).
pub type PartyId = u32;

/// A participant in the multi-party computation.
///
/// A party stores input relations, runs a local cleartext engine, and hosts
/// one endpoint of the MPC backend. In the paper's deployment a party maps to
/// one organization's private infrastructure (e.g. `mpc.ftc.gov`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Party {
    /// Stable identifier.
    pub id: PartyId,
    /// Hostname or logical name of the party's agent endpoint.
    pub host: String,
}

impl Party {
    /// Creates a new party with the given id and host name.
    pub fn new(id: PartyId, host: impl Into<String>) -> Self {
        Party {
            id,
            host: host.into(),
        }
    }
}

impl fmt::Display for Party {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}({})", self.id, self.host)
    }
}

/// An ordered set of party identifiers.
///
/// Used for relation ownership, output recipients, and MPC participant sets.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartySet {
    ids: BTreeSet<PartyId>,
}

impl PartySet {
    /// The empty set.
    pub fn empty() -> Self {
        PartySet::default()
    }

    /// Set containing a single party.
    pub fn singleton(id: PartyId) -> Self {
        let mut ids = BTreeSet::new();
        ids.insert(id);
        PartySet { ids }
    }

    /// Builds a set from an iterator of ids.
    pub fn from_ids<I: IntoIterator<Item = PartyId>>(iter: I) -> Self {
        PartySet {
            ids: iter.into_iter().collect(),
        }
    }

    /// Inserts a party id.
    pub fn insert(&mut self, id: PartyId) {
        self.ids.insert(id);
    }

    /// Returns `true` if the set contains `id`.
    pub fn contains(&self, id: PartyId) -> bool {
        self.ids.contains(&id)
    }

    /// Number of parties in the set.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Iterates over the party ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = PartyId> + '_ {
        self.ids.iter().copied()
    }

    /// Set union.
    pub fn union(&self, other: &PartySet) -> PartySet {
        PartySet {
            ids: self.ids.union(&other.ids).copied().collect(),
        }
    }

    /// Set intersection.
    pub fn intersection(&self, other: &PartySet) -> PartySet {
        PartySet {
            ids: self.ids.intersection(&other.ids).copied().collect(),
        }
    }

    /// Returns `true` if `self` is a subset of `other`.
    pub fn is_subset(&self, other: &PartySet) -> bool {
        self.ids.is_subset(&other.ids)
    }

    /// Returns the single member if the set is a singleton.
    pub fn sole_member(&self) -> Option<PartyId> {
        if self.ids.len() == 1 {
            self.ids.iter().next().copied()
        } else {
            None
        }
    }

    /// Returns an arbitrary (smallest-id) member, if any.
    pub fn any_member(&self) -> Option<PartyId> {
        self.ids.iter().next().copied()
    }
}

impl FromIterator<PartyId> for PartySet {
    fn from_iter<T: IntoIterator<Item = PartyId>>(iter: T) -> Self {
        PartySet::from_ids(iter)
    }
}

impl fmt::Display for PartySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, id) in self.ids.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{id}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn party_display() {
        let p = Party::new(1, "mpc.ftc.gov");
        assert_eq!(p.to_string(), "P1(mpc.ftc.gov)");
    }

    #[test]
    fn set_basic_ops() {
        let mut s = PartySet::empty();
        assert!(s.is_empty());
        s.insert(2);
        s.insert(1);
        s.insert(2);
        assert_eq!(s.len(), 2);
        assert!(s.contains(1));
        assert!(!s.contains(3));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(s.to_string(), "{1,2}");
    }

    #[test]
    fn set_algebra() {
        let a = PartySet::from_ids([1, 2, 3]);
        let b = PartySet::from_ids([2, 3, 4]);
        assert_eq!(a.union(&b).iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), vec![2, 3]);
        assert!(PartySet::singleton(2).is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn sole_and_any_member() {
        assert_eq!(PartySet::singleton(7).sole_member(), Some(7));
        assert_eq!(PartySet::from_ids([1, 2]).sole_member(), None);
        assert_eq!(PartySet::from_ids([5, 3]).any_member(), Some(3));
        assert_eq!(PartySet::empty().any_member(), None);
    }

    #[test]
    fn from_iterator() {
        let s: PartySet = [3, 1, 1].into_iter().collect();
        assert_eq!(s.len(), 2);
    }
}
