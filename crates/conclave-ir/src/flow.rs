//! Column-level information-flow analysis over the operator DAG.
//!
//! This module computes, for every node and output column, a value of the
//! provenance/visibility lattice the leakage linter (`conclave-core`'s
//! `passes::leakage`) verifies plans against:
//!
//! * **visibility** — a [`TrustSet`]: which parties are authorized to learn
//!   the column's values in cleartext. Derived columns take the
//!   *intersection* of their operands' trust sets (§5.1 of the paper), and
//!   are *widened* by declassification points: `RevealTo`/`Open`/`Collect`
//!   recipients and the executing party of every cleartext placement the
//!   sites/hybrid passes chose.
//! * **provenance** — the set of `(relation, column)` source pairs the
//!   column transitively derives from, used to render derivation chains in
//!   diagnostics.
//!
//! The analysis is a single forward pass in topological order over
//! [`Operator::column_dependencies`]; it re-derives trust from the input
//! schemas rather than trusting any annotation a prior pass may have stored,
//! so it can certify a plan independently of how it was produced.

use crate::dag::{NodeId, OpDag};
use crate::error::{IrError, IrResult};
use crate::ops::{ColumnDeps, ExecSite, Operator};
use crate::party::PartyId;
use crate::schema::Schema;
use crate::trust::TrustSet;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// The lattice value computed for one output column of one DAG node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowValue {
    /// Parties authorized to learn the column in cleartext at this point of
    /// the plan: the intersection of all source-column trust sets, widened
    /// by every declassification the plan performs upstream.
    pub trust: TrustSet,
    /// `(relation, column)` pairs of the input columns this column
    /// transitively derives from (empty for literal-only columns).
    pub sources: BTreeSet<(String, String)>,
}

impl FlowValue {
    /// A public value with no provenance (literal-derived columns).
    fn literal() -> Self {
        FlowValue {
            trust: TrustSet::Public,
            sources: BTreeSet::new(),
        }
    }
}

/// The result of [`compute_flow`]: per node, the flow value of every output
/// column, in schema order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Flow {
    map: HashMap<NodeId, Vec<(String, FlowValue)>>,
}

impl Flow {
    /// Flow values for all output columns of `node`, in schema order.
    pub fn columns(&self, node: NodeId) -> Option<&[(String, FlowValue)]> {
        self.map.get(&node).map(|v| v.as_slice())
    }

    /// Flow value of one output column of `node`.
    pub fn value(&self, node: NodeId, column: &str) -> Option<&FlowValue> {
        self.map
            .get(&node)?
            .iter()
            .find(|(name, _)| name == column)
            .map(|(_, v)| v)
    }

    /// Renders the derivation chain of `column` at `node` as a list of
    /// `"#id op.column"` steps from the originating input down to `node`.
    ///
    /// When several dependencies exist, the walk prefers one whose trust set
    /// excludes `party` — the source actually responsible for a leakage
    /// violation against that party.
    pub fn derivation_chain(
        &self,
        dag: &OpDag,
        node: NodeId,
        column: &str,
        party: PartyId,
    ) -> Vec<String> {
        let mut chain = Vec::new();
        let mut cursor = Some((node, column.to_string()));
        // The DAG is acyclic, but guard against malformed graphs anyway.
        let mut budget = dag.capacity().saturating_add(1);
        while let Some((id, col)) = cursor.take() {
            if budget == 0 {
                break;
            }
            budget -= 1;
            let Ok(n) = dag.node(id) else { break };
            match &n.op {
                Operator::Input { name, .. } => {
                    chain.push(format!("#{id} input {name}.{col}"));
                    break;
                }
                op => chain.push(format!("#{id} {}.{col}", op.name())),
            }
            let Some(deps) = self.deps_of(dag, id) else {
                break;
            };
            let Some((_, dcols)) = deps.iter().find(|(name, _)| *name == col) else {
                break;
            };
            let n = dag.node(id).expect("checked above");
            let offender = dcols
                .iter()
                .filter(|(k, c)| {
                    n.inputs
                        .get(*k)
                        .is_some_and(|&p| self.value(p, c).is_some_and(|v| !v.trust.trusts(party)))
                })
                .chain(dcols.iter())
                .next();
            cursor = offender.and_then(|(k, c)| n.inputs.get(*k).map(|&p| (p, c.clone())));
        }
        chain.reverse();
        chain
    }

    fn deps_of(&self, dag: &OpDag, id: NodeId) -> Option<ColumnDeps> {
        let n = dag.node(id).ok()?;
        let input_schemas: Vec<Schema> = n
            .inputs
            .iter()
            .map(|&i| dag.node(i).map(|p| p.schema.clone()))
            .collect::<IrResult<_>>()
            .ok()?;
        n.op.column_dependencies(&input_schemas, &n.schema).ok()
    }
}

/// Parties a node's operator declassifies its output to, by construction.
fn declassified_to(op: &Operator) -> Vec<PartyId> {
    match op {
        Operator::RevealTo { party, .. } => vec![*party],
        Operator::Open { recipients } | Operator::Collect { recipients } => {
            recipients.iter().collect()
        }
        _ => Vec::new(),
    }
}

/// Computes the flow lattice for every live node of `dag` in one forward
/// topological pass.
///
/// Trust is re-derived from the *input schemas* (so the analysis does not
/// depend on `propagate_trust` having run) and widened at declassification
/// points: reveal/open/collect recipients learn the revealed columns, and
/// the executing party of a cleartext placement (`ExecSite::Local` /
/// `ExecSite::Stp`) learns every column the node materializes.
pub fn compute_flow(dag: &OpDag) -> IrResult<Flow> {
    let mut flow = Flow::default();
    for id in dag.topo_order()? {
        let node = dag.node(id)?;
        let mut columns: Vec<(String, FlowValue)> = Vec::with_capacity(node.schema.len());
        if let Operator::Input { name, .. } = &node.op {
            for col in &node.schema.columns {
                let mut sources = BTreeSet::new();
                sources.insert((name.clone(), col.name.clone()));
                columns.push((
                    col.name.clone(),
                    FlowValue {
                        trust: col.trust.clone(),
                        sources,
                    },
                ));
            }
        } else {
            let input_schemas: Vec<Schema> = node
                .inputs
                .iter()
                .map(|&i| dag.node(i).map(|p| p.schema.clone()))
                .collect::<IrResult<_>>()?;
            let deps = node.op.column_dependencies(&input_schemas, &node.schema)?;
            for col in &node.schema.columns {
                let mut value = FlowValue::literal();
                if let Some((_, dcols)) = deps.iter().find(|(name, _)| *name == col.name) {
                    for (k, dep_col) in dcols {
                        let parent = node.inputs.get(*k).copied().ok_or_else(|| {
                            IrError::MalformedDag(format!(
                                "node {id} dependency references missing input {k}"
                            ))
                        })?;
                        if let Some(v) = flow.value(parent, dep_col) {
                            value.trust = value.trust.intersect(&v.trust);
                            value.sources.extend(v.sources.iter().cloned());
                        }
                    }
                }
                columns.push((col.name.clone(), value));
            }
        }
        // Widen: declassification points and cleartext placements.
        let widened: Vec<PartyId> = declassified_to(&node.op)
            .into_iter()
            .chain(match node.site {
                ExecSite::Local(p) | ExecSite::Stp(p) => Some(p),
                ExecSite::Mpc | ExecSite::Undecided => None,
            })
            .collect();
        if !widened.is_empty() {
            for (_, value) in columns.iter_mut() {
                for &p in &widened {
                    value.trust.add(p);
                }
            }
        }
        flow.map.insert(id, columns);
    }
    Ok(flow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::AggFunc;
    use crate::party::PartySet;
    use crate::schema::{ColumnDef, Schema};
    use crate::types::DataType;

    fn annotated_schema() -> Schema {
        Schema::new(vec![
            ColumnDef::with_trust("k", DataType::Int, TrustSet::Public),
            ColumnDef::with_trust("v", DataType::Int, TrustSet::of([1])),
        ])
    }

    fn two_input_dag() -> (OpDag, NodeId, NodeId, NodeId) {
        let mut dag = OpDag::new();
        let a = dag.add_node(
            Operator::Input {
                name: "ta".into(),
                party: 1,
            },
            vec![],
            annotated_schema(),
        );
        let mut sb = annotated_schema();
        sb.column_mut("v").unwrap().trust = TrustSet::of([1, 2]);
        let b = dag.add_node(
            Operator::Input {
                name: "tb".into(),
                party: 2,
            },
            vec![],
            sb.clone(),
        );
        let cat_schema = Operator::Concat
            .output_schema(&[annotated_schema(), sb])
            .unwrap();
        let cat = dag.add_node(Operator::Concat, vec![a, b], cat_schema);
        (dag, a, b, cat)
    }

    #[test]
    fn input_seeds_trust_and_sources() {
        let (dag, a, _, _) = two_input_dag();
        let flow = compute_flow(&dag).unwrap();
        let v = flow.value(a, "v").unwrap();
        assert_eq!(v.trust, TrustSet::of([1]));
        assert_eq!(
            v.sources.iter().cloned().collect::<Vec<_>>(),
            vec![("ta".to_string(), "v".to_string())]
        );
        assert!(flow.value(a, "k").unwrap().trust.is_public());
    }

    #[test]
    fn concat_intersects_trust_and_unions_sources() {
        let (dag, _, _, cat) = two_input_dag();
        let flow = compute_flow(&dag).unwrap();
        let v = flow.value(cat, "v").unwrap();
        // {1} ∩ {1,2} = {1}
        assert_eq!(v.trust, TrustSet::of([1]));
        assert_eq!(v.sources.len(), 2, "provenance from both inputs");
        assert!(flow.value(cat, "k").unwrap().trust.is_public());
    }

    #[test]
    fn aggregate_intersects_group_and_over() {
        let (mut dag, _, _, cat) = two_input_dag();
        let agg_op = Operator::Aggregate {
            group_by: vec!["k".into()],
            func: AggFunc::Sum,
            over: Some("v".into()),
            out: "total".into(),
        };
        let schema = agg_op
            .output_schema(&[dag.node(cat).unwrap().schema.clone()])
            .unwrap();
        let agg = dag.add_node(agg_op, vec![cat], schema);
        let flow = compute_flow(&dag).unwrap();
        let total = flow.value(agg, "total").unwrap();
        assert_eq!(total.trust, TrustSet::of([1]), "public ∩ {{1}}");
        assert_eq!(total.sources.len(), 4, "k and v from both inputs");
    }

    #[test]
    fn reveal_and_collect_widen_trust() {
        let (mut dag, _, _, cat) = two_input_dag();
        let reveal = dag
            .insert_after(
                cat,
                Operator::RevealTo {
                    party: 3,
                    columns: None,
                },
            )
            .unwrap();
        let collect = dag
            .insert_after(
                reveal,
                Operator::Collect {
                    recipients: PartySet::singleton(2),
                },
            )
            .unwrap();
        let flow = compute_flow(&dag).unwrap();
        assert!(flow.value(cat, "v").unwrap().trust == TrustSet::of([1]));
        assert_eq!(flow.value(reveal, "v").unwrap().trust, TrustSet::of([1, 3]));
        assert_eq!(
            flow.value(collect, "v").unwrap().trust,
            TrustSet::of([1, 2, 3])
        );
    }

    #[test]
    fn cleartext_site_widens_trust() {
        let (mut dag, _, _, cat) = two_input_dag();
        let proj = dag
            .insert_after(
                cat,
                Operator::Project {
                    columns: vec!["v".into()],
                },
            )
            .unwrap();
        dag.node_mut(proj).unwrap().site = ExecSite::Stp(2);
        let flow = compute_flow(&dag).unwrap();
        assert_eq!(flow.value(proj, "v").unwrap().trust, TrustSet::of([1, 2]));
    }

    #[test]
    fn derivation_chain_walks_to_the_untrusting_source() {
        let (mut dag, _, _, cat) = two_input_dag();
        let proj = dag
            .insert_after(
                cat,
                Operator::Project {
                    columns: vec!["v".into()],
                },
            )
            .unwrap();
        let flow = compute_flow(&dag).unwrap();
        // Party 2 is not trusted with ta.v — the chain must end there.
        let chain = flow.derivation_chain(&dag, proj, "v", 2);
        assert_eq!(
            chain,
            vec![
                "#0 input ta.v".to_string(),
                "#2 concat.v".to_string(),
                format!("#{proj} project.v"),
            ]
        );
    }

    #[test]
    fn literal_columns_are_public_with_no_sources() {
        let mut dag = OpDag::new();
        let a = dag.add_node(
            Operator::Input {
                name: "t".into(),
                party: 1,
            },
            vec![],
            annotated_schema(),
        );
        let mul = Operator::Multiply {
            out: "c2".into(),
            operands: vec![crate::ops::Operand::lit(2), crate::ops::Operand::lit(3)],
        };
        let schema = mul
            .output_schema(&[dag.node(a).unwrap().schema.clone()])
            .unwrap();
        let m = dag.add_node(mul, vec![a], schema);
        let flow = compute_flow(&dag).unwrap();
        let v = flow.value(m, "c2").unwrap();
        assert!(v.trust.is_public());
        assert!(v.sources.is_empty());
    }
}
