//! Error types shared across the IR.

use std::fmt;

/// Errors raised while constructing or validating the query IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A referenced column does not exist in the relevant schema.
    UnknownColumn {
        /// Name of the missing column.
        column: String,
        /// Context (operator or relation) in which the lookup happened.
        context: String,
    },
    /// A referenced DAG node does not exist.
    UnknownNode(usize),
    /// Two schemas that must be compatible (e.g. for `concat`) are not.
    SchemaMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// An operator was constructed with invalid parameters.
    InvalidOperator {
        /// Operator name.
        op: String,
        /// Description of the problem.
        detail: String,
    },
    /// The DAG is malformed (cycle, missing input, dangling edge).
    MalformedDag(String),
    /// A type error in an expression or operator.
    TypeError(String),
    /// The query has no output (`collect`) node.
    NoOutput,
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnknownColumn { column, context } => {
                write!(f, "unknown column `{column}` in {context}")
            }
            IrError::UnknownNode(id) => write!(f, "unknown DAG node id {id}"),
            IrError::SchemaMismatch { detail } => write!(f, "schema mismatch: {detail}"),
            IrError::InvalidOperator { op, detail } => {
                write!(f, "invalid operator `{op}`: {detail}")
            }
            IrError::MalformedDag(detail) => write!(f, "malformed DAG: {detail}"),
            IrError::TypeError(detail) => write!(f, "type error: {detail}"),
            IrError::NoOutput => write!(f, "query has no output (collect) node"),
        }
    }
}

impl std::error::Error for IrError {}

/// Convenience result alias for IR operations.
pub type IrResult<T> = Result<T, IrError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_column() {
        let e = IrError::UnknownColumn {
            column: "ssn".into(),
            context: "join".into(),
        };
        assert_eq!(e.to_string(), "unknown column `ssn` in join");
    }

    #[test]
    fn display_other_variants() {
        assert!(IrError::UnknownNode(3).to_string().contains('3'));
        assert!(IrError::NoOutput.to_string().contains("output"));
        assert!(IrError::MalformedDag("cycle".into())
            .to_string()
            .contains("cycle"));
        assert!(IrError::TypeError("bad".into()).to_string().contains("bad"));
        assert!(IrError::SchemaMismatch {
            detail: "arity".into()
        }
        .to_string()
        .contains("arity"));
        assert!(IrError::InvalidOperator {
            op: "join".into(),
            detail: "no keys".into()
        }
        .to_string()
        .contains("join"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&IrError::NoOutput);
    }
}
