//! Human-readable and Graphviz renderings of operator DAGs.

use crate::dag::OpDag;
use crate::ops::ExecSite;
use std::fmt::Write as _;

/// Renders the DAG as an indented, topologically ordered text plan.
///
/// Each line shows the node id, operator, execution site, owner and schema —
/// the same information the compiler's passes reason about, which makes the
/// output useful both for debugging rewrites and for documentation.
pub fn render_text(dag: &OpDag) -> String {
    let mut out = String::new();
    let order = match dag.topo_order() {
        Ok(o) => o,
        Err(e) => return format!("<malformed dag: {e}>"),
    };
    for id in order {
        let node = dag.node(id).expect("topo order returns live nodes");
        let owner = match node.owner {
            Some(p) => format!("P{p}"),
            None => "-".to_string(),
        };
        let sorted = node
            .sorted_by
            .as_deref()
            .map(|c| format!(" sorted_by={c}"))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "#{:<3} {:<40} site={:<10} owner={:<4} inputs={:?}{} {}",
            node.id,
            node.op.to_string(),
            node.site.to_string(),
            owner,
            node.inputs,
            sorted,
            node.schema,
        );
    }
    out
}

/// Renders the DAG in Graphviz DOT format. MPC nodes are drawn as red boxes,
/// STP nodes as blue diamonds and local cleartext nodes as green ellipses,
/// mirroring Figure 2 of the paper.
pub fn render_dot(dag: &OpDag) -> String {
    let mut out = String::from("digraph conclave {\n  rankdir=BT;\n");
    for node in dag.iter() {
        let (shape, color) = match node.site {
            ExecSite::Mpc => ("box", "red"),
            ExecSite::Stp(_) => ("diamond", "blue"),
            ExecSite::Local(_) => ("ellipse", "darkgreen"),
            ExecSite::Undecided => ("ellipse", "gray"),
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\\n{}\", shape={}, color={}];",
            node.id, node.op, node.site, shape, color
        );
        for &input in &node.inputs {
            let _ = writeln!(out, "  n{} -> n{};", input, node.id);
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;
    use crate::ops::AggFunc;
    use crate::party::Party;
    use crate::schema::Schema;

    fn demo_dag() -> OpDag {
        let pa = Party::new(1, "a");
        let pb = Party::new(2, "b");
        let mut q = QueryBuilder::new();
        let a = q.input("a", Schema::ints(&["k", "v"]), pa.clone());
        let b = q.input("b", Schema::ints(&["k", "v"]), pb);
        let c = q.concat(&[a, b]);
        let agg = q.aggregate(c, "total", AggFunc::Sum, &["k"], "v");
        q.collect(agg, &[pa]);
        q.build().unwrap().dag
    }

    #[test]
    fn text_rendering_lists_every_node() {
        let dag = demo_dag();
        let text = render_text(&dag);
        assert_eq!(text.lines().count(), dag.node_count());
        assert!(text.contains("aggregate"));
        assert!(text.contains("concat"));
    }

    #[test]
    fn dot_rendering_has_edges_and_nodes() {
        let dag = demo_dag();
        let dot = render_dot(&dag);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("->"));
        assert!(dot.ends_with("}\n"));
        // One node line per live node.
        let node_lines = dot.lines().filter(|l| l.contains("[label=")).count();
        assert_eq!(node_lines, dag.node_count());
    }

    #[test]
    fn malformed_dag_renders_error_text() {
        let mut dag = demo_dag();
        // Introduce a cycle.
        let roots = dag.roots();
        let leaves = dag.leaves();
        dag.node_mut(roots[0]).unwrap().inputs = vec![leaves[0]];
        let text = render_text(&dag);
        assert!(text.contains("malformed"));
    }
}
