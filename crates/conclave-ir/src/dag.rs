//! The operator DAG a query compiles into.
//!
//! Nodes are stored in an arena indexed by [`NodeId`]; each node records its
//! input node ids, its output [`Schema`], and the annotations the compiler
//! computes (owner, execution site, sort order). Child edges are derived from
//! the input lists.

use crate::error::{IrError, IrResult};
use crate::ops::{ExecSite, Operator};
use crate::party::PartyId;
use crate::schema::Schema;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};

/// Identifier of a node within an [`OpDag`].
pub type NodeId = usize;

/// One operator instance in the DAG together with its compiler annotations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagNode {
    /// The node's id (its index in the arena).
    pub id: NodeId,
    /// The relational operator.
    pub op: Operator,
    /// Ids of the input nodes, in operator-argument order.
    pub inputs: Vec<NodeId>,
    /// Output schema of the operator.
    pub schema: Schema,
    /// Owner of the output relation: `Some(p)` if party `p` can compute it
    /// locally from its own data, `None` if the relation is partitioned
    /// across parties (§5.1). Inputs start owned by their storing party.
    pub owner: Option<PartyId>,
    /// Execution site chosen by the compiler.
    pub site: ExecSite,
    /// Column the output is known to be sorted by, if any (§5.4 tracking).
    pub sorted_by: Option<String>,
    /// Marks nodes removed by rewrites; they are skipped by traversals.
    pub deleted: bool,
}

impl DagNode {
    /// Returns `true` if this node must run under MPC because its output
    /// combines data from multiple parties (it has no owner) and it is not an
    /// input.
    pub fn is_partitioned(&self) -> bool {
        self.owner.is_none() && !self.op.is_input()
    }
}

/// A directed acyclic graph of relational operators.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OpDag {
    nodes: Vec<DagNode>,
}

impl OpDag {
    /// Creates an empty DAG.
    pub fn new() -> Self {
        OpDag::default()
    }

    /// Adds a node with the given operator, inputs and schema; returns its id.
    pub fn add_node(&mut self, op: Operator, inputs: Vec<NodeId>, schema: Schema) -> NodeId {
        let id = self.nodes.len();
        let owner = match &op {
            Operator::Input { party, .. } => Some(*party),
            _ => None,
        };
        self.nodes.push(DagNode {
            id,
            op,
            inputs,
            schema,
            owner,
            site: ExecSite::Undecided,
            sorted_by: None,
            deleted: false,
        });
        id
    }

    /// Number of live (non-deleted) nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|n| !n.deleted).count()
    }

    /// Total number of node slots ever allocated (including deleted ones).
    pub fn capacity(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable access to a node.
    pub fn node(&self, id: NodeId) -> IrResult<&DagNode> {
        self.nodes.get(id).ok_or(IrError::UnknownNode(id))
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, id: NodeId) -> IrResult<&mut DagNode> {
        self.nodes.get_mut(id).ok_or(IrError::UnknownNode(id))
    }

    /// Iterates over all live nodes.
    pub fn iter(&self) -> impl Iterator<Item = &DagNode> {
        self.nodes.iter().filter(|n| !n.deleted)
    }

    /// Ids of all live nodes with no inputs (the query's input relations).
    pub fn roots(&self) -> Vec<NodeId> {
        self.iter()
            .filter(|n| n.inputs.is_empty())
            .map(|n| n.id)
            .collect()
    }

    /// Ids of all live nodes that no live node consumes (the query outputs).
    pub fn leaves(&self) -> Vec<NodeId> {
        let mut consumed: HashSet<NodeId> = HashSet::new();
        for n in self.iter() {
            for &i in &n.inputs {
                consumed.insert(i);
            }
        }
        self.iter()
            .filter(|n| !consumed.contains(&n.id))
            .map(|n| n.id)
            .collect()
    }

    /// Ids of the live nodes that consume `id` as an input.
    pub fn children_of(&self, id: NodeId) -> Vec<NodeId> {
        self.iter()
            .filter(|n| n.inputs.contains(&id))
            .map(|n| n.id)
            .collect()
    }

    /// Marks a node as deleted. Its consumers must have been rewired first.
    pub fn delete_node(&mut self, id: NodeId) -> IrResult<()> {
        self.node_mut(id)?.deleted = true;
        Ok(())
    }

    /// Replaces every use of `old` as an input with `new` across the DAG.
    pub fn replace_input_everywhere(&mut self, old: NodeId, new: NodeId) {
        for n in self.nodes.iter_mut().filter(|n| !n.deleted) {
            for input in n.inputs.iter_mut() {
                if *input == old {
                    *input = new;
                }
            }
        }
    }

    /// Replaces `old` with `new` in the input list of node `child` only.
    pub fn replace_input_of(&mut self, child: NodeId, old: NodeId, new: NodeId) -> IrResult<()> {
        let node = self.node_mut(child)?;
        let mut found = false;
        for input in node.inputs.iter_mut() {
            if *input == old {
                *input = new;
                found = true;
            }
        }
        if found {
            Ok(())
        } else {
            Err(IrError::MalformedDag(format!(
                "node {child} does not consume node {old}"
            )))
        }
    }

    /// Inserts a new node with operator `op` between `parent` and all of the
    /// consumers of `parent`, returning the new node's id.
    pub fn insert_after(&mut self, parent: NodeId, op: Operator) -> IrResult<NodeId> {
        let parent_schema = self.node(parent)?.schema.clone();
        let schema = op.output_schema(&[parent_schema])?;
        let children = self.children_of(parent);
        let new_id = self.add_node(op, vec![parent], schema);
        for child in children {
            self.replace_input_of(child, parent, new_id)?;
        }
        Ok(new_id)
    }

    /// Returns the ids of all live nodes in a topological order (inputs before
    /// consumers). Fails if the graph contains a cycle.
    pub fn topo_order(&self) -> IrResult<Vec<NodeId>> {
        let live: Vec<&DagNode> = self.iter().collect();
        let mut in_degree: HashMap<NodeId, usize> = HashMap::new();
        for n in &live {
            in_degree.entry(n.id).or_insert(0);
            for &_i in &n.inputs {
                *in_degree.entry(n.id).or_insert(0) += 0;
            }
        }
        for n in &live {
            let deg = n
                .inputs
                .iter()
                .filter(|i| self.nodes.get(**i).map(|p| !p.deleted).unwrap_or(false))
                .count();
            in_degree.insert(n.id, deg);
        }
        let mut queue: VecDeque<NodeId> = in_degree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&id, _)| id)
            .collect();
        let mut sorted_queue: Vec<NodeId> = queue.drain(..).collect();
        sorted_queue.sort_unstable();
        let mut queue: VecDeque<NodeId> = sorted_queue.into();
        let mut order = Vec::with_capacity(live.len());
        while let Some(id) = queue.pop_front() {
            order.push(id);
            for child in self.children_of(id) {
                let deg = in_degree.get_mut(&child).expect("child is live");
                *deg -= 1;
                if *deg == 0 {
                    queue.push_back(child);
                }
            }
        }
        if order.len() != live.len() {
            return Err(IrError::MalformedDag("cycle detected".into()));
        }
        Ok(order)
    }

    /// Returns the ids of all live nodes in reverse topological order.
    pub fn reverse_topo_order(&self) -> IrResult<Vec<NodeId>> {
        let mut order = self.topo_order()?;
        order.reverse();
        Ok(order)
    }

    /// Validates structural invariants: input references exist and are live,
    /// operator arities match, no cycles, and every non-input node's schema
    /// matches what its operator derives from its inputs' schemas.
    pub fn validate(&self) -> IrResult<()> {
        for n in self.iter() {
            if let Some(arity) = n.op.arity() {
                if n.inputs.len() != arity {
                    return Err(IrError::MalformedDag(format!(
                        "node {} ({}) expects {} inputs, has {}",
                        n.id,
                        n.op.name(),
                        arity,
                        n.inputs.len()
                    )));
                }
            } else if n.inputs.is_empty() {
                return Err(IrError::MalformedDag(format!(
                    "variadic node {} ({}) has no inputs",
                    n.id,
                    n.op.name()
                )));
            }
            for &i in &n.inputs {
                let input = self.node(i)?;
                if input.deleted {
                    return Err(IrError::MalformedDag(format!(
                        "node {} consumes deleted node {}",
                        n.id, i
                    )));
                }
            }
            if !n.op.is_input() {
                let input_schemas: Vec<Schema> = n
                    .inputs
                    .iter()
                    .map(|&i| self.node(i).map(|x| x.schema.clone()))
                    .collect::<IrResult<_>>()?;
                let derived = n.op.output_schema(&input_schemas)?;
                if derived.names() != n.schema.names() {
                    return Err(IrError::MalformedDag(format!(
                        "node {} ({}) schema mismatch: stored {:?}, derived {:?}",
                        n.id,
                        n.op.name(),
                        n.schema.names(),
                        derived.names()
                    )));
                }
            }
        }
        self.topo_order()?;
        Ok(())
    }

    /// Recomputes and stores the output schemas of all non-input nodes in
    /// topological order. Call after rewrites that change upstream schemas.
    pub fn recompute_schemas(&mut self) -> IrResult<()> {
        let order = self.topo_order()?;
        for id in order {
            let node = self.node(id)?;
            if node.op.is_input() {
                continue;
            }
            let input_schemas: Vec<Schema> = node
                .inputs
                .iter()
                .map(|&i| self.node(i).map(|x| x.schema.clone()))
                .collect::<IrResult<_>>()?;
            let op = node.op.clone();
            let schema = op.output_schema(&input_schemas)?;
            self.node_mut(id)?.schema = schema;
        }
        Ok(())
    }

    /// All nodes currently assigned to MPC execution.
    pub fn mpc_nodes(&self) -> Vec<NodeId> {
        self.iter()
            .filter(|n| n.site.is_mpc())
            .map(|n| n.id)
            .collect()
    }

    /// Number of live nodes per execution-site class `(local, stp, mpc,
    /// undecided)` — handy in tests and reports.
    pub fn site_histogram(&self) -> (usize, usize, usize, usize) {
        let mut local = 0;
        let mut stp = 0;
        let mut mpc = 0;
        let mut undecided = 0;
        for n in self.iter() {
            match n.site {
                ExecSite::Local(_) => local += 1,
                ExecSite::Stp(_) => stp += 1,
                ExecSite::Mpc => mpc += 1,
                ExecSite::Undecided => undecided += 1,
            }
        }
        (local, stp, mpc, undecided)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{AggFunc, Operand};
    use crate::party::PartySet;

    fn simple_dag() -> (OpDag, NodeId, NodeId, NodeId, NodeId) {
        // inputA --\
        //           concat -> aggregate -> collect
        // inputB --/
        let mut dag = OpDag::new();
        let schema = Schema::ints(&["k", "v"]);
        let a = dag.add_node(
            Operator::Input {
                name: "a".into(),
                party: 1,
            },
            vec![],
            schema.clone(),
        );
        let b = dag.add_node(
            Operator::Input {
                name: "b".into(),
                party: 2,
            },
            vec![],
            schema.clone(),
        );
        let cat = dag.add_node(
            Operator::Concat,
            vec![a, b],
            Operator::Concat
                .output_schema(&[schema.clone(), schema.clone()])
                .unwrap(),
        );
        let agg_op = Operator::Aggregate {
            group_by: vec!["k".into()],
            func: AggFunc::Sum,
            over: Some("v".into()),
            out: "total".into(),
        };
        let agg_schema = agg_op.output_schema(std::slice::from_ref(&schema)).unwrap();
        let agg = dag.add_node(agg_op, vec![cat], agg_schema.clone());
        let col = dag.add_node(
            Operator::Collect {
                recipients: PartySet::singleton(1),
            },
            vec![agg],
            agg_schema,
        );
        (dag, a, b, cat, col)
    }

    #[test]
    fn construction_and_queries() {
        let (dag, a, b, cat, col) = simple_dag();
        assert_eq!(dag.node_count(), 5);
        assert_eq!(dag.roots(), vec![a, b]);
        assert_eq!(dag.leaves(), vec![col]);
        assert_eq!(dag.children_of(a), vec![cat]);
        assert_eq!(dag.node(a).unwrap().owner, Some(1));
        assert_eq!(dag.node(cat).unwrap().owner, None);
        assert!(dag.node(999).is_err());
        assert!(dag.validate().is_ok());
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let (dag, a, b, cat, col) = simple_dag();
        let order = dag.topo_order().unwrap();
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(a) < pos(cat));
        assert!(pos(b) < pos(cat));
        assert!(pos(cat) < pos(col));
        let rev = dag.reverse_topo_order().unwrap();
        assert_eq!(rev[0], col);
    }

    #[test]
    fn insert_after_rewires_children() {
        let (mut dag, _a, _b, cat, _col) = simple_dag();
        let children_before = dag.children_of(cat);
        let new = dag.insert_after(cat, Operator::Shuffle).unwrap();
        assert_eq!(dag.children_of(cat), vec![new]);
        assert_eq!(dag.children_of(new), children_before);
        assert!(dag.validate().is_ok());
    }

    #[test]
    fn delete_and_replace() {
        let (mut dag, a, b, cat, _col) = simple_dag();
        // Replace the concat with just input a everywhere, then delete it.
        dag.replace_input_everywhere(cat, a);
        dag.delete_node(cat).unwrap();
        dag.delete_node(b).unwrap();
        assert_eq!(dag.node_count(), 3);
        assert!(dag.validate().is_ok());
        assert!(dag.children_of(a).len() == 1);
    }

    #[test]
    fn replace_input_of_single_child() {
        let (mut dag, a, b, cat, _col) = simple_dag();
        assert!(dag.replace_input_of(cat, a, b).is_ok());
        assert_eq!(dag.node(cat).unwrap().inputs, vec![b, b]);
        assert!(dag.replace_input_of(cat, a, b).is_err());
    }

    #[test]
    fn validate_catches_arity_and_schema_errors() {
        let mut dag = OpDag::new();
        let schema = Schema::ints(&["k"]);
        let a = dag.add_node(
            Operator::Input {
                name: "a".into(),
                party: 1,
            },
            vec![],
            schema.clone(),
        );
        // Join with a single input: arity error.
        let bad = dag.add_node(
            Operator::Join {
                left_keys: vec!["k".into()],
                right_keys: vec!["k".into()],
                kind: crate::ops::JoinKind::Inner,
            },
            vec![a],
            schema.clone(),
        );
        assert!(dag.validate().is_err());
        dag.delete_node(bad).unwrap();
        assert!(dag.validate().is_ok());

        // Stored schema that disagrees with the derived one.
        let wrong = dag.add_node(
            Operator::Project {
                columns: vec!["k".into()],
            },
            vec![a],
            Schema::ints(&["zzz"]),
        );
        assert!(dag.validate().is_err());
        dag.delete_node(wrong).unwrap();
        assert!(dag.validate().is_ok());
    }

    #[test]
    fn recompute_schemas_after_rewrite() {
        let (mut dag, a, _b, cat, _col) = simple_dag();
        // Add a computed column upstream and recompute downstream schemas.
        let mul = Operator::Multiply {
            out: "v2".into(),
            operands: vec![Operand::col("v"), Operand::lit(2)],
        };
        let mul_schema = mul
            .output_schema(&[dag.node(a).unwrap().schema.clone()])
            .unwrap();
        let mul_id = dag.add_node(mul, vec![a], mul_schema);
        // Concat now has mismatched arity of columns; rewire both inputs via
        // projection back to (k, v) to keep it valid.
        let proj = Operator::Project {
            columns: vec!["k".into(), "v".into()],
        };
        let proj_schema = proj
            .output_schema(&[dag.node(mul_id).unwrap().schema.clone()])
            .unwrap();
        let proj_id = dag.add_node(proj, vec![mul_id], proj_schema);
        dag.replace_input_of(cat, a, proj_id).unwrap();
        assert!(dag.recompute_schemas().is_ok());
        assert!(dag.validate().is_ok());
    }

    #[test]
    fn cycle_detection() {
        let (mut dag, a, _b, cat, _col) = simple_dag();
        // Manually create a cycle: a consumes cat.
        dag.node_mut(a).unwrap().inputs = vec![cat];
        assert!(dag.topo_order().is_err());
    }

    #[test]
    fn site_histogram_counts() {
        let (mut dag, a, b, cat, col) = simple_dag();
        dag.node_mut(a).unwrap().site = ExecSite::Local(1);
        dag.node_mut(b).unwrap().site = ExecSite::Local(2);
        dag.node_mut(cat).unwrap().site = ExecSite::Mpc;
        dag.node_mut(col).unwrap().site = ExecSite::Stp(1);
        let (local, stp, mpc, undecided) = dag.site_histogram();
        assert_eq!((local, stp, mpc, undecided), (2, 1, 1, 1));
        assert_eq!(dag.mpc_nodes(), vec![cat]);
    }

    #[test]
    fn partitioned_detection() {
        let (dag, a, _b, cat, _col) = simple_dag();
        assert!(!dag.node(a).unwrap().is_partitioned());
        assert!(dag.node(cat).unwrap().is_partitioned());
    }
}
