//! LINQ-style query builder mirroring the paper's frontend (Listings 1–2).
//!
//! ```
//! use conclave_ir::builder::QueryBuilder;
//! use conclave_ir::ops::AggFunc;
//! use conclave_ir::party::Party;
//! use conclave_ir::schema::{ColumnDef, Schema};
//! use conclave_ir::trust::TrustSet;
//! use conclave_ir::types::DataType;
//!
//! // Credit-card regulation query (Listing 1), condensed.
//! let regulator = Party::new(1, "mpc.ftc.gov");
//! let bank_a = Party::new(2, "mpc.a.com");
//! let bank_b = Party::new(3, "mpc.b.cash");
//!
//! let demo_schema = Schema::new(vec![
//!     ColumnDef::new("ssn", DataType::Int),
//!     ColumnDef::new("zip", DataType::Int),
//! ]);
//! let bank_schema = Schema::new(vec![
//!     ColumnDef::with_trust("ssn", DataType::Int, TrustSet::of([1])),
//!     ColumnDef::new("score", DataType::Int),
//! ]);
//!
//! let mut q = QueryBuilder::new();
//! let demographics = q.input("demographics", demo_schema, regulator.clone());
//! let s1 = q.input("scores1", bank_schema.clone(), bank_a);
//! let s2 = q.input("scores2", bank_schema, bank_b);
//! let scores = q.concat(&[s1, s2]);
//! let joined = q.join(demographics, scores, &["ssn"], &["ssn"]);
//! let by_zip = q.aggregate(joined, "total", AggFunc::Sum, &["zip"], "score");
//! q.collect(by_zip, &[regulator]);
//! let query = q.build().unwrap();
//! assert!(query.dag.validate().is_ok());
//! ```

use crate::dag::{NodeId, OpDag};
use crate::error::{IrError, IrResult};
use crate::expr::Expr;
use crate::ops::{AggFunc, JoinKind, Operand, Operator};
use crate::party::{Party, PartySet};
use crate::schema::Schema;
use serde::{Deserialize, Serialize};

/// Handle to an intermediate relation produced by the builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableHandle(pub NodeId);

/// A complete query: the operator DAG plus the participating parties.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Query {
    /// The operator DAG.
    pub dag: OpDag,
    /// All parties mentioned by the query (input owners and recipients).
    pub parties: Vec<Party>,
}

impl Query {
    /// The set of all party ids participating in the query.
    pub fn party_set(&self) -> PartySet {
        self.parties.iter().map(|p| p.id).collect()
    }

    /// Looks up a party by id.
    pub fn party(&self, id: u32) -> Option<&Party> {
        self.parties.iter().find(|p| p.id == id)
    }
}

/// Builder for Conclave queries.
///
/// Errors (unknown columns, schema mismatches) are deferred: building
/// operators records them, and [`QueryBuilder::build`] reports the first one.
/// This keeps the fluent API close to the paper's listings.
#[derive(Debug, Default)]
pub struct QueryBuilder {
    dag: OpDag,
    parties: Vec<Party>,
    errors: Vec<IrError>,
    has_output: bool,
}

impl QueryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        QueryBuilder::default()
    }

    fn register_party(&mut self, party: &Party) {
        if !self.parties.iter().any(|p| p.id == party.id) {
            self.parties.push(party.clone());
        }
    }

    /// The current output schema of an intermediate relation. Frontends (such
    /// as the SQL binder in `conclave-sql`) use this to resolve and type-check
    /// column references as they lower clauses onto the builder. Returns an
    /// empty schema for handles produced by failed operations.
    pub fn schema_of(&self, t: TableHandle) -> Schema {
        self.dag
            .node(t.0)
            .map(|n| n.schema.clone())
            .unwrap_or_default()
    }

    fn push_unary(&mut self, input: TableHandle, op: Operator) -> TableHandle {
        let in_schema = self.schema_of(input);
        match op.output_schema(&[in_schema]) {
            Ok(schema) => TableHandle(self.dag.add_node(op, vec![input.0], schema)),
            Err(e) => {
                self.errors.push(e);
                input
            }
        }
    }

    fn push_binary(&mut self, left: TableHandle, right: TableHandle, op: Operator) -> TableHandle {
        let ls = self.schema_of(left);
        let rs = self.schema_of(right);
        match op.output_schema(&[ls, rs]) {
            Ok(schema) => TableHandle(self.dag.add_node(op, vec![left.0, right.0], schema)),
            Err(e) => {
                self.errors.push(e);
                left
            }
        }
    }

    /// Declares an input relation stored at `party` (the `at=` annotation).
    pub fn input(&mut self, name: &str, schema: Schema, party: Party) -> TableHandle {
        self.register_party(&party);
        let mut schema = schema;
        // The storing party is implicitly trusted with all of its columns.
        for col in &mut schema.columns {
            col.trust.add(party.id);
        }
        TableHandle(self.dag.add_node(
            Operator::Input {
                name: name.to_string(),
                party: party.id,
            },
            vec![],
            schema,
        ))
    }

    /// Duplicate-preserving union of several relations with identical schemas.
    pub fn concat(&mut self, inputs: &[TableHandle]) -> TableHandle {
        if inputs.is_empty() {
            self.errors.push(IrError::InvalidOperator {
                op: "concat".into(),
                detail: "needs at least one input".into(),
            });
            return TableHandle(0);
        }
        let schemas: Vec<Schema> = inputs.iter().map(|t| self.schema_of(*t)).collect();
        match Operator::Concat.output_schema(&schemas) {
            Ok(schema) => TableHandle(self.dag.add_node(
                Operator::Concat,
                inputs.iter().map(|t| t.0).collect(),
                schema,
            )),
            Err(e) => {
                self.errors.push(e);
                inputs[0]
            }
        }
    }

    /// Projects onto the named columns.
    pub fn project(&mut self, input: TableHandle, columns: &[&str]) -> TableHandle {
        self.push_unary(
            input,
            Operator::Project {
                columns: columns.iter().map(|c| c.to_string()).collect(),
            },
        )
    }

    /// Filters rows by a predicate expression.
    pub fn filter(&mut self, input: TableHandle, predicate: Expr) -> TableHandle {
        self.push_unary(input, Operator::Filter { predicate })
    }

    /// Inner equi-join on the given key columns.
    pub fn join(
        &mut self,
        left: TableHandle,
        right: TableHandle,
        left_keys: &[&str],
        right_keys: &[&str],
    ) -> TableHandle {
        self.push_binary(
            left,
            right,
            Operator::Join {
                left_keys: left_keys.iter().map(|c| c.to_string()).collect(),
                right_keys: right_keys.iter().map(|c| c.to_string()).collect(),
                kind: JoinKind::Inner,
            },
        )
    }

    /// Grouped aggregation producing column `out`.
    pub fn aggregate(
        &mut self,
        input: TableHandle,
        out: &str,
        func: AggFunc,
        group_by: &[&str],
        over: &str,
    ) -> TableHandle {
        self.push_unary(
            input,
            Operator::Aggregate {
                group_by: group_by.iter().map(|c| c.to_string()).collect(),
                func,
                over: if over.is_empty() {
                    None
                } else {
                    Some(over.to_string())
                },
                out: out.to_string(),
            },
        )
    }

    /// Grouped COUNT aggregation.
    pub fn count(&mut self, input: TableHandle, out: &str, group_by: &[&str]) -> TableHandle {
        self.push_unary(
            input,
            Operator::Aggregate {
                group_by: group_by.iter().map(|c| c.to_string()).collect(),
                func: AggFunc::Count,
                over: None,
                out: out.to_string(),
            },
        )
    }

    /// Scalar (ungrouped) aggregation over a column.
    pub fn aggregate_scalar(
        &mut self,
        input: TableHandle,
        out: &str,
        func: AggFunc,
        over: &str,
    ) -> TableHandle {
        self.aggregate(input, out, func, &[], over)
    }

    /// Appends `out` = product of the operands.
    pub fn multiply(
        &mut self,
        input: TableHandle,
        out: &str,
        operands: Vec<Operand>,
    ) -> TableHandle {
        self.push_unary(
            input,
            Operator::Multiply {
                out: out.to_string(),
                operands,
            },
        )
    }

    /// Appends `out` = `num` / `den`.
    pub fn divide(
        &mut self,
        input: TableHandle,
        out: &str,
        num: Operand,
        den: Operand,
    ) -> TableHandle {
        self.push_unary(
            input,
            Operator::Divide {
                out: out.to_string(),
                num,
                den,
            },
        )
    }

    /// Sorts by a column.
    pub fn sort_by(&mut self, input: TableHandle, column: &str, ascending: bool) -> TableHandle {
        self.push_unary(
            input,
            Operator::SortBy {
                column: column.to_string(),
                ascending,
            },
        )
    }

    /// Keeps the first `n` rows.
    pub fn limit(&mut self, input: TableHandle, n: usize) -> TableHandle {
        self.push_unary(input, Operator::Limit { n })
    }

    /// Removes duplicate rows over the named columns.
    pub fn distinct(&mut self, input: TableHandle, columns: &[&str]) -> TableHandle {
        self.push_unary(
            input,
            Operator::Distinct {
                columns: columns.iter().map(|c| c.to_string()).collect(),
            },
        )
    }

    /// Counts distinct values of a column.
    pub fn distinct_count(&mut self, input: TableHandle, column: &str, out: &str) -> TableHandle {
        self.push_unary(
            input,
            Operator::DistinctCount {
                column: column.to_string(),
                out: out.to_string(),
            },
        )
    }

    /// Declares the query output: `recipients` receive the relation in clear.
    pub fn collect(&mut self, input: TableHandle, recipients: &[Party]) -> TableHandle {
        for p in recipients {
            self.register_party(p);
        }
        self.has_output = true;
        self.push_unary(
            input,
            Operator::Collect {
                recipients: recipients.iter().map(|p| p.id).collect(),
            },
        )
    }

    /// Finalizes the query, validating the DAG.
    pub fn build(self) -> IrResult<Query> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        if !self.has_output {
            return Err(IrError::NoOutput);
        }
        self.dag.validate()?;
        Ok(Query {
            dag: self.dag,
            parties: self.parties,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::trust::TrustSet;
    use crate::types::DataType;

    fn parties() -> (Party, Party, Party) {
        (
            Party::new(1, "mpc.a.com"),
            Party::new(2, "mpc.b.com"),
            Party::new(3, "mpc.c.org"),
        )
    }

    /// Builds the market-concentration query of Listing 2.
    fn market_concentration() -> Query {
        let (pa, pb, pc) = parties();
        let schema = Schema::new(vec![
            ColumnDef::new("companyID", DataType::Int),
            ColumnDef::new("price", DataType::Int),
        ]);
        let mut q = QueryBuilder::new();
        let a = q.input("inputA", schema.clone(), pa.clone());
        let b = q.input("inputB", schema.clone(), pb);
        let c = q.input("inputC", schema, pc);
        let taxi = q.concat(&[a, b, c]);
        let proj = q.project(taxi, &["companyID", "price"]);
        let rev = q.aggregate(proj, "local_rev", AggFunc::Sum, &["companyID"], "price");
        let market_size = q.aggregate_scalar(rev, "total_rev", AggFunc::Sum, "local_rev");
        // Cross join via a constant key would be closer to the listing's
        // scalar broadcast; the prototype joins rev with the single-row total
        // by a constant companyID-independent key, which we model by joining
        // on a projected constant. For IR purposes a plain join on
        // companyID is sufficient to exercise the builder here.
        let share = q.divide(
            rev,
            "m_share",
            Operand::col("local_rev"),
            Operand::col("local_rev"),
        );
        let sq = q.multiply(
            share,
            "ms_squared",
            vec![Operand::col("m_share"), Operand::col("m_share")],
        );
        let hhi = q.aggregate_scalar(sq, "hhi", AggFunc::Sum, "ms_squared");
        q.collect(hhi, &[pa]);
        // market_size is left dangling on purpose in this IR-level test.
        let _ = market_size;
        q.build().unwrap()
    }

    #[test]
    fn builds_market_concentration_query() {
        let query = market_concentration();
        assert!(query.dag.validate().is_ok());
        assert_eq!(query.parties.len(), 3);
        assert_eq!(query.dag.roots().len(), 3);
        assert!(query.party_set().contains(2));
        assert!(query.party(1).is_some());
        assert!(query.party(9).is_none());
    }

    #[test]
    fn input_owner_gets_implicit_trust() {
        let (pa, _, _) = parties();
        let schema = Schema::new(vec![ColumnDef::with_trust(
            "ssn",
            DataType::Int,
            TrustSet::private(),
        )]);
        let mut q = QueryBuilder::new();
        let t = q.input("demo", schema, pa.clone());
        q.collect(t, &[pa]);
        let query = q.build().unwrap();
        let input = query.dag.node(0).unwrap();
        assert!(input.schema.column("ssn").unwrap().trust.trusts(1));
    }

    #[test]
    fn missing_output_is_an_error() {
        let (pa, _, _) = parties();
        let mut q = QueryBuilder::new();
        let _ = q.input("t", Schema::ints(&["a"]), pa);
        assert!(matches!(q.build(), Err(IrError::NoOutput)));
    }

    #[test]
    fn unknown_column_surfaces_at_build() {
        let (pa, _, _) = parties();
        let mut q = QueryBuilder::new();
        let t = q.input("t", Schema::ints(&["a"]), pa.clone());
        let bad = q.project(t, &["zzz"]);
        q.collect(bad, &[pa]);
        assert!(matches!(q.build(), Err(IrError::UnknownColumn { .. })));
    }

    #[test]
    fn empty_concat_is_an_error() {
        let (pa, _, _) = parties();
        let mut q = QueryBuilder::new();
        let _t = q.input("t", Schema::ints(&["a"]), pa.clone());
        let c = q.concat(&[]);
        q.collect(c, &[pa]);
        assert!(q.build().is_err());
    }

    #[test]
    fn fluent_operators_produce_expected_schemas() {
        let (pa, pb, _) = parties();
        let mut q = QueryBuilder::new();
        let t1 = q.input("t1", Schema::ints(&["k", "v"]), pa.clone());
        let t2 = q.input("t2", Schema::ints(&["k", "w"]), pb);
        let f = q.filter(t1, Expr::col("v").gt(Expr::lit(0)));
        let j = q.join(f, t2, &["k"], &["k"]);
        let s = q.sort_by(j, "v", true);
        let l = q.limit(s, 10);
        let d = q.distinct(l, &["k"]);
        let dc = q.distinct_count(d, "k", "n_keys");
        q.collect(dc, &[pa]);
        let query = q.build().unwrap();
        let leaf = query.dag.leaves()[0];
        assert_eq!(query.dag.node(leaf).unwrap().schema.names(), vec!["n_keys"]);
    }

    #[test]
    fn count_builder() {
        let (pa, _, _) = parties();
        let mut q = QueryBuilder::new();
        let t = q.input("t", Schema::ints(&["zip", "score"]), pa.clone());
        let c = q.count(t, "n", &["zip"]);
        q.collect(c, &[pa]);
        let query = q.build().unwrap();
        assert!(query.dag.validate().is_ok());
    }

    #[test]
    fn duplicate_party_registration_is_deduplicated() {
        let (pa, _, _) = parties();
        let mut q = QueryBuilder::new();
        let t1 = q.input("t1", Schema::ints(&["a"]), pa.clone());
        let _t2 = q.input("t2", Schema::ints(&["a"]), pa.clone());
        q.collect(t1, &[pa]);
        let query = q.build().unwrap();
        assert_eq!(query.parties.len(), 1);
    }
}
