//! Query intermediate representation for the Conclave reproduction.
//!
//! This crate defines everything the compiler front-end produces and the
//! back-ends consume:
//!
//! * scalar [`types::Value`]s and [`types::DataType`]s,
//! * [`party::Party`] identities and [`trust::TrustSet`] annotations,
//! * relational [`schema::Schema`]s with per-column trust sets,
//! * scalar [`expr::Expr`]essions,
//! * relational [`ops::Operator`]s (including the hybrid and oblivious
//!   sub-operators the compiler inserts),
//! * the operator [`dag::OpDag`],
//! * a LINQ-style [`builder::QueryBuilder`] mirroring Listings 1 and 2 of the
//!   paper, and
//! * the column-level information-[`flow`] lattice behind the leakage
//!   linter.
//!
//! The IR is deliberately self-contained: it has no knowledge of execution
//! back-ends. The compiler (`conclave-core`) annotates DAG nodes with
//! ownership, trust and execution-site information and rewrites the graph;
//! the engines (`conclave-engine`, `conclave-parallel`, `conclave-mpc`)
//! interpret the operators.

// Also enforced workspace-wide via [workspace.lints]; stated here so the
// guarantee is visible at the crate root.
#![forbid(unsafe_code)]

pub mod builder;
pub mod dag;
pub mod display;
pub mod error;
pub mod expr;
pub mod flow;
pub mod ops;
pub mod party;
pub mod schema;
pub mod trust;
pub mod types;

pub use builder::{Query, QueryBuilder, TableHandle};
pub use dag::{DagNode, NodeId, OpDag};
pub use error::{IrError, IrResult};
pub use expr::Expr;
pub use flow::{compute_flow, Flow, FlowValue};
pub use ops::{AggFunc, ExecSite, JoinKind, Operator};
pub use party::{Party, PartyId, PartySet};
pub use schema::{ColumnDef, Schema};
pub use trust::TrustSet;
pub use types::{DataType, Value};
