//! Relational operators.
//!
//! The operator set mirrors the paper's prototype (§6): table inputs,
//! `concat`, `project`, `filter`, `join`, grouped and scalar `aggregate`,
//! column arithmetic (`multiply`, `divide`), sorting, limits and distinct
//! counts — plus the *physical* operators the compiler inserts: oblivious
//! shuffles, enumeration, oblivious selection, reveals, MPC open/close, and
//! the three hybrid operators of §5.3.

use crate::error::{IrError, IrResult};
use crate::expr::Expr;
use crate::party::{PartyId, PartySet};
use crate::schema::{ColumnDef, Schema};
use crate::trust::TrustSet;
use crate::types::{DataType, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-output-column dependency list: each entry pairs an output column name
/// with the `(input_index, column_name)` pairs it depends on.
pub type ColumnDeps = Vec<(String, Vec<(usize, String)>)>;

/// Aggregation functions supported by `aggregate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFunc {
    /// Sum of the aggregated column.
    Sum,
    /// Count of rows in the group.
    Count,
    /// Minimum of the aggregated column.
    Min,
    /// Maximum of the aggregated column.
    Max,
}

impl AggFunc {
    /// Returns `true` if the function needs an `over` column (everything but
    /// `COUNT`).
    pub fn needs_over(self) -> bool {
        !matches!(self, AggFunc::Count)
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Sum => "SUM",
            AggFunc::Count => "COUNT",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        f.write_str(s)
    }
}

/// Join kinds. The prototype (like the paper's) supports inner equi-joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinKind {
    /// Inner equi-join.
    Inner,
}

/// A column reference or literal operand for column arithmetic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    /// Reference to a column of the input relation.
    Col(String),
    /// A scalar literal.
    Lit(Value),
}

impl Operand {
    /// Column operand.
    pub fn col(name: impl Into<String>) -> Self {
        Operand::Col(name.into())
    }

    /// Literal operand.
    pub fn lit(v: impl Into<Value>) -> Self {
        Operand::Lit(v.into())
    }

    /// Name of the referenced column, if any.
    pub fn column_name(&self) -> Option<&str> {
        match self {
            Operand::Col(c) => Some(c),
            Operand::Lit(_) => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Col(c) => write!(f, "{c}"),
            Operand::Lit(v) => write!(f, "{v}"),
        }
    }
}

/// Where a DAG node executes after compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecSite {
    /// Not yet decided (fresh query, before compilation).
    Undecided,
    /// Local cleartext processing at the given party.
    Local(PartyId),
    /// Cleartext processing at the selectively-trusted party as part of a
    /// hybrid protocol.
    Stp(PartyId),
    /// Secure multi-party computation across all computing parties.
    Mpc,
}

impl ExecSite {
    /// Returns `true` for MPC execution.
    pub fn is_mpc(self) -> bool {
        matches!(self, ExecSite::Mpc)
    }

    /// Returns `true` for any cleartext (local or STP) execution.
    pub fn is_cleartext(self) -> bool {
        matches!(self, ExecSite::Local(_) | ExecSite::Stp(_))
    }
}

impl fmt::Display for ExecSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecSite::Undecided => write!(f, "?"),
            ExecSite::Local(p) => write!(f, "local@P{p}"),
            ExecSite::Stp(p) => write!(f, "stp@P{p}"),
            ExecSite::Mpc => write!(f, "mpc"),
        }
    }
}

/// A relational operator. Each DAG node holds exactly one operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Operator {
    /// Leaf: an input relation stored at `party` with the node's schema.
    Input {
        /// Logical relation name.
        name: String,
        /// Owning party (the `at=` annotation of Listings 1–2).
        party: PartyId,
    },
    /// Duplicate-preserving union of the inputs (same schema).
    Concat,
    /// Keep (and reorder) the named columns.
    Project {
        /// Output columns in order.
        columns: Vec<String>,
    },
    /// Keep rows satisfying the predicate.
    Filter {
        /// Boolean predicate over the input schema.
        predicate: Expr,
    },
    /// Inner equi-join of two inputs on the given key columns.
    Join {
        /// Join key columns of the left input.
        left_keys: Vec<String>,
        /// Join key columns of the right input.
        right_keys: Vec<String>,
        /// Join kind.
        kind: JoinKind,
    },
    /// Grouped (or scalar, if `group_by` is empty) aggregation.
    Aggregate {
        /// Group-by key columns (empty for a scalar aggregate).
        group_by: Vec<String>,
        /// Aggregation function.
        func: AggFunc,
        /// Column aggregated over (`None` only for COUNT).
        over: Option<String>,
        /// Name of the output aggregate column.
        out: String,
    },
    /// Append `out` = product of the operands (column values / scalars).
    Multiply {
        /// Name of the new column.
        out: String,
        /// Factors.
        operands: Vec<Operand>,
    },
    /// Append `out` = `num` / `den`.
    Divide {
        /// Name of the new column.
        out: String,
        /// Numerator.
        num: Operand,
        /// Denominator.
        den: Operand,
    },
    /// Sort the relation by a column.
    SortBy {
        /// Sort key column.
        column: String,
        /// Ascending order if `true`.
        ascending: bool,
    },
    /// Keep the first `n` rows.
    Limit {
        /// Row budget.
        n: usize,
    },
    /// Remove duplicate rows, considering only the named columns.
    Distinct {
        /// Columns defining row identity.
        columns: Vec<String>,
    },
    /// Count distinct values of `column` into a single-row relation.
    DistinctCount {
        /// Column whose distinct values are counted.
        column: String,
        /// Name of the output count column.
        out: String,
    },
    /// Leaf: reveal the final relation to the recipients in cleartext.
    Collect {
        /// Parties receiving the query output.
        recipients: PartySet,
    },

    // ------------------------------------------------------------------
    // Physical / compiler-inserted operators.
    // ------------------------------------------------------------------
    /// Obliviously permute the rows (under MPC).
    Shuffle,
    /// Append a row-index column `out` (0-based, in current row order).
    Enumerate {
        /// Name of the index column.
        out: String,
    },
    /// Oblivious indexing (Laud-style `select`): the first input is the data
    /// relation, the second a single-column relation of row indexes; the
    /// output contains the data rows at those indexes, in index order.
    ObliviousSelect {
        /// Column of the second input holding the indexes.
        index_column: String,
    },
    /// Reveal (a projection of) an MPC-resident relation to one party.
    RevealTo {
        /// Receiving party (the STP in hybrid protocols).
        party: PartyId,
        /// Columns revealed; `None` means all columns.
        columns: Option<Vec<String>>,
    },
    /// Secret-share a locally-held cleartext relation into the MPC.
    CloseTo,
    /// Open an MPC-resident relation to the listed recipients.
    Open {
        /// Parties that learn the cleartext relation.
        recipients: PartySet,
    },
    /// Obliviously merge sorted inputs into one sorted relation.
    Merge {
        /// Sort key column.
        column: String,
        /// Ascending order if `true`.
        ascending: bool,
    },
    /// Hybrid MPC–cleartext join using an STP (§5.3, Figure 3).
    HybridJoin {
        /// Join key columns of the left input.
        left_keys: Vec<String>,
        /// Join key columns of the right input.
        right_keys: Vec<String>,
        /// Selectively-trusted party performing the cleartext join.
        stp: PartyId,
    },
    /// Join whose key columns are public; a helper party joins in the clear.
    PublicJoin {
        /// Join key columns of the left input.
        left_keys: Vec<String>,
        /// Join key columns of the right input.
        right_keys: Vec<String>,
        /// Party chosen to perform the cleartext join.
        helper: PartyId,
    },
    /// Hybrid MPC–cleartext aggregation using an STP (§5.3).
    HybridAggregate {
        /// Group-by key columns.
        group_by: Vec<String>,
        /// Aggregation function.
        func: AggFunc,
        /// Column aggregated over (`None` only for COUNT).
        over: Option<String>,
        /// Name of the output aggregate column.
        out: String,
        /// Selectively-trusted party performing the cleartext sort.
        stp: PartyId,
    },
}

impl Operator {
    /// Short name of the operator, used in plans and error messages.
    pub fn name(&self) -> &'static str {
        match self {
            Operator::Input { .. } => "input",
            Operator::Concat => "concat",
            Operator::Project { .. } => "project",
            Operator::Filter { .. } => "filter",
            Operator::Join { .. } => "join",
            Operator::Aggregate { .. } => "aggregate",
            Operator::Multiply { .. } => "multiply",
            Operator::Divide { .. } => "divide",
            Operator::SortBy { .. } => "sort_by",
            Operator::Limit { .. } => "limit",
            Operator::Distinct { .. } => "distinct",
            Operator::DistinctCount { .. } => "distinct_count",
            Operator::Collect { .. } => "collect",
            Operator::Shuffle => "shuffle",
            Operator::Enumerate { .. } => "enumerate",
            Operator::ObliviousSelect { .. } => "oblivious_select",
            Operator::RevealTo { .. } => "reveal_to",
            Operator::CloseTo => "close_to",
            Operator::Open { .. } => "open",
            Operator::Merge { .. } => "merge",
            Operator::HybridJoin { .. } => "hybrid_join",
            Operator::PublicJoin { .. } => "public_join",
            Operator::HybridAggregate { .. } => "hybrid_aggregate",
        }
    }

    /// Number of input relations the operator expects; `None` means "one or
    /// more" (variadic).
    pub fn arity(&self) -> Option<usize> {
        match self {
            Operator::Input { .. } => Some(0),
            Operator::Concat | Operator::Merge { .. } => None,
            Operator::Join { .. }
            | Operator::HybridJoin { .. }
            | Operator::PublicJoin { .. }
            | Operator::ObliviousSelect { .. } => Some(2),
            _ => Some(1),
        }
    }

    /// Returns `true` if this operator is a query input (DAG root).
    pub fn is_input(&self) -> bool {
        matches!(self, Operator::Input { .. })
    }

    /// Returns `true` if this operator is a query output (DAG leaf).
    pub fn is_output(&self) -> bool {
        matches!(self, Operator::Collect { .. } | Operator::Open { .. })
    }

    /// Returns `true` if this is one of the hybrid operators of §5.3.
    pub fn is_hybrid(&self) -> bool {
        matches!(
            self,
            Operator::HybridJoin { .. }
                | Operator::PublicJoin { .. }
                | Operator::HybridAggregate { .. }
        )
    }

    /// Returns `true` if the operator distributes over partitions of its
    /// input, i.e. `op(R1 | R2) == op(R1) | op(R2)` (§5.2). These operators
    /// can be pushed below a `concat` during MPC-frontier push-down.
    pub fn is_distributive(&self) -> bool {
        matches!(
            self,
            Operator::Project { .. }
                | Operator::Filter { .. }
                | Operator::Multiply { .. }
                | Operator::Divide { .. }
        )
    }

    /// Returns `true` if the operator is *reversible* in the sense of §5.2:
    /// its input can be reconstructed from its output, so it may be lifted
    /// above the MPC frontier and run in the clear at the recipient.
    pub fn is_reversible(&self) -> bool {
        match self {
            Operator::Multiply { operands, .. } => operands
                .iter()
                .all(|o| !matches!(o, Operand::Lit(Value::Int(0)))),
            Operator::Divide { .. } => true,
            Operator::Project { .. } => false, // dropping columns is not reversible
            Operator::SortBy { .. } => false,
            _ => false,
        }
    }

    /// Returns `true` if the operator preserves row order (used by the sort
    /// tracking / elimination pass of §5.4).
    pub fn preserves_order(&self) -> bool {
        matches!(
            self,
            Operator::Project { .. }
                | Operator::Filter { .. }
                | Operator::Multiply { .. }
                | Operator::Divide { .. }
                | Operator::Limit { .. }
                | Operator::Enumerate { .. }
                | Operator::RevealTo { .. }
                | Operator::CloseTo
                | Operator::Open { .. }
                | Operator::Collect { .. }
        )
    }

    /// Computes the output schema given the input schemas.
    pub fn output_schema(&self, inputs: &[Schema]) -> IrResult<Schema> {
        let need = |n: usize| -> IrResult<()> {
            if inputs.len() != n {
                Err(IrError::InvalidOperator {
                    op: self.name().to_string(),
                    detail: format!("expected {n} inputs, got {}", inputs.len()),
                })
            } else {
                Ok(())
            }
        };
        match self {
            Operator::Input { .. } => Err(IrError::InvalidOperator {
                op: "input".into(),
                detail: "input schema is stored on the DAG node".into(),
            }),
            Operator::Concat => {
                if inputs.is_empty() {
                    return Err(IrError::InvalidOperator {
                        op: "concat".into(),
                        detail: "needs at least one input".into(),
                    });
                }
                let mut schema = inputs[0].clone();
                for other in &inputs[1..] {
                    schema.union_compatible(other)?;
                    // Trust of each column is the intersection across inputs.
                    for (i, col) in schema.columns.iter_mut().enumerate() {
                        col.trust = col.trust.intersect(&other.columns[i].trust);
                    }
                }
                Ok(schema)
            }
            Operator::Project { columns } => {
                need(1)?;
                inputs[0].project(columns)
            }
            Operator::Filter { predicate } => {
                need(1)?;
                for c in predicate.referenced_columns() {
                    inputs[0].require(&c, "filter")?;
                }
                Ok(inputs[0].clone())
            }
            Operator::Join {
                left_keys,
                right_keys,
                ..
            }
            | Operator::HybridJoin {
                left_keys,
                right_keys,
                ..
            }
            | Operator::PublicJoin {
                left_keys,
                right_keys,
                ..
            } => {
                need(2)?;
                join_schema(&inputs[0], &inputs[1], left_keys, right_keys)
            }
            Operator::Aggregate {
                group_by,
                func,
                over,
                out,
            }
            | Operator::HybridAggregate {
                group_by,
                func,
                over,
                out,
                ..
            } => {
                need(1)?;
                aggregate_schema(&inputs[0], group_by, *func, over.as_deref(), out)
            }
            Operator::Multiply { out, operands } => {
                need(1)?;
                let mut schema = inputs[0].clone();
                let mut trust = TrustSet::Public;
                let mut dtype = DataType::Int;
                for o in operands {
                    if let Operand::Col(c) = o {
                        let idx = schema.require(c, "multiply")?;
                        trust = trust.intersect(&schema.columns[idx].trust);
                        if schema.columns[idx].dtype == DataType::Float {
                            dtype = DataType::Float;
                        }
                    } else if let Operand::Lit(Value::Float(_)) = o {
                        dtype = DataType::Float;
                    }
                }
                upsert_column(&mut schema, out, dtype, trust);
                Ok(schema)
            }
            Operator::Divide { out, num, den } => {
                need(1)?;
                let mut schema = inputs[0].clone();
                let mut trust = TrustSet::Public;
                for o in [num, den] {
                    if let Operand::Col(c) = o {
                        let idx = schema.require(c, "divide")?;
                        trust = trust.intersect(&schema.columns[idx].trust);
                    }
                }
                upsert_column(&mut schema, out, DataType::Float, trust);
                Ok(schema)
            }
            Operator::SortBy { column, .. } | Operator::Merge { column, .. } => {
                if inputs.is_empty() {
                    return Err(IrError::InvalidOperator {
                        op: self.name().into(),
                        detail: "needs at least one input".into(),
                    });
                }
                inputs[0].require(column, self.name())?;
                Ok(inputs[0].clone())
            }
            Operator::Limit { .. } | Operator::Shuffle | Operator::CloseTo => {
                need(1)?;
                Ok(inputs[0].clone())
            }
            Operator::Collect { .. } | Operator::Open { .. } => {
                need(1)?;
                Ok(inputs[0].clone())
            }
            Operator::Distinct { columns } => {
                need(1)?;
                inputs[0].project(columns)
            }
            Operator::DistinctCount { column, out } => {
                need(1)?;
                let idx = inputs[0].require(column, "distinct_count")?;
                let trust = inputs[0].columns[idx].trust.clone();
                Ok(Schema::new(vec![ColumnDef::with_trust(
                    out.clone(),
                    DataType::Int,
                    trust,
                )]))
            }
            Operator::Enumerate { out } => {
                need(1)?;
                let mut schema = inputs[0].clone();
                upsert_column(&mut schema, out, DataType::Int, TrustSet::Public);
                Ok(schema)
            }
            Operator::ObliviousSelect { index_column } => {
                need(2)?;
                inputs[1].require(index_column, "oblivious_select")?;
                Ok(inputs[0].clone())
            }
            Operator::RevealTo { columns, .. } => {
                need(1)?;
                match columns {
                    Some(cols) => inputs[0].project(cols),
                    None => Ok(inputs[0].clone()),
                }
            }
        }
    }

    /// For each output column, the set of input columns it depends on, as
    /// `(input_index, column_name)` pairs (§5.1: both "contributes rows" and
    /// "affects how rows are combined/filtered/reordered" dependencies).
    pub fn column_dependencies(&self, inputs: &[Schema], output: &Schema) -> IrResult<ColumnDeps> {
        let mut deps: ColumnDeps = Vec::new();
        match self {
            Operator::Input { .. } => {}
            Operator::Concat => {
                // Column i of the result depends on column i of every input.
                for (i, col) in output.columns.iter().enumerate() {
                    let mut d = Vec::new();
                    for (k, input) in inputs.iter().enumerate() {
                        d.push((k, input.columns[i].name.clone()));
                    }
                    deps.push((col.name.clone(), d));
                }
            }
            Operator::Join {
                left_keys,
                right_keys,
                ..
            }
            | Operator::HybridJoin {
                left_keys,
                right_keys,
                ..
            }
            | Operator::PublicJoin {
                left_keys,
                right_keys,
                ..
            } => {
                // Every output column depends on all join keys; additionally
                // each column depends on its source column.
                let mut key_deps: Vec<(usize, String)> = Vec::new();
                for k in left_keys {
                    key_deps.push((0, k.clone()));
                }
                for k in right_keys {
                    key_deps.push((1, k.clone()));
                }
                for col in &output.columns {
                    let mut d = key_deps.clone();
                    if inputs[0].index_of(&col.name).is_some() {
                        d.push((0, col.name.clone()));
                    } else if inputs[1].index_of(&col.name).is_some() {
                        d.push((1, col.name.clone()));
                    }
                    deps.push((col.name.clone(), d));
                }
            }
            Operator::Aggregate { group_by, over, .. }
            | Operator::HybridAggregate { group_by, over, .. } => {
                for col in &output.columns {
                    let mut d: Vec<(usize, String)> =
                        group_by.iter().map(|g| (0, g.clone())).collect();
                    if group_by.contains(&col.name) {
                        // Group-by output column: depends on itself (already
                        // included above).
                    } else {
                        // Aggregate output column additionally depends on the
                        // aggregated column.
                        if let Some(o) = over {
                            d.push((0, o.clone()));
                        }
                    }
                    d.sort();
                    d.dedup();
                    deps.push((col.name.clone(), d));
                }
            }
            Operator::Filter { predicate } => {
                let pred_cols: Vec<(usize, String)> = predicate
                    .referenced_columns()
                    .into_iter()
                    .map(|c| (0, c))
                    .collect();
                for col in &output.columns {
                    let mut d = pred_cols.clone();
                    d.push((0, col.name.clone()));
                    d.sort();
                    d.dedup();
                    deps.push((col.name.clone(), d));
                }
            }
            Operator::Multiply { out, operands } => {
                default_unary_deps(&mut deps, output, out, || {
                    operands
                        .iter()
                        .filter_map(|o| o.column_name())
                        .map(|c| (0, c.to_string()))
                        .collect()
                });
            }
            Operator::Divide { out, num, den } => {
                default_unary_deps(&mut deps, output, out, || {
                    [num, den]
                        .iter()
                        .filter_map(|o| o.column_name())
                        .map(|c| (0, c.to_string()))
                        .collect()
                });
            }
            Operator::SortBy { column, .. } | Operator::Merge { column, .. } => {
                for col in &output.columns {
                    let mut d = vec![(0, col.name.clone())];
                    if &col.name != column {
                        d.push((0, column.clone()));
                    }
                    deps.push((col.name.clone(), d));
                }
            }
            Operator::DistinctCount { column, out } => {
                deps.push((out.clone(), vec![(0, column.clone())]));
            }
            _ => {
                // Default: each output column depends on the same-named input
                // column from whichever input provides it.
                for col in &output.columns {
                    let mut d = Vec::new();
                    for (k, input) in inputs.iter().enumerate() {
                        if input.index_of(&col.name).is_some() {
                            d.push((k, col.name.clone()));
                        }
                    }
                    deps.push((col.name.clone(), d));
                }
            }
        }
        Ok(deps)
    }
}

fn default_unary_deps(
    deps: &mut ColumnDeps,
    output: &Schema,
    computed: &str,
    computed_deps: impl Fn() -> Vec<(usize, String)>,
) {
    for col in &output.columns {
        if col.name == computed {
            deps.push((col.name.clone(), computed_deps()));
        } else {
            deps.push((col.name.clone(), vec![(0, col.name.clone())]));
        }
    }
}

fn upsert_column(schema: &mut Schema, name: &str, dtype: DataType, trust: TrustSet) {
    if let Some(c) = schema.column_mut(name) {
        c.dtype = dtype;
        c.trust = trust;
    } else {
        schema
            .columns
            .push(ColumnDef::with_trust(name, dtype, trust));
    }
}

/// Output schema of an equi-join: all left columns, then right columns other
/// than the right join keys. Key columns' trust is the intersection of both
/// sides' key trust sets.
pub fn join_schema(
    left: &Schema,
    right: &Schema,
    left_keys: &[String],
    right_keys: &[String],
) -> IrResult<Schema> {
    if left_keys.len() != right_keys.len() || left_keys.is_empty() {
        return Err(IrError::InvalidOperator {
            op: "join".into(),
            detail: "key lists must be non-empty and of equal length".into(),
        });
    }
    for k in left_keys {
        left.require(k, "join(left)")?;
    }
    for k in right_keys {
        right.require(k, "join(right)")?;
    }
    let mut cols = Vec::new();
    for c in &left.columns {
        let mut col = c.clone();
        if let Some(pos) = left_keys.iter().position(|k| k == &c.name) {
            let rk = &right_keys[pos];
            let rcol = right.column(rk).expect("checked above");
            col.trust = col.trust.intersect(&rcol.trust);
        }
        cols.push(col);
    }
    for c in &right.columns {
        if right_keys.contains(&c.name) {
            continue;
        }
        let mut col = c.clone();
        if left.index_of(&c.name).is_some() {
            col.name = format!("{}_r", c.name);
        }
        cols.push(col);
    }
    Ok(Schema::new(cols))
}

/// Output schema of a grouped aggregation: the group-by columns followed by
/// the aggregate output column.
pub fn aggregate_schema(
    input: &Schema,
    group_by: &[String],
    func: AggFunc,
    over: Option<&str>,
    out: &str,
) -> IrResult<Schema> {
    if func.needs_over() && over.is_none() {
        return Err(IrError::InvalidOperator {
            op: "aggregate".into(),
            detail: format!("{func} requires an `over` column"),
        });
    }
    let mut cols = Vec::new();
    let mut trust = TrustSet::Public;
    for g in group_by {
        let idx = input.require(g, "aggregate(group_by)")?;
        cols.push(input.columns[idx].clone());
        trust = trust.intersect(&input.columns[idx].trust);
    }
    let dtype = match over {
        Some(o) => {
            let idx = input.require(o, "aggregate(over)")?;
            trust = trust.intersect(&input.columns[idx].trust);
            if func == AggFunc::Count {
                DataType::Int
            } else {
                input.columns[idx].dtype
            }
        }
        None => DataType::Int,
    };
    cols.push(ColumnDef::with_trust(out, dtype, trust));
    Ok(Schema::new(cols))
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operator::Input { name, party } => write!(f, "input({name}@P{party})"),
            Operator::Project { columns } => write!(f, "project({})", columns.join(",")),
            Operator::Filter { predicate } => write!(f, "filter({predicate})"),
            Operator::Join {
                left_keys,
                right_keys,
                ..
            } => write!(f, "join({}={})", left_keys.join(","), right_keys.join(",")),
            Operator::Aggregate {
                group_by,
                func,
                over,
                out,
            } => write!(
                f,
                "aggregate({func} {} by [{}] -> {out})",
                over.as_deref().unwrap_or("*"),
                group_by.join(",")
            ),
            Operator::HybridJoin { stp, .. } => write!(f, "hybrid_join(stp=P{stp})"),
            Operator::PublicJoin { helper, .. } => write!(f, "public_join(helper=P{helper})"),
            Operator::HybridAggregate { stp, func, .. } => {
                write!(f, "hybrid_aggregate({func}, stp=P{stp})")
            }
            Operator::Collect { recipients } => write!(f, "collect(to={recipients})"),
            Operator::Open { recipients } => write!(f, "open(to={recipients})"),
            Operator::RevealTo { party, .. } => write!(f, "reveal_to(P{party})"),
            other => write!(f, "{}", other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_col(name_a: &str, name_b: &str) -> Schema {
        Schema::ints(&[name_a, name_b])
    }

    #[test]
    fn agg_func_properties() {
        assert!(AggFunc::Sum.needs_over());
        assert!(!AggFunc::Count.needs_over());
        assert_eq!(AggFunc::Max.to_string(), "MAX");
    }

    #[test]
    fn exec_site_predicates() {
        assert!(ExecSite::Mpc.is_mpc());
        assert!(ExecSite::Local(1).is_cleartext());
        assert!(ExecSite::Stp(2).is_cleartext());
        assert!(!ExecSite::Undecided.is_cleartext());
        assert_eq!(ExecSite::Local(3).to_string(), "local@P3");
        assert_eq!(ExecSite::Stp(3).to_string(), "stp@P3");
        assert_eq!(ExecSite::Mpc.to_string(), "mpc");
        assert_eq!(ExecSite::Undecided.to_string(), "?");
    }

    #[test]
    fn concat_schema_intersects_trust() {
        let mut a = Schema::ints(&["k", "v"]);
        a.column_mut("k").unwrap().trust = TrustSet::of([1, 2]);
        let mut b = Schema::ints(&["k", "v"]);
        b.column_mut("k").unwrap().trust = TrustSet::of([2, 3]);
        let out = Operator::Concat.output_schema(&[a, b]).unwrap();
        assert!(out.column("k").unwrap().trust.trusts(2));
        assert!(!out.column("k").unwrap().trust.trusts(1));
    }

    #[test]
    fn concat_rejects_mismatched_schemas() {
        let a = Schema::ints(&["k", "v"]);
        let b = Schema::ints(&["k"]);
        assert!(Operator::Concat.output_schema(&[a, b]).is_err());
        assert!(Operator::Concat.output_schema(&[]).is_err());
    }

    #[test]
    fn project_and_filter_schemas() {
        let s = two_col("a", "b");
        let p = Operator::Project {
            columns: vec!["b".into()],
        };
        assert_eq!(
            p.output_schema(std::slice::from_ref(&s)).unwrap().names(),
            vec!["b"]
        );
        let f = Operator::Filter {
            predicate: Expr::col("a").gt(Expr::lit(0)),
        };
        assert_eq!(f.output_schema(std::slice::from_ref(&s)).unwrap().len(), 2);
        let bad = Operator::Filter {
            predicate: Expr::col("zzz").gt(Expr::lit(0)),
        };
        assert!(bad.output_schema(&[s]).is_err());
    }

    #[test]
    fn join_schema_renames_collisions_and_merges_trust() {
        let mut left = Schema::ints(&["ssn", "zip"]);
        left.column_mut("ssn").unwrap().trust = TrustSet::of([1]);
        let mut right = Schema::ints(&["ssn", "score", "zip"]);
        right.column_mut("ssn").unwrap().trust = TrustSet::of([1, 2]);
        let out = join_schema(&left, &right, &["ssn".to_string()], &["ssn".to_string()]).unwrap();
        assert_eq!(out.names(), vec!["ssn", "zip", "score", "zip_r"]);
        assert!(out.column("ssn").unwrap().trust.trusts(1));
        assert!(!out.column("ssn").unwrap().trust.trusts(2));
    }

    #[test]
    fn join_schema_validation() {
        let s = two_col("a", "b");
        assert!(join_schema(&s, &s, &[], &[]).is_err());
        assert!(join_schema(&s, &s, &["a".to_string()], &[]).is_err());
        assert!(join_schema(&s, &s, &["zzz".to_string()], &["a".to_string()]).is_err());
    }

    #[test]
    fn aggregate_schema_shapes() {
        let s = two_col("companyID", "price");
        let out = aggregate_schema(
            &s,
            &["companyID".to_string()],
            AggFunc::Sum,
            Some("price"),
            "rev",
        )
        .unwrap();
        assert_eq!(out.names(), vec!["companyID", "rev"]);
        // Scalar aggregate.
        let out = aggregate_schema(&s, &[], AggFunc::Sum, Some("price"), "total").unwrap();
        assert_eq!(out.names(), vec!["total"]);
        // COUNT does not need `over`.
        let out =
            aggregate_schema(&s, &["companyID".to_string()], AggFunc::Count, None, "n").unwrap();
        assert_eq!(out.column("n").unwrap().dtype, DataType::Int);
        // SUM without `over` is invalid.
        assert!(aggregate_schema(&s, &[], AggFunc::Sum, None, "x").is_err());
    }

    #[test]
    fn multiply_divide_schema() {
        let s = two_col("m_share", "other");
        let m = Operator::Multiply {
            out: "ms_squared".into(),
            operands: vec![Operand::col("m_share"), Operand::col("m_share")],
        };
        let out = m.output_schema(std::slice::from_ref(&s)).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.column("ms_squared").unwrap().dtype, DataType::Int);

        let d = Operator::Divide {
            out: "avg".into(),
            num: Operand::col("m_share"),
            den: Operand::lit(2),
        };
        let out = d.output_schema(std::slice::from_ref(&s)).unwrap();
        assert_eq!(out.column("avg").unwrap().dtype, DataType::Float);

        let bad = Operator::Multiply {
            out: "x".into(),
            operands: vec![Operand::col("nope")],
        };
        assert!(bad.output_schema(&[s]).is_err());
    }

    #[test]
    fn distinct_count_and_enumerate_schema() {
        let s = two_col("pid", "diag");
        let dc = Operator::DistinctCount {
            column: "pid".into(),
            out: "n".into(),
        };
        assert_eq!(
            dc.output_schema(std::slice::from_ref(&s)).unwrap().names(),
            vec!["n"]
        );
        let e = Operator::Enumerate { out: "idx".into() };
        assert_eq!(
            e.output_schema(std::slice::from_ref(&s)).unwrap().names(),
            vec!["pid", "diag", "idx"]
        );
        let sel = Operator::ObliviousSelect {
            index_column: "idx".into(),
        };
        let idx_schema = Schema::ints(&["idx"]);
        assert_eq!(
            sel.output_schema(&[s.clone(), idx_schema]).unwrap().names(),
            vec!["pid", "diag"]
        );
        assert!(sel.output_schema(&[s.clone(), s]).is_err());
    }

    #[test]
    fn reveal_and_collect_schema() {
        let s = two_col("a", "b");
        let r = Operator::RevealTo {
            party: 1,
            columns: Some(vec!["a".into()]),
        };
        assert_eq!(
            r.output_schema(std::slice::from_ref(&s)).unwrap().names(),
            vec!["a"]
        );
        let r_all = Operator::RevealTo {
            party: 1,
            columns: None,
        };
        assert_eq!(
            r_all.output_schema(std::slice::from_ref(&s)).unwrap().len(),
            2
        );
        let c = Operator::Collect {
            recipients: PartySet::singleton(1),
        };
        assert_eq!(c.output_schema(&[s]).unwrap().len(), 2);
    }

    #[test]
    fn operator_classification() {
        assert!(Operator::Input {
            name: "t".into(),
            party: 1
        }
        .is_input());
        assert!(Operator::Collect {
            recipients: PartySet::singleton(1)
        }
        .is_output());
        assert!(Operator::HybridJoin {
            left_keys: vec!["k".into()],
            right_keys: vec!["k".into()],
            stp: 1
        }
        .is_hybrid());
        assert!(Operator::Project {
            columns: vec!["a".into()]
        }
        .is_distributive());
        assert!(!Operator::Concat.is_distributive());
        assert!(Operator::Divide {
            out: "x".into(),
            num: Operand::col("a"),
            den: Operand::col("b")
        }
        .is_reversible());
        assert!(!Operator::Shuffle.preserves_order());
        assert!(Operator::Filter {
            predicate: Expr::col("a").gt(Expr::lit(0))
        }
        .preserves_order());
        assert_eq!(Operator::Concat.arity(), None);
        assert_eq!(
            Operator::Join {
                left_keys: vec!["a".into()],
                right_keys: vec!["a".into()],
                kind: JoinKind::Inner
            }
            .arity(),
            Some(2)
        );
    }

    #[test]
    fn multiply_by_zero_literal_is_not_reversible() {
        let op = Operator::Multiply {
            out: "x".into(),
            operands: vec![Operand::col("a"), Operand::lit(0)],
        };
        assert!(!op.is_reversible());
        let op = Operator::Multiply {
            out: "x".into(),
            operands: vec![Operand::col("a"), Operand::lit(3)],
        };
        assert!(op.is_reversible());
    }

    #[test]
    fn column_dependencies_concat() {
        let a = Schema::ints(&["k", "v"]);
        let b = Schema::ints(&["k2", "v2"]);
        let out = Operator::Concat
            .output_schema(&[a.clone(), a.clone()])
            .unwrap();
        let deps = Operator::Concat
            .column_dependencies(&[a.clone(), b], &out)
            .unwrap();
        assert_eq!(deps[0].0, "k");
        assert_eq!(deps[0].1, vec![(0, "k".to_string()), (1, "k2".to_string())]);
    }

    #[test]
    fn column_dependencies_join_include_keys() {
        let left = Schema::ints(&["ssn", "zip"]);
        let right = Schema::ints(&["ssn", "score"]);
        let op = Operator::Join {
            left_keys: vec!["ssn".into()],
            right_keys: vec!["ssn".into()],
            kind: JoinKind::Inner,
        };
        let out = op.output_schema(&[left.clone(), right.clone()]).unwrap();
        let deps = op.column_dependencies(&[left, right], &out).unwrap();
        let score_deps = &deps.iter().find(|(n, _)| n == "score").unwrap().1;
        assert!(score_deps.contains(&(0, "ssn".to_string())));
        assert!(score_deps.contains(&(1, "ssn".to_string())));
        assert!(score_deps.contains(&(1, "score".to_string())));
    }

    #[test]
    fn column_dependencies_aggregate() {
        let s = Schema::ints(&["zip", "score"]);
        let op = Operator::Aggregate {
            group_by: vec!["zip".into()],
            func: AggFunc::Sum,
            over: Some("score".into()),
            out: "total".into(),
        };
        let out = op.output_schema(std::slice::from_ref(&s)).unwrap();
        let deps = op.column_dependencies(&[s], &out).unwrap();
        let total = &deps.iter().find(|(n, _)| n == "total").unwrap().1;
        assert!(total.contains(&(0, "zip".to_string())));
        assert!(total.contains(&(0, "score".to_string())));
        let zip = &deps.iter().find(|(n, _)| n == "zip").unwrap().1;
        assert_eq!(zip, &vec![(0, "zip".to_string())]);
    }

    #[test]
    fn column_dependencies_filter_includes_predicate_cols() {
        let s = Schema::ints(&["a", "b"]);
        let op = Operator::Filter {
            predicate: Expr::col("b").gt(Expr::lit(0)),
        };
        let out = op.output_schema(std::slice::from_ref(&s)).unwrap();
        let deps = op.column_dependencies(&[s], &out).unwrap();
        let a_deps = &deps.iter().find(|(n, _)| n == "a").unwrap().1;
        assert!(a_deps.contains(&(0, "b".to_string())));
    }

    #[test]
    fn display_forms() {
        let j = Operator::Join {
            left_keys: vec!["ssn".into()],
            right_keys: vec!["ssn".into()],
            kind: JoinKind::Inner,
        };
        assert_eq!(j.to_string(), "join(ssn=ssn)");
        assert!(Operator::Shuffle.to_string().contains("shuffle"));
        let h = Operator::HybridAggregate {
            group_by: vec!["zip".into()],
            func: AggFunc::Sum,
            over: Some("score".into()),
            out: "t".into(),
            stp: 1,
        };
        assert!(h.to_string().contains("stp=P1"));
    }
}
