//! Relation schemas: named, typed columns with trust annotations.

use crate::error::{IrError, IrResult};
use crate::trust::TrustSet;
use crate::types::DataType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Definition of one column in a relation schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name, unique within its schema.
    pub name: String,
    /// Static type of the column's values.
    pub dtype: DataType,
    /// Parties trusted to see this column in the clear (§4.3).
    pub trust: TrustSet,
}

impl ColumnDef {
    /// Creates a private column (empty trust set).
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            dtype,
            trust: TrustSet::private(),
        }
    }

    /// Creates a column with an explicit trust set.
    pub fn with_trust(name: impl Into<String>, dtype: DataType, trust: TrustSet) -> Self {
        ColumnDef {
            name: name.into(),
            dtype,
            trust,
        }
    }

    /// Creates a public column (every party may learn its values).
    pub fn public(name: impl Into<String>, dtype: DataType) -> Self {
        Self::with_trust(name, dtype, TrustSet::Public)
    }

    /// Returns a copy renamed to `name`.
    pub fn renamed(&self, name: impl Into<String>) -> Self {
        ColumnDef {
            name: name.into(),
            dtype: self.dtype,
            trust: self.trust.clone(),
        }
    }
}

/// An ordered list of column definitions.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    /// Columns in relation order.
    pub columns: Vec<ColumnDef>,
}

impl Schema {
    /// Creates a schema from a list of columns.
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        Schema { columns }
    }

    /// Convenience constructor: all-integer private columns with the given names.
    pub fn ints(names: &[&str]) -> Self {
        Schema {
            columns: names
                .iter()
                .map(|n| ColumnDef::new(*n, DataType::Int))
                .collect(),
        }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Returns `true` if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Index of the column with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Like [`Schema::index_of`] but returns an [`IrError::UnknownColumn`].
    pub fn require(&self, name: &str, context: &str) -> IrResult<usize> {
        self.index_of(name).ok_or_else(|| IrError::UnknownColumn {
            column: name.to_string(),
            context: context.to_string(),
        })
    }

    /// The column definition with the given name.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.index_of(name).map(|i| &self.columns[i])
    }

    /// Mutable access to a column definition by name.
    pub fn column_mut(&mut self, name: &str) -> Option<&mut ColumnDef> {
        let idx = self.index_of(name)?;
        Some(&mut self.columns[idx])
    }

    /// Returns `true` if all column names are distinct.
    pub fn names_unique(&self) -> bool {
        let mut names: Vec<&str> = self.names();
        names.sort_unstable();
        names.windows(2).all(|w| w[0] != w[1])
    }

    /// Checks that two schemas are union-compatible: same arity and same
    /// column types position-wise (names may differ; the left names win).
    pub fn union_compatible(&self, other: &Schema) -> IrResult<()> {
        if self.len() != other.len() {
            return Err(IrError::SchemaMismatch {
                detail: format!("arity {} vs {}", self.len(), other.len()),
            });
        }
        for (a, b) in self.columns.iter().zip(&other.columns) {
            if a.dtype != b.dtype {
                return Err(IrError::SchemaMismatch {
                    detail: format!(
                        "column `{}`: {} vs `{}`: {}",
                        a.name, a.dtype, b.name, b.dtype
                    ),
                });
            }
        }
        Ok(())
    }

    /// Projects the schema onto the named columns, in the given order.
    pub fn project(&self, names: &[String]) -> IrResult<Schema> {
        let mut cols = Vec::with_capacity(names.len());
        for n in names {
            let idx = self.require(n, "project")?;
            cols.push(self.columns[idx].clone());
        }
        Ok(Schema::new(cols))
    }

    /// Appends a column, returning an error if the name already exists.
    pub fn push(&mut self, col: ColumnDef) -> IrResult<()> {
        if self.index_of(&col.name).is_some() {
            return Err(IrError::SchemaMismatch {
                detail: format!("duplicate column `{}`", col.name),
            });
        }
        self.columns.push(col);
        Ok(())
    }

    /// Approximate size in bytes of one row with this schema (used by cost
    /// models; strings are assumed to average 16 bytes).
    pub fn row_byte_size(&self) -> usize {
        self.columns
            .iter()
            .map(|c| match c.dtype {
                DataType::Int | DataType::Float => 8,
                DataType::Bool => 1,
                DataType::Str => 16,
            })
            .sum()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}:{} [{}]", c.name, c.dtype, c.trust)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trust::TrustSet;

    fn demo_schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("ssn", DataType::Int),
            ColumnDef::with_trust("zip", DataType::Int, TrustSet::of([1])),
            ColumnDef::public("id", DataType::Int),
        ])
    }

    #[test]
    fn lookup_and_names() {
        let s = demo_schema();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.names(), vec!["ssn", "zip", "id"]);
        assert_eq!(s.index_of("zip"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert!(s.require("ssn", "test").is_ok());
        assert!(matches!(
            s.require("missing", "test"),
            Err(IrError::UnknownColumn { .. })
        ));
        assert_eq!(s.column("id").unwrap().dtype, DataType::Int);
        assert!(s.names_unique());
    }

    #[test]
    fn ints_constructor() {
        let s = Schema::ints(&["a", "b"]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.columns[0].dtype, DataType::Int);
        assert!(!s.columns[0].trust.is_public());
    }

    #[test]
    fn union_compatibility() {
        let a = Schema::ints(&["x", "y"]);
        let b = Schema::ints(&["u", "v"]);
        assert!(a.union_compatible(&b).is_ok());
        let c = Schema::ints(&["x"]);
        assert!(a.union_compatible(&c).is_err());
        let d = Schema::new(vec![
            ColumnDef::new("x", DataType::Int),
            ColumnDef::new("y", DataType::Str),
        ]);
        assert!(a.union_compatible(&d).is_err());
    }

    #[test]
    fn project_and_push() {
        let s = demo_schema();
        let p = s.project(&["id".to_string(), "ssn".to_string()]).unwrap();
        assert_eq!(p.names(), vec!["id", "ssn"]);
        assert!(s.project(&["nope".to_string()]).is_err());

        let mut s2 = demo_schema();
        assert!(s2.push(ColumnDef::new("new", DataType::Float)).is_ok());
        assert!(s2.push(ColumnDef::new("ssn", DataType::Int)).is_err());
    }

    #[test]
    fn row_size_and_display() {
        let s = Schema::new(vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("b", DataType::Bool),
            ColumnDef::new("c", DataType::Str),
        ]);
        assert_eq!(s.row_byte_size(), 8 + 1 + 16);
        let shown = demo_schema().to_string();
        assert!(shown.contains("ssn:INT"));
        assert!(shown.contains("public"));
    }

    #[test]
    fn renamed_and_mut() {
        let c = ColumnDef::public("a", DataType::Int).renamed("b");
        assert_eq!(c.name, "b");
        assert!(c.trust.is_public());
        let mut s = demo_schema();
        s.column_mut("ssn").unwrap().trust.add(2);
        assert!(s.column("ssn").unwrap().trust.trusts(2));
        assert!(s.column_mut("nope").is_none());
    }
}
