//! Scalar expressions used by filters and computed projections.

use crate::error::{IrError, IrResult};
use crate::schema::Schema;
use crate::types::{DataType, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Binary operators on scalar values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (always produces a float).
    Div,
    /// Equality comparison.
    Eq,
    /// Inequality comparison.
    Ne,
    /// Less-than comparison.
    Lt,
    /// Less-or-equal comparison.
    Le,
    /// Greater-than comparison.
    Gt,
    /// Greater-or-equal comparison.
    Ge,
    /// Logical and.
    And,
    /// Logical or.
    Or,
}

impl BinOp {
    /// Returns `true` for comparison or logical operators (boolean result).
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or
        )
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        f.write_str(s)
    }
}

/// A scalar expression over the columns of a single relation row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Reference to a column by name.
    Col(String),
    /// A literal constant.
    Const(Value),
    /// A binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical negation of a boolean expression.
    Not(Box<Expr>),
}

impl Expr {
    /// Column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    /// Literal constant.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Const(v.into())
    }

    /// Builds a binary expression.
    pub fn bin(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Bin {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// `self == other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Eq, self, other)
    }

    /// `self != other`.
    pub fn ne(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Ne, self, other)
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Gt, self, other)
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Ge, self, other)
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Lt, self, other)
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Le, self, other)
    }

    /// `self && other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::bin(BinOp::And, self, other)
    }

    /// `self || other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Or, self, other)
    }

    // The arithmetic names below intentionally shadow the std operator trait
    // methods: they are fluent builder methods producing `Expr` nodes, and the
    // query-building code reads better as `col.add(other)` chains.
    /// `self + other`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Add, self, other)
    }

    /// `self - other`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Sub, self, other)
    }

    /// `self * other`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Mul, self, other)
    }

    /// `self / other`.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Div, self, other)
    }

    /// Logical negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Names of all columns referenced by this expression.
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Col(name) => out.push(name.clone()),
            Expr::Const(_) => {}
            Expr::Bin { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Not(inner) => inner.collect_columns(out),
        }
    }

    /// Statically infers the result type of this expression against a schema.
    pub fn infer_type(&self, schema: &Schema) -> IrResult<DataType> {
        match self {
            Expr::Col(name) => {
                schema
                    .column(name)
                    .map(|c| c.dtype)
                    .ok_or_else(|| IrError::UnknownColumn {
                        column: name.clone(),
                        context: "expression".into(),
                    })
            }
            Expr::Const(v) => v
                .data_type()
                .ok_or_else(|| IrError::TypeError("NULL literal has no type".into())),
            Expr::Bin { op, left, right } => {
                let lt = left.infer_type(schema)?;
                let rt = right.infer_type(schema)?;
                if op.is_predicate() {
                    Ok(DataType::Bool)
                } else if *op == BinOp::Div || lt == DataType::Float || rt == DataType::Float {
                    // Division always produces a float (averages, shares).
                    Ok(DataType::Float)
                } else if lt == DataType::Int && rt == DataType::Int {
                    Ok(DataType::Int)
                } else {
                    Err(IrError::TypeError(format!(
                        "cannot apply {op} to {lt} and {rt}"
                    )))
                }
            }
            Expr::Not(inner) => {
                let t = inner.infer_type(schema)?;
                if t == DataType::Bool {
                    Ok(DataType::Bool)
                } else {
                    Err(IrError::TypeError(format!("cannot negate {t}")))
                }
            }
        }
    }

    /// Evaluates the expression against a row described by `schema`.
    pub fn eval(&self, schema: &Schema, row: &[Value]) -> IrResult<Value> {
        match self {
            Expr::Col(name) => {
                let idx = schema.require(name, "expression")?;
                Ok(row[idx].clone())
            }
            Expr::Const(v) => Ok(v.clone()),
            Expr::Bin { op, left, right } => {
                let l = left.eval(schema, row)?;
                let r = right.eval(schema, row)?;
                Ok(apply_binop(*op, &l, &r))
            }
            Expr::Not(inner) => {
                let v = inner.eval(schema, row)?;
                Ok(match v.as_bool() {
                    Some(b) => Value::Bool(!b),
                    None => Value::Null,
                })
            }
        }
    }

    /// Rough count of arithmetic/comparison operations in the expression,
    /// used by MPC cost models (each non-linear op costs communication).
    pub fn op_count(&self) -> usize {
        match self {
            Expr::Col(_) | Expr::Const(_) => 0,
            Expr::Bin { left, right, .. } => 1 + left.op_count() + right.op_count(),
            Expr::Not(inner) => 1 + inner.op_count(),
        }
    }
}

/// Applies a binary operator to two runtime values.
pub fn apply_binop(op: BinOp, l: &Value, r: &Value) -> Value {
    match op {
        BinOp::Add => l.add(r),
        BinOp::Sub => l.sub(r),
        BinOp::Mul => l.mul(r),
        BinOp::Div => l.div(r),
        BinOp::Eq => Value::Bool(l == r),
        BinOp::Ne => Value::Bool(l != r),
        BinOp::Lt => Value::Bool(l < r),
        BinOp::Le => Value::Bool(l <= r),
        BinOp::Gt => Value::Bool(l > r),
        BinOp::Ge => Value::Bool(l >= r),
        BinOp::And => match (l.as_bool(), r.as_bool()) {
            (Some(a), Some(b)) => Value::Bool(a && b),
            _ => Value::Null,
        },
        BinOp::Or => match (l.as_bool(), r.as_bool()) {
            (Some(a), Some(b)) => Value::Bool(a || b),
            _ => Value::Null,
        },
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(name) => write!(f, "{name}"),
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Bin { op, left, right } => write!(f, "({left} {op} {right})"),
            Expr::Not(inner) => write!(f, "!({inner})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("b", DataType::Int),
            ColumnDef::new("s", DataType::Str),
        ])
    }

    #[test]
    fn referenced_columns_dedup() {
        let e = Expr::col("a").add(Expr::col("b")).mul(Expr::col("a"));
        assert_eq!(e.referenced_columns(), vec!["a".to_string(), "b".into()]);
    }

    #[test]
    fn eval_arithmetic_and_compare() {
        let s = schema();
        let row = vec![Value::Int(6), Value::Int(4), Value::Str("x".into())];
        let e = Expr::col("a").add(Expr::col("b"));
        assert_eq!(e.eval(&s, &row).unwrap(), Value::Int(10));
        let e = Expr::col("a").div(Expr::col("b"));
        assert_eq!(e.eval(&s, &row).unwrap(), Value::Float(1.5));
        let e = Expr::col("a").gt(Expr::lit(5));
        assert_eq!(e.eval(&s, &row).unwrap(), Value::Bool(true));
        let e = Expr::col("a")
            .lt(Expr::lit(5))
            .or(Expr::col("b").eq(Expr::lit(4)));
        assert_eq!(e.eval(&s, &row).unwrap(), Value::Bool(true));
        let e = Expr::col("a")
            .ge(Expr::lit(6))
            .and(Expr::col("b").le(Expr::lit(3)));
        assert_eq!(e.eval(&s, &row).unwrap(), Value::Bool(false));
        let e = Expr::col("a").ne(Expr::lit(6)).not();
        assert_eq!(e.eval(&s, &row).unwrap(), Value::Bool(true));
        let e = Expr::col("a").sub(Expr::lit(1));
        assert_eq!(e.eval(&s, &row).unwrap(), Value::Int(5));
    }

    #[test]
    fn eval_unknown_column_errors() {
        let s = schema();
        let row = vec![Value::Int(1), Value::Int(2), Value::Str("x".into())];
        assert!(Expr::col("zzz").eval(&s, &row).is_err());
    }

    #[test]
    fn type_inference() {
        let s = schema();
        assert_eq!(Expr::col("a").infer_type(&s).unwrap(), DataType::Int);
        assert_eq!(
            Expr::col("a").add(Expr::col("b")).infer_type(&s).unwrap(),
            DataType::Int
        );
        assert_eq!(
            Expr::col("a").div(Expr::col("b")).infer_type(&s).unwrap(),
            DataType::Float
        );
        assert_eq!(
            Expr::col("a").gt(Expr::lit(1)).infer_type(&s).unwrap(),
            DataType::Bool
        );
        assert_eq!(
            Expr::lit(1.5).mul(Expr::col("a")).infer_type(&s).unwrap(),
            DataType::Float
        );
        assert!(Expr::col("s").add(Expr::col("a")).infer_type(&s).is_err());
        assert!(Expr::col("a").not().infer_type(&s).is_err());
        assert!(Expr::col("missing").infer_type(&s).is_err());
        assert!(Expr::Const(Value::Null).infer_type(&s).is_err());
    }

    #[test]
    fn op_count_counts_nonlinear_ops() {
        let e = Expr::col("a")
            .add(Expr::col("b"))
            .mul(Expr::lit(2))
            .gt(Expr::lit(100));
        assert_eq!(e.op_count(), 3);
        assert_eq!(Expr::col("a").op_count(), 0);
        assert_eq!(Expr::col("a").eq(Expr::lit(1)).not().op_count(), 2);
    }

    #[test]
    fn display_round_trip_like() {
        let e = Expr::col("a").add(Expr::lit(1)).gt(Expr::col("b"));
        assert_eq!(e.to_string(), "((a + 1) > b)");
        assert_eq!(BinOp::And.to_string(), "&&");
    }

    #[test]
    fn binop_predicate_classification() {
        assert!(BinOp::Eq.is_predicate());
        assert!(BinOp::Or.is_predicate());
        assert!(!BinOp::Add.is_predicate());
        assert!(!BinOp::Div.is_predicate());
    }
}
