//! Scalar expressions used by filters and computed projections.

use crate::error::{IrError, IrResult};
use crate::schema::Schema;
use crate::types::{DataType, Value};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::fmt;

/// Binary operators on scalar values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (always produces a float).
    Div,
    /// Equality comparison.
    Eq,
    /// Inequality comparison.
    Ne,
    /// Less-than comparison.
    Lt,
    /// Less-or-equal comparison.
    Le,
    /// Greater-than comparison.
    Gt,
    /// Greater-or-equal comparison.
    Ge,
    /// Logical and.
    And,
    /// Logical or.
    Or,
}

impl BinOp {
    /// Returns `true` for comparison or logical operators (boolean result).
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or
        )
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        f.write_str(s)
    }
}

/// A scalar expression over the columns of a single relation row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Reference to a column by name.
    Col(String),
    /// A literal constant.
    Const(Value),
    /// A binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical negation of a boolean expression.
    Not(Box<Expr>),
}

impl Expr {
    /// Column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    /// Literal constant.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Const(v.into())
    }

    /// Builds a binary expression.
    pub fn bin(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Bin {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// `self == other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Eq, self, other)
    }

    /// `self != other`.
    pub fn ne(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Ne, self, other)
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Gt, self, other)
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Ge, self, other)
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Lt, self, other)
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Le, self, other)
    }

    /// `self && other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::bin(BinOp::And, self, other)
    }

    /// `self || other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Or, self, other)
    }

    // The arithmetic names below intentionally shadow the std operator trait
    // methods: they are fluent builder methods producing `Expr` nodes, and the
    // query-building code reads better as `col.add(other)` chains.
    /// `self + other`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Add, self, other)
    }

    /// `self - other`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Sub, self, other)
    }

    /// `self * other`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Mul, self, other)
    }

    /// `self / other`.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Div, self, other)
    }

    /// Logical negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Names of all columns referenced by this expression.
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Col(name) => out.push(name.clone()),
            Expr::Const(_) => {}
            Expr::Bin { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Not(inner) => inner.collect_columns(out),
        }
    }

    /// Statically infers the result type of this expression against a schema.
    pub fn infer_type(&self, schema: &Schema) -> IrResult<DataType> {
        match self {
            Expr::Col(name) => {
                schema
                    .column(name)
                    .map(|c| c.dtype)
                    .ok_or_else(|| IrError::UnknownColumn {
                        column: name.clone(),
                        context: "expression".into(),
                    })
            }
            Expr::Const(v) => v
                .data_type()
                .ok_or_else(|| IrError::TypeError("NULL literal has no type".into())),
            Expr::Bin { op, left, right } => {
                let lt = left.infer_type(schema)?;
                let rt = right.infer_type(schema)?;
                if op.is_predicate() {
                    Ok(DataType::Bool)
                } else if *op == BinOp::Div || lt == DataType::Float || rt == DataType::Float {
                    // Division always produces a float (averages, shares).
                    Ok(DataType::Float)
                } else if lt == DataType::Int && rt == DataType::Int {
                    Ok(DataType::Int)
                } else {
                    Err(IrError::TypeError(format!(
                        "cannot apply {op} to {lt} and {rt}"
                    )))
                }
            }
            Expr::Not(inner) => {
                let t = inner.infer_type(schema)?;
                if t == DataType::Bool {
                    Ok(DataType::Bool)
                } else {
                    Err(IrError::TypeError(format!("cannot negate {t}")))
                }
            }
        }
    }

    /// Evaluates the expression against a row described by `schema`.
    pub fn eval(&self, schema: &Schema, row: &[Value]) -> IrResult<Value> {
        match self {
            Expr::Col(name) => {
                let idx = schema.require(name, "expression")?;
                Ok(row[idx].clone())
            }
            Expr::Const(v) => Ok(v.clone()),
            Expr::Bin { op, left, right } => {
                let l = left.eval(schema, row)?;
                let r = right.eval(schema, row)?;
                Ok(apply_binop(*op, &l, &r))
            }
            Expr::Not(inner) => {
                let v = inner.eval(schema, row)?;
                Ok(match v.as_bool() {
                    Some(b) => Value::Bool(!b),
                    None => Value::Null,
                })
            }
        }
    }

    /// Rough count of arithmetic/comparison operations in the expression,
    /// used by MPC cost models (each non-linear op costs communication).
    pub fn op_count(&self) -> usize {
        match self {
            Expr::Col(_) | Expr::Const(_) => 0,
            Expr::Bin { left, right, .. } => 1 + left.op_count() + right.op_count(),
            Expr::Not(inner) => 1 + inner.op_count(),
        }
    }
}

// ---------------------------------------------------------------------------
// Vectorized (batch) evaluation.
//
// The columnar engine in `conclave-engine` evaluates expressions one column
// at a time instead of one row at a time. The scalar semantics above remain
// the specification: every fast path below must produce exactly the values
// `Expr::eval` would produce row by row (the differential test suite checks
// this), so the typed loops only engage when coercion rules cannot differ.
// ---------------------------------------------------------------------------

/// A borrowed, typed view of one stored column, handed to [`Expr::eval_batch`]
/// by a [`ColumnSource`].
#[derive(Debug, Clone, Copy)]
pub enum BatchRef<'a> {
    /// 64-bit integers.
    Int(&'a [i64]),
    /// 64-bit floats.
    Float(&'a [f64]),
    /// Booleans.
    Bool(&'a [bool]),
    /// UTF-8 strings.
    Str(&'a [String]),
    /// Heterogeneous values (the lossless fallback representation).
    Mixed(&'a [Value]),
}

/// A provider of column batches: implemented by columnar relation storage so
/// expressions can be evaluated without materializing rows.
pub trait ColumnSource {
    /// Number of rows in every column.
    fn batch_rows(&self) -> usize;
    /// The typed data of the column at `col` (schema index).
    fn batch(&self, col: usize) -> BatchRef<'_>;
    /// Validity mask of the column at `col`: `Some(mask)` where `mask[i]`
    /// is `true` marks a NULL at row `i`; `None` means no nulls.
    fn batch_nulls(&self, col: usize) -> Option<&[bool]>;
}

/// The result of vectorized expression evaluation: one value per input row.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueBatch {
    /// All-integer result.
    Int(Vec<i64>),
    /// All-float result.
    Float(Vec<f64>),
    /// All-boolean result.
    Bool(Vec<bool>),
    /// Generic per-row values (mixed types and/or nulls).
    Values(Vec<Value>),
    /// A constant broadcast over the given number of rows.
    Splat(Value, usize),
}

impl ValueBatch {
    /// Number of rows the batch covers.
    pub fn len(&self) -> usize {
        match self {
            ValueBatch::Int(v) => v.len(),
            ValueBatch::Float(v) => v.len(),
            ValueBatch::Bool(v) => v.len(),
            ValueBatch::Values(v) => v.len(),
            ValueBatch::Splat(_, n) => *n,
        }
    }

    /// Returns `true` if the batch covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at row `i` (cloned).
    pub fn value(&self, i: usize) -> Value {
        match self {
            ValueBatch::Int(v) => Value::Int(v[i]),
            ValueBatch::Float(v) => Value::Float(v[i]),
            ValueBatch::Bool(v) => Value::Bool(v[i]),
            ValueBatch::Values(v) => v[i].clone(),
            ValueBatch::Splat(v, _) => v.clone(),
        }
    }

    /// Materializes the batch as one `Value` per row.
    pub fn into_values(self) -> Vec<Value> {
        match self {
            ValueBatch::Int(v) => v.into_iter().map(Value::Int).collect(),
            ValueBatch::Float(v) => v.into_iter().map(Value::Float).collect(),
            ValueBatch::Bool(v) => v.into_iter().map(Value::Bool).collect(),
            ValueBatch::Values(v) => v,
            ValueBatch::Splat(v, n) => vec![v; n],
        }
    }

    /// Interprets the batch as a selection mask, with exactly the semantics
    /// the row engine's filter uses: `value.as_bool().unwrap_or(false)`.
    pub fn to_mask(&self) -> Vec<bool> {
        match self {
            ValueBatch::Bool(v) => v.clone(),
            ValueBatch::Int(v) => v.iter().map(|x| *x != 0).collect(),
            ValueBatch::Float(v) => v.iter().map(|x| *x != 0.0).collect(),
            ValueBatch::Values(v) => v.iter().map(|x| x.as_bool().unwrap_or(false)).collect(),
            ValueBatch::Splat(v, n) => vec![v.as_bool().unwrap_or(false); *n],
        }
    }
}

/// Borrowed integer operand: a slice or a broadcast constant.
#[derive(Clone, Copy)]
enum IntView<'a> {
    Slice(&'a [i64]),
    Splat(i64),
}

impl IntView<'_> {
    #[inline]
    fn get(&self, i: usize) -> i64 {
        match self {
            IntView::Slice(v) => v[i],
            IntView::Splat(k) => *k,
        }
    }
}

/// Borrowed float operand: a slice (possibly int-sourced) or a constant.
#[derive(Clone, Copy)]
enum FloatView<'a> {
    Floats(&'a [f64]),
    Ints(&'a [i64]),
    Splat(f64),
}

impl FloatView<'_> {
    #[inline]
    fn get(&self, i: usize) -> f64 {
        match self {
            FloatView::Floats(v) => v[i],
            FloatView::Ints(v) => v[i] as f64,
            FloatView::Splat(k) => *k,
        }
    }
}

/// Borrowed boolean operand.
#[derive(Clone, Copy)]
enum BoolView<'a> {
    Slice(&'a [bool]),
    Splat(bool),
}

impl BoolView<'_> {
    #[inline]
    fn get(&self, i: usize) -> bool {
        match self {
            BoolView::Slice(v) => v[i],
            BoolView::Splat(k) => *k,
        }
    }
}

/// Views a batch as genuinely-integer operands (`Value::Int` semantics only:
/// booleans and floats follow different coercion rules and are excluded).
fn int_view(b: &ValueBatch) -> Option<IntView<'_>> {
    match b {
        ValueBatch::Int(v) => Some(IntView::Slice(v)),
        ValueBatch::Splat(Value::Int(k), _) => Some(IntView::Splat(*k)),
        _ => None,
    }
}

/// Views a batch as numeric operands for the int/float coercion path. Bools
/// are excluded: `Value`'s comparison order does not coerce them to numbers.
fn float_view(b: &ValueBatch) -> Option<FloatView<'_>> {
    match b {
        ValueBatch::Int(v) => Some(FloatView::Ints(v)),
        ValueBatch::Float(v) => Some(FloatView::Floats(v)),
        ValueBatch::Splat(Value::Int(k), _) => Some(FloatView::Splat(*k as f64)),
        ValueBatch::Splat(Value::Float(k), _) => Some(FloatView::Splat(*k)),
        _ => None,
    }
}

fn bool_view(b: &ValueBatch) -> Option<BoolView<'_>> {
    match b {
        ValueBatch::Bool(v) => Some(BoolView::Slice(v)),
        ValueBatch::Splat(Value::Bool(k), _) => Some(BoolView::Splat(*k)),
        _ => None,
    }
}

/// Applies a binary operator over two batches, using tight typed loops where
/// the scalar coercion rules permit and falling back to per-row [`Value`]
/// semantics otherwise.
pub fn apply_binop_batch(op: BinOp, l: &ValueBatch, r: &ValueBatch) -> ValueBatch {
    let n = l.len().max(r.len());
    // Pure-integer fast path (matches `numeric_binop`'s `(Int, Int)` arm and
    // the integer comparison arms of `Value::cmp`).
    if let (Some(a), Some(b)) = (int_view(l), int_view(r)) {
        return match op {
            BinOp::Add => {
                ValueBatch::Int((0..n).map(|i| a.get(i).wrapping_add(b.get(i))).collect())
            }
            BinOp::Sub => {
                ValueBatch::Int((0..n).map(|i| a.get(i).wrapping_sub(b.get(i))).collect())
            }
            BinOp::Mul => {
                ValueBatch::Int((0..n).map(|i| a.get(i).wrapping_mul(b.get(i))).collect())
            }
            BinOp::Div => div_batch(
                // Both operands have int views, and every int batch also has
                // a float view, so these cannot fail.
                FloatViewPair(
                    float_view(l).expect("int batches have float views"),
                    float_view(r).expect("int batches have float views"),
                ),
                n,
            ),
            BinOp::Eq => ValueBatch::Bool((0..n).map(|i| a.get(i) == b.get(i)).collect()),
            BinOp::Ne => ValueBatch::Bool((0..n).map(|i| a.get(i) != b.get(i)).collect()),
            BinOp::Lt => ValueBatch::Bool((0..n).map(|i| a.get(i) < b.get(i)).collect()),
            BinOp::Le => ValueBatch::Bool((0..n).map(|i| a.get(i) <= b.get(i)).collect()),
            BinOp::Gt => ValueBatch::Bool((0..n).map(|i| a.get(i) > b.get(i)).collect()),
            BinOp::Ge => ValueBatch::Bool((0..n).map(|i| a.get(i) >= b.get(i)).collect()),
            BinOp::And => {
                ValueBatch::Bool((0..n).map(|i| a.get(i) != 0 && b.get(i) != 0).collect())
            }
            BinOp::Or => ValueBatch::Bool((0..n).map(|i| a.get(i) != 0 || b.get(i) != 0).collect()),
        };
    }
    // Mixed int/float numeric fast path (matches the float arm of
    // `numeric_binop` and `total_f64_cmp` comparisons).
    if let (Some(a), Some(b)) = (float_view(l), float_view(r)) {
        return match op {
            BinOp::Add => ValueBatch::Float((0..n).map(|i| a.get(i) + b.get(i)).collect()),
            BinOp::Sub => ValueBatch::Float((0..n).map(|i| a.get(i) - b.get(i)).collect()),
            BinOp::Mul => ValueBatch::Float((0..n).map(|i| a.get(i) * b.get(i)).collect()),
            BinOp::Div => div_batch(FloatViewPair(a, b), n),
            BinOp::Eq => ValueBatch::Bool(
                (0..n)
                    .map(|i| a.get(i).total_cmp(&b.get(i)).is_eq())
                    .collect(),
            ),
            BinOp::Ne => ValueBatch::Bool(
                (0..n)
                    .map(|i| !a.get(i).total_cmp(&b.get(i)).is_eq())
                    .collect(),
            ),
            BinOp::Lt => ValueBatch::Bool(
                (0..n)
                    .map(|i| a.get(i).total_cmp(&b.get(i)).is_lt())
                    .collect(),
            ),
            BinOp::Le => ValueBatch::Bool(
                (0..n)
                    .map(|i| a.get(i).total_cmp(&b.get(i)).is_le())
                    .collect(),
            ),
            BinOp::Gt => ValueBatch::Bool(
                (0..n)
                    .map(|i| a.get(i).total_cmp(&b.get(i)).is_gt())
                    .collect(),
            ),
            BinOp::Ge => ValueBatch::Bool(
                (0..n)
                    .map(|i| a.get(i).total_cmp(&b.get(i)).is_ge())
                    .collect(),
            ),
            BinOp::And => {
                ValueBatch::Bool((0..n).map(|i| a.get(i) != 0.0 && b.get(i) != 0.0).collect())
            }
            BinOp::Or => {
                ValueBatch::Bool((0..n).map(|i| a.get(i) != 0.0 || b.get(i) != 0.0).collect())
            }
        };
    }
    // Boolean logic fast path.
    if let (Some(a), Some(b)) = (bool_view(l), bool_view(r)) {
        match op {
            BinOp::And => return ValueBatch::Bool((0..n).map(|i| a.get(i) && b.get(i)).collect()),
            BinOp::Or => return ValueBatch::Bool((0..n).map(|i| a.get(i) || b.get(i)).collect()),
            BinOp::Eq => return ValueBatch::Bool((0..n).map(|i| a.get(i) == b.get(i)).collect()),
            BinOp::Ne => return ValueBatch::Bool((0..n).map(|i| a.get(i) != b.get(i)).collect()),
            _ => {}
        }
    }
    // Generic fallback: exact scalar semantics per row.
    ValueBatch::Values(
        (0..n)
            .map(|i| apply_binop(op, &l.value(i), &r.value(i)))
            .collect(),
    )
}

struct FloatViewPair<'a>(FloatView<'a>, FloatView<'a>);

/// Division: int/int produces floats, any division by zero produces NULL —
/// exactly `Value::div`. A zero-free denominator keeps the typed float batch.
fn div_batch(views: FloatViewPair<'_>, n: usize) -> ValueBatch {
    let FloatViewPair(a, b) = views;
    if (0..n).any(|i| b.get(i) == 0.0) {
        ValueBatch::Values(
            (0..n)
                .map(|i| {
                    if b.get(i) == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(a.get(i) / b.get(i))
                    }
                })
                .collect(),
        )
    } else {
        ValueBatch::Float((0..n).map(|i| a.get(i) / b.get(i)).collect())
    }
}

impl Expr {
    /// Evaluates the expression over whole columns at once.
    ///
    /// Produces exactly the values row-at-a-time [`Expr::eval`] would — the
    /// typed fast paths engage only where the coercion rules are identical —
    /// but runs as tight loops over primitive slices for the common
    /// integer-heavy workloads. Each referenced column is loaded from the
    /// [`ColumnSource`] exactly once per evaluation, no matter how many
    /// `Col` nodes reference it: repeated references borrow the cached batch
    /// and do O(1) extra work.
    pub fn eval_batch(&self, schema: &Schema, src: &dyn ColumnSource) -> IrResult<ValueBatch> {
        // A bare column reference needs no cache machinery: load it once and
        // hand the owned batch straight back.
        if let Expr::Col(name) = self {
            let idx = schema.require(name, "expression")?;
            return Ok(load_column(src, idx));
        }
        // Pre-load every distinct referenced column once; the recursion below
        // borrows from this cache instead of re-materializing per `Col` node.
        let mut indices: Vec<usize> = Vec::new();
        self.collect_column_indices(schema, &mut indices)?;
        let cache: Vec<(usize, ValueBatch)> = indices
            .into_iter()
            .map(|i| (i, load_column(src, i)))
            .collect();
        Ok(self
            .eval_batch_cached(schema, src.batch_rows(), &cache)?
            .into_owned())
    }

    /// Resolves and deduplicates the schema indices of every column the
    /// expression references (erroring on unknown columns, as evaluation
    /// would).
    fn collect_column_indices(&self, schema: &Schema, out: &mut Vec<usize>) -> IrResult<()> {
        match self {
            Expr::Col(name) => {
                let idx = schema.require(name, "expression")?;
                if !out.contains(&idx) {
                    out.push(idx);
                }
                Ok(())
            }
            Expr::Const(_) => Ok(()),
            Expr::Bin { left, right, .. } => {
                left.collect_column_indices(schema, out)?;
                right.collect_column_indices(schema, out)
            }
            Expr::Not(inner) => inner.collect_column_indices(schema, out),
        }
    }

    /// The recursive evaluator behind [`Expr::eval_batch`]: `Col` nodes
    /// borrow their pre-loaded batch from `cache`, so only operator nodes
    /// allocate.
    fn eval_batch_cached<'a>(
        &self,
        schema: &Schema,
        rows: usize,
        cache: &'a [(usize, ValueBatch)],
    ) -> IrResult<Cow<'a, ValueBatch>> {
        match self {
            Expr::Col(name) => {
                let idx = schema.require(name, "expression")?;
                let batch = cache
                    .iter()
                    .find(|(i, _)| *i == idx)
                    .map(|(_, b)| b)
                    .expect("every referenced column is pre-loaded");
                Ok(Cow::Borrowed(batch))
            }
            Expr::Const(v) => Ok(Cow::Owned(ValueBatch::Splat(v.clone(), rows))),
            Expr::Bin { op, left, right } => {
                let l = left.eval_batch_cached(schema, rows, cache)?;
                let r = right.eval_batch_cached(schema, rows, cache)?;
                Ok(Cow::Owned(apply_binop_batch(*op, &l, &r)))
            }
            Expr::Not(inner) => {
                let b = inner.eval_batch_cached(schema, rows, cache)?;
                if let Some(v) = bool_view(&b) {
                    let n = b.len();
                    return Ok(Cow::Owned(ValueBatch::Bool(
                        (0..n).map(|i| !v.get(i)).collect(),
                    )));
                }
                if let Some(v) = int_view(&b) {
                    let n = b.len();
                    return Ok(Cow::Owned(ValueBatch::Bool(
                        (0..n).map(|i| v.get(i) == 0).collect(),
                    )));
                }
                Ok(Cow::Owned(ValueBatch::Values(
                    (0..b.len())
                        .map(|i| match b.value(i).as_bool() {
                            Some(x) => Value::Bool(!x),
                            None => Value::Null,
                        })
                        .collect(),
                )))
            }
        }
    }
}

/// Loads a stored column into an owned batch, demoting to generic values when
/// a null mask is present (typed loops cannot represent NULL).
fn load_column(src: &dyn ColumnSource, idx: usize) -> ValueBatch {
    let nulls = src.batch_nulls(idx);
    match (src.batch(idx), nulls) {
        (BatchRef::Int(v), None) => ValueBatch::Int(v.to_vec()),
        (BatchRef::Float(v), None) => ValueBatch::Float(v.to_vec()),
        (BatchRef::Bool(v), None) => ValueBatch::Bool(v.to_vec()),
        (BatchRef::Str(v), None) => {
            ValueBatch::Values(v.iter().map(|s| Value::Str(s.clone())).collect())
        }
        (BatchRef::Mixed(v), None) => ValueBatch::Values(v.to_vec()),
        (data, Some(mask)) => {
            let values = (0..mask.len())
                .map(|i| {
                    if mask[i] {
                        Value::Null
                    } else {
                        match data {
                            BatchRef::Int(v) => Value::Int(v[i]),
                            BatchRef::Float(v) => Value::Float(v[i]),
                            BatchRef::Bool(v) => Value::Bool(v[i]),
                            BatchRef::Str(v) => Value::Str(v[i].clone()),
                            BatchRef::Mixed(v) => v[i].clone(),
                        }
                    }
                })
                .collect();
            ValueBatch::Values(values)
        }
    }
}

/// Applies a binary operator to two runtime values.
pub fn apply_binop(op: BinOp, l: &Value, r: &Value) -> Value {
    match op {
        BinOp::Add => l.add(r),
        BinOp::Sub => l.sub(r),
        BinOp::Mul => l.mul(r),
        BinOp::Div => l.div(r),
        BinOp::Eq => Value::Bool(l == r),
        BinOp::Ne => Value::Bool(l != r),
        BinOp::Lt => Value::Bool(l < r),
        BinOp::Le => Value::Bool(l <= r),
        BinOp::Gt => Value::Bool(l > r),
        BinOp::Ge => Value::Bool(l >= r),
        BinOp::And => match (l.as_bool(), r.as_bool()) {
            (Some(a), Some(b)) => Value::Bool(a && b),
            _ => Value::Null,
        },
        BinOp::Or => match (l.as_bool(), r.as_bool()) {
            (Some(a), Some(b)) => Value::Bool(a || b),
            _ => Value::Null,
        },
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(name) => write!(f, "{name}"),
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Bin { op, left, right } => write!(f, "({left} {op} {right})"),
            Expr::Not(inner) => write!(f, "!({inner})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("b", DataType::Int),
            ColumnDef::new("s", DataType::Str),
        ])
    }

    #[test]
    fn referenced_columns_dedup() {
        let e = Expr::col("a").add(Expr::col("b")).mul(Expr::col("a"));
        assert_eq!(e.referenced_columns(), vec!["a".to_string(), "b".into()]);
    }

    #[test]
    fn eval_arithmetic_and_compare() {
        let s = schema();
        let row = vec![Value::Int(6), Value::Int(4), Value::Str("x".into())];
        let e = Expr::col("a").add(Expr::col("b"));
        assert_eq!(e.eval(&s, &row).unwrap(), Value::Int(10));
        let e = Expr::col("a").div(Expr::col("b"));
        assert_eq!(e.eval(&s, &row).unwrap(), Value::Float(1.5));
        let e = Expr::col("a").gt(Expr::lit(5));
        assert_eq!(e.eval(&s, &row).unwrap(), Value::Bool(true));
        let e = Expr::col("a")
            .lt(Expr::lit(5))
            .or(Expr::col("b").eq(Expr::lit(4)));
        assert_eq!(e.eval(&s, &row).unwrap(), Value::Bool(true));
        let e = Expr::col("a")
            .ge(Expr::lit(6))
            .and(Expr::col("b").le(Expr::lit(3)));
        assert_eq!(e.eval(&s, &row).unwrap(), Value::Bool(false));
        let e = Expr::col("a").ne(Expr::lit(6)).not();
        assert_eq!(e.eval(&s, &row).unwrap(), Value::Bool(true));
        let e = Expr::col("a").sub(Expr::lit(1));
        assert_eq!(e.eval(&s, &row).unwrap(), Value::Int(5));
    }

    #[test]
    fn eval_unknown_column_errors() {
        let s = schema();
        let row = vec![Value::Int(1), Value::Int(2), Value::Str("x".into())];
        assert!(Expr::col("zzz").eval(&s, &row).is_err());
    }

    #[test]
    fn type_inference() {
        let s = schema();
        assert_eq!(Expr::col("a").infer_type(&s).unwrap(), DataType::Int);
        assert_eq!(
            Expr::col("a").add(Expr::col("b")).infer_type(&s).unwrap(),
            DataType::Int
        );
        assert_eq!(
            Expr::col("a").div(Expr::col("b")).infer_type(&s).unwrap(),
            DataType::Float
        );
        assert_eq!(
            Expr::col("a").gt(Expr::lit(1)).infer_type(&s).unwrap(),
            DataType::Bool
        );
        assert_eq!(
            Expr::lit(1.5).mul(Expr::col("a")).infer_type(&s).unwrap(),
            DataType::Float
        );
        assert!(Expr::col("s").add(Expr::col("a")).infer_type(&s).is_err());
        assert!(Expr::col("a").not().infer_type(&s).is_err());
        assert!(Expr::col("missing").infer_type(&s).is_err());
        assert!(Expr::Const(Value::Null).infer_type(&s).is_err());
    }

    #[test]
    fn op_count_counts_nonlinear_ops() {
        let e = Expr::col("a")
            .add(Expr::col("b"))
            .mul(Expr::lit(2))
            .gt(Expr::lit(100));
        assert_eq!(e.op_count(), 3);
        assert_eq!(Expr::col("a").op_count(), 0);
        assert_eq!(Expr::col("a").eq(Expr::lit(1)).not().op_count(), 2);
    }

    #[test]
    fn display_round_trip_like() {
        let e = Expr::col("a").add(Expr::lit(1)).gt(Expr::col("b"));
        assert_eq!(e.to_string(), "((a + 1) > b)");
        assert_eq!(BinOp::And.to_string(), "&&");
    }

    #[test]
    fn binop_predicate_classification() {
        assert!(BinOp::Eq.is_predicate());
        assert!(BinOp::Or.is_predicate());
        assert!(!BinOp::Add.is_predicate());
        assert!(!BinOp::Div.is_predicate());
    }

    /// A tiny in-memory column source for batch-eval tests.
    struct TestSource {
        ints: Vec<Vec<i64>>,
        nulls: Vec<Option<Vec<bool>>>,
    }

    impl ColumnSource for TestSource {
        fn batch_rows(&self) -> usize {
            self.ints.first().map_or(0, |c| c.len())
        }
        fn batch(&self, col: usize) -> BatchRef<'_> {
            BatchRef::Int(&self.ints[col])
        }
        fn batch_nulls(&self, col: usize) -> Option<&[bool]> {
            self.nulls[col].as_deref()
        }
    }

    /// Batch evaluation must agree with scalar evaluation row by row.
    fn assert_batch_matches_scalar(e: &Expr, s: &Schema, src: &TestSource) {
        let batch = e.eval_batch(s, src).unwrap().into_values();
        for i in 0..src.batch_rows() {
            let row: Vec<Value> = (0..src.ints.len())
                .map(|c| match &src.nulls[c] {
                    Some(mask) if mask[i] => Value::Null,
                    _ => Value::Int(src.ints[c][i]),
                })
                .collect();
            assert_eq!(batch[i], e.eval(s, &row).unwrap(), "row {i} of {e}");
        }
    }

    #[test]
    fn batch_eval_matches_scalar_eval() {
        let s = Schema::ints(&["a", "b"]);
        let src = TestSource {
            ints: vec![vec![6, -3, 0, i64::MAX], vec![4, 0, 7, 2]],
            nulls: vec![None, None],
        };
        for e in [
            Expr::col("a").add(Expr::col("b")),
            Expr::col("a").sub(Expr::lit(1)),
            Expr::col("a").mul(Expr::col("b")),
            Expr::col("a").div(Expr::col("b")), // includes division by zero
            Expr::col("a").div(Expr::lit(2)),
            Expr::col("a").gt(Expr::col("b")),
            Expr::col("a").le(Expr::lit(0)),
            Expr::col("a").eq(Expr::col("b")).not(),
            Expr::col("a")
                .gt(Expr::lit(0))
                .and(Expr::col("b").lt(Expr::lit(5))),
            Expr::col("a").ne(Expr::lit(6)).or(Expr::col("b").not()),
            Expr::lit(1.5).mul(Expr::col("a")),
            Expr::lit(3).add(Expr::lit(4)),
        ] {
            assert_batch_matches_scalar(&e, &s, &src);
        }
    }

    #[test]
    fn batch_eval_handles_nulls_via_generic_path() {
        let s = Schema::ints(&["a", "b"]);
        let src = TestSource {
            ints: vec![vec![1, 2, 3], vec![10, 20, 30]],
            nulls: vec![Some(vec![false, true, false]), None],
        };
        for e in [
            Expr::col("a").add(Expr::col("b")),
            Expr::col("a").gt(Expr::lit(1)),
            Expr::col("a").not(),
        ] {
            assert_batch_matches_scalar(&e, &s, &src);
        }
    }

    /// A column source that counts how many times each column's data is
    /// materialized into a batch.
    struct CountingSource {
        ints: Vec<Vec<i64>>,
        loads: std::cell::RefCell<Vec<usize>>,
    }

    impl CountingSource {
        fn new(ints: Vec<Vec<i64>>) -> Self {
            let n = ints.len();
            CountingSource {
                ints,
                loads: std::cell::RefCell::new(vec![0; n]),
            }
        }
    }

    impl ColumnSource for CountingSource {
        fn batch_rows(&self) -> usize {
            self.ints.first().map_or(0, |c| c.len())
        }
        fn batch(&self, col: usize) -> BatchRef<'_> {
            self.loads.borrow_mut()[col] += 1;
            BatchRef::Int(&self.ints[col])
        }
        fn batch_nulls(&self, _col: usize) -> Option<&[bool]> {
            None
        }
    }

    #[test]
    fn batch_eval_loads_each_referenced_column_exactly_once() {
        let s = Schema::ints(&["a", "b"]);
        let src = CountingSource::new(vec![vec![1, 7, 3], vec![2, 2, 9]]);
        // `a` is referenced three times, `b` twice.
        let e = Expr::col("a")
            .gt(Expr::lit(0))
            .and(Expr::col("a").lt(Expr::col("b")))
            .or(Expr::col("a").eq(Expr::col("b")));
        let out = e.eval_batch(&s, &src).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(
            *src.loads.borrow(),
            vec![1, 1],
            "each column must be loaded once, not once per Col node"
        );
        // The cached path produces exactly what scalar evaluation produces.
        for i in 0..3 {
            let row = vec![Value::Int(src.ints[0][i]), Value::Int(src.ints[1][i])];
            assert_eq!(out.value(i), e.eval(&s, &row).unwrap());
        }
        // A bare column reference also loads exactly once.
        let src2 = CountingSource::new(vec![vec![5, 6], vec![0, 0]]);
        Expr::col("a").eval_batch(&s, &src2).unwrap();
        assert_eq!(*src2.loads.borrow(), vec![1, 0]);
    }

    #[test]
    fn batch_eval_unknown_column_errors() {
        let s = Schema::ints(&["a"]);
        let src = TestSource {
            ints: vec![vec![1]],
            nulls: vec![None],
        };
        assert!(Expr::col("zzz").eval_batch(&s, &src).is_err());
    }

    #[test]
    fn value_batch_accessors() {
        let b = ValueBatch::Int(vec![1, 0, 2]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.value(1), Value::Int(0));
        assert_eq!(b.to_mask(), vec![true, false, true]);
        let f = ValueBatch::Float(vec![0.0, 2.5]);
        assert_eq!(f.to_mask(), vec![false, true]);
        let s = ValueBatch::Splat(Value::Bool(true), 2);
        assert_eq!(s.to_mask(), vec![true, true]);
        assert_eq!(s.into_values(), vec![Value::Bool(true), Value::Bool(true)]);
        let v = ValueBatch::Values(vec![Value::Null, Value::Int(1)]);
        assert_eq!(v.to_mask(), vec![false, true]);
        assert!(ValueBatch::Bool(vec![]).is_empty());
    }
}
