//! The [`Transport`] abstraction: typed per-party message exchange.
//!
//! The extended Conclave TR treats per-party message exchange as *the*
//! defining cost of MPC, so the real execution path needs parties that hold
//! only their own shares and communicate explicitly. This module provides the
//! interface those parties program against — [`Transport::send_to`],
//! [`Transport::recv_from`] and [`Transport::send_all`] of typed
//! [`Envelope`]s — together with two genuine implementations:
//!
//! * [`ChannelTransport`] — an in-process full mesh of unbounded channels,
//!   one thread per party, for fast local multi-party runs and tests; and
//! * [`TcpTransport`] — length-prefixed frames over `std::net` TCP sockets,
//!   for real multi-process deployments (or multi-thread over localhost).
//!
//! [`crate::SimNetwork`] implements the same trait, so the latency/bandwidth
//! *cost-model* path and the *measured* path share one interface: MPC code
//! written against `&dyn Transport` runs unchanged over either.
//!
//! # Logical streams
//!
//! A mesh is built **once per query** (see [`crate::Mesh`]) and shared by
//! every protocol step of the plan, so frames from different steps can be in
//! flight on one connection at the same time — e.g. a step's final open is
//! still awaiting its peers while the next step's Beaver round has already
//! been sent. Every frame therefore carries a [`StreamTag`] — a
//! `(step, stream)` pair — and receivers call [`Transport::recv_tagged`] to
//! ask for *their* exchange: a frame that arrives early for a different
//! stream is buffered per link and handed out when its exchange comes due.
//! Within one logical stream, frames still arrive in order.
//!
//! Every transport records the traffic it **sends** into a [`NetStats`]
//! (observed wire bytes, not modeled ones); merging the per-party snapshots
//! after a run yields the full per-link picture.

use crate::message::MessageKind;
use crate::stats::NetStats;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Fixed per-frame overhead charged on every message: 4 bytes sender id,
/// 1 byte kind, 4 + 4 bytes stream tag (step id, stream id), 2 bytes label
/// length, 4 bytes payload length.
pub const FRAME_HEADER_BYTES: u64 = 19;

/// Default bound on blocking receives: a peer that stays silent this long is
/// assumed dead, so a failed party cannot hang the whole mesh.
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(10);

/// Upper bound on a single frame's payload length in 64-bit words (128 MiB).
/// A length above this is treated as a corrupt/desynchronized stream rather
/// than an allocation request.
pub const MAX_FRAME_WORDS: usize = 1 << 24;

/// Identifies the logical stream a frame belongs to when several protocol
/// steps multiplex one long-lived connection: the plan-level MPC step that
/// produced it plus an exchange counter within that step. Receivers match on
/// the tag ([`Transport::recv_tagged`]), so a frame that arrives early for a
/// later exchange is buffered instead of being mis-delivered to whatever
/// `recv` happens to be blocked.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct StreamTag {
    /// Plan-level MPC step id.
    pub step: u32,
    /// Exchange counter within the step.
    pub stream: u32,
}

impl StreamTag {
    /// Creates a tag for stream `stream` of plan step `step`.
    pub fn new(step: u32, stream: u32) -> Self {
        StreamTag { step, stream }
    }
}

impl fmt::Display for StreamTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}.{}", self.step, self.stream)
    }
}

/// One typed message as it crosses a transport: sender, payload kind, the
/// logical stream it belongs to, a protocol-step label for tracing, and the
/// raw `Z_{2^64}` payload words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sending party id.
    pub from: u32,
    /// What the payload semantically is (shares, reveal, control…).
    pub kind: MessageKind,
    /// Logical `(step, stream)` the frame belongs to.
    pub tag: StreamTag,
    /// Free-form protocol-step label (for tracing and debugging).
    pub label: String,
    /// Payload: ring elements / masked values as raw 64-bit words.
    pub payload: Vec<u64>,
}

impl Envelope {
    /// Creates an envelope on the default stream (single-stream transports).
    pub fn new(from: u32, kind: MessageKind, label: impl Into<String>, payload: Vec<u64>) -> Self {
        Envelope::tagged(from, StreamTag::default(), kind, label, payload)
    }

    /// Creates an envelope on a specific logical stream.
    pub fn tagged(
        from: u32,
        tag: StreamTag,
        kind: MessageKind,
        label: impl Into<String>,
        payload: Vec<u64>,
    ) -> Self {
        Envelope {
            from,
            kind,
            tag,
            label: label.into(),
            payload,
        }
    }

    /// Bytes this envelope occupies on the wire (header + label + payload).
    pub fn wire_bytes(&self) -> u64 {
        FRAME_HEADER_BYTES + self.label.len() as u64 + 8 * self.payload.len() as u64
    }
}

/// Errors raised by transport operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The target/source party id is not part of this mesh (or is self).
    InvalidPeer {
        /// The offending party id.
        party: u32,
    },
    /// No message arrived from `from` within the receive timeout.
    Timeout {
        /// The party that stayed silent.
        from: u32,
    },
    /// The link to/from `party` is closed (peer dropped or socket shut down).
    Disconnected {
        /// The unreachable party.
        party: u32,
    },
    /// An I/O or framing failure (TCP transport).
    Io(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::InvalidPeer { party } => {
                write!(f, "party P{party} is not a valid peer on this transport")
            }
            TransportError::Timeout { from } => {
                write!(f, "timed out waiting for a message from P{from}")
            }
            TransportError::Disconnected { party } => {
                write!(f, "link to P{party} is disconnected")
            }
            TransportError::Io(e) => write!(f, "transport I/O error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e.to_string())
    }
}

/// Typed message exchange between the parties of one multi-party computation.
///
/// A `Transport` value is **one party's endpoint** into the mesh: it knows its
/// own id, the total party count, and how to reach every peer. Protocol code
/// holds a `&dyn Transport` and stays agnostic of whether messages move over
/// in-process channels, TCP sockets, or the simulated cost-model network.
pub trait Transport: Send {
    /// This endpoint's party id (`0..parties`).
    fn party(&self) -> u32;

    /// Total number of parties in the mesh.
    fn parties(&self) -> u32;

    /// Sends a typed payload to one peer.
    fn send_to(
        &self,
        to: u32,
        kind: MessageKind,
        label: &str,
        payload: &[u64],
    ) -> Result<(), TransportError>;

    /// Receives the next message from one peer (blocking, bounded by the
    /// transport's receive timeout). Messages on one link arrive in order.
    fn recv_from(&self, from: u32) -> Result<Envelope, TransportError>;

    /// Records one synchronous protocol round in this endpoint's statistics.
    fn record_round(&self);

    /// Snapshot of the traffic this endpoint has sent (and rounds recorded).
    fn stats(&self) -> NetStats;

    /// Sends the same payload to every other party.
    fn send_all(
        &self,
        kind: MessageKind,
        label: &str,
        payload: &[u64],
    ) -> Result<(), TransportError> {
        for p in 0..self.parties() {
            if p != self.party() {
                self.send_to(p, kind, label, payload)?;
            }
        }
        Ok(())
    }

    /// Sends a typed payload on a specific logical stream. The default
    /// forwards to [`Transport::send_to`] and drops the tag — transports
    /// that multiplex concurrent steps over one connection override this.
    fn send_tagged(
        &self,
        to: u32,
        tag: StreamTag,
        kind: MessageKind,
        label: &str,
        payload: &[u64],
    ) -> Result<(), TransportError> {
        let _ = tag;
        self.send_to(to, kind, label, payload)
    }

    /// Receives the next message from `from` on the given logical stream,
    /// buffering (not discarding) frames that belong to other streams. The
    /// default forwards to [`Transport::recv_from`] without checking the tag
    /// — correct for single-stream transports that deliver strictly in
    /// order, like the simulated network.
    fn recv_tagged(&self, from: u32, tag: StreamTag) -> Result<Envelope, TransportError> {
        let _ = tag;
        self.recv_from(from)
    }

    /// Sends the same payload to every other party on a logical stream.
    fn send_all_tagged(
        &self,
        tag: StreamTag,
        kind: MessageKind,
        label: &str,
        payload: &[u64],
    ) -> Result<(), TransportError> {
        for p in 0..self.parties() {
            if p != self.party() {
                self.send_tagged(p, tag, kind, label, payload)?;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// In-process channel transport.
// ---------------------------------------------------------------------------

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

/// In-process transport: a full mesh of unbounded channels, one endpoint per
/// party, each owned by that party's thread. Build the whole mesh with
/// [`ChannelTransport::mesh`] and hand one endpoint to each thread.
pub struct ChannelTransport {
    party: u32,
    parties: u32,
    senders: Vec<Option<Sender<Envelope>>>,
    receivers: Vec<Option<Receiver<Envelope>>>,
    /// Per-link buffers of frames received ahead of their stream's turn.
    pending: Vec<Mutex<VecDeque<Envelope>>>,
    stats: Mutex<NetStats>,
    timeout: Duration,
}

impl ChannelTransport {
    /// Builds a fully-connected mesh of `n` endpoints (index = party id).
    pub fn mesh(n: u32) -> Vec<ChannelTransport> {
        assert!(n >= 2, "a transport mesh needs at least two parties");
        // links[from][to] carries messages from `from` to `to`.
        let mut txs: Vec<Vec<Option<Sender<Envelope>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut rxs: Vec<Vec<Option<Receiver<Envelope>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for from in 0..n as usize {
            for to in 0..n as usize {
                if from != to {
                    let (tx, rx) = unbounded();
                    txs[from][to] = Some(tx);
                    rxs[to][from] = Some(rx);
                }
            }
        }
        txs.into_iter()
            .zip(rxs)
            .enumerate()
            .map(|(party, (senders, receivers))| {
                let mut stats = NetStats::new();
                stats.record_mesh_build();
                ChannelTransport {
                    party: party as u32,
                    parties: n,
                    senders,
                    receivers,
                    pending: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
                    stats: Mutex::new(stats),
                    timeout: DEFAULT_RECV_TIMEOUT,
                }
            })
            .collect()
    }

    /// Overrides the blocking-receive timeout (default 10 s).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }
}

impl Transport for ChannelTransport {
    fn party(&self) -> u32 {
        self.party
    }

    fn parties(&self) -> u32 {
        self.parties
    }

    fn send_to(
        &self,
        to: u32,
        kind: MessageKind,
        label: &str,
        payload: &[u64],
    ) -> Result<(), TransportError> {
        self.send_tagged(to, StreamTag::default(), kind, label, payload)
    }

    fn send_tagged(
        &self,
        to: u32,
        tag: StreamTag,
        kind: MessageKind,
        label: &str,
        payload: &[u64],
    ) -> Result<(), TransportError> {
        let sender = self
            .senders
            .get(to as usize)
            .and_then(|s| s.as_ref())
            .ok_or(TransportError::InvalidPeer { party: to })?;
        let env = Envelope::tagged(self.party, tag, kind, label, payload.to_vec());
        self.stats
            .lock()
            .record(self.party, to, env.wire_bytes(), kind);
        sender
            .send(env)
            .map_err(|_| TransportError::Disconnected { party: to })
    }

    fn recv_from(&self, from: u32) -> Result<Envelope, TransportError> {
        let receiver = self
            .receivers
            .get(from as usize)
            .and_then(|r| r.as_ref())
            .ok_or(TransportError::InvalidPeer { party: from })?;
        if let Some(env) = self.pending[from as usize].lock().pop_front() {
            return Ok(env);
        }
        receiver.recv_timeout(self.timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::Timeout { from },
            RecvTimeoutError::Disconnected => TransportError::Disconnected { party: from },
        })
    }

    fn recv_tagged(&self, from: u32, tag: StreamTag) -> Result<Envelope, TransportError> {
        let receiver = self
            .receivers
            .get(from as usize)
            .and_then(|r| r.as_ref())
            .ok_or(TransportError::InvalidPeer { party: from })?;
        {
            let mut pending = self.pending[from as usize].lock();
            if let Some(pos) = pending.iter().position(|e| e.tag == tag) {
                return Ok(pending.remove(pos).expect("position just found"));
            }
        }
        let deadline = Instant::now() + self.timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(TransportError::Timeout { from });
            }
            match receiver.recv_timeout(remaining) {
                Ok(env) if env.tag == tag => return Ok(env),
                Ok(env) => self.pending[from as usize].lock().push_back(env),
                Err(RecvTimeoutError::Timeout) => return Err(TransportError::Timeout { from }),
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(TransportError::Disconnected { party: from })
                }
            }
        }
    }

    fn record_round(&self) {
        self.stats.lock().record_rounds(1);
    }

    fn stats(&self) -> NetStats {
        self.stats.lock().clone()
    }
}

// ---------------------------------------------------------------------------
// TCP transport.
// ---------------------------------------------------------------------------

/// One directed TCP link plus its reusable frame write buffer: frames are
/// encoded into `wbuf` in place, so steady-state sends allocate nothing.
struct TcpLink {
    stream: TcpStream,
    wbuf: Vec<u8>,
}

impl TcpLink {
    fn new(stream: TcpStream) -> Mutex<TcpLink> {
        Mutex::new(TcpLink {
            stream,
            wbuf: Vec::new(),
        })
    }
}

/// TCP transport: one dedicated socket per party pair (`TCP_NODELAY`, reused
/// per-link write buffers), length-prefixed binary framing, blocking reads
/// bounded by a timeout. Suitable for genuine multi-process deployments;
/// [`TcpTransport::localhost_mesh`] builds an ephemeral-port mesh for
/// single-machine runs and tests.
pub struct TcpTransport {
    party: u32,
    parties: u32,
    links: Vec<Option<Mutex<TcpLink>>>,
    /// Per-link buffers of frames received ahead of their stream's turn.
    pending: Vec<Mutex<VecDeque<Envelope>>>,
    stats: Mutex<NetStats>,
}

impl TcpTransport {
    /// Joins the mesh as `party`: accepts connections from higher-numbered
    /// parties on `listener` and connects to the lower-numbered parties at
    /// `addrs` (indexed by party id). Every party must call this
    /// concurrently; the pairwise "higher id dials lower id" rule makes the
    /// rendezvous deadlock-free, and both dialing and accepting are bounded
    /// by [`DEFAULT_RECV_TIMEOUT`] so a dead peer surfaces as an error
    /// instead of hanging the mesh. A 4-byte party-id handshake identifies
    /// each inbound connection.
    pub fn connect_mesh(
        party: u32,
        listener: TcpListener,
        addrs: &[SocketAddr],
    ) -> Result<TcpTransport, TransportError> {
        let n = addrs.len() as u32;
        if party >= n || n < 2 {
            return Err(TransportError::InvalidPeer { party });
        }
        let mut streams: Vec<Option<Mutex<TcpLink>>> = (0..n).map(|_| None).collect();
        // Dial every lower-numbered party (their listeners are already bound).
        for peer in 0..party {
            let mut stream =
                TcpStream::connect_timeout(&addrs[peer as usize], DEFAULT_RECV_TIMEOUT)?;
            stream.set_nodelay(true)?;
            stream.write_all(&party.to_le_bytes())?;
            stream.set_read_timeout(Some(DEFAULT_RECV_TIMEOUT))?;
            streams[peer as usize] = Some(TcpLink::new(stream));
        }
        // Accept one connection from every higher-numbered party, polling a
        // non-blocking listener so a peer that never dials in produces a
        // Timeout error rather than an indefinite accept().
        listener.set_nonblocking(true)?;
        let deadline = std::time::Instant::now() + DEFAULT_RECV_TIMEOUT;
        for _ in party + 1..n {
            let mut stream = loop {
                match listener.accept() {
                    Ok((stream, _)) => break stream,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if std::time::Instant::now() >= deadline {
                            return Err(TransportError::Timeout { from: u32::MAX });
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) => return Err(e.into()),
                }
            };
            stream.set_nonblocking(false)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(DEFAULT_RECV_TIMEOUT))?;
            let mut id = [0u8; 4];
            stream.read_exact(&mut id)?;
            let peer = u32::from_le_bytes(id);
            if peer <= party || peer >= n || streams[peer as usize].is_some() {
                return Err(TransportError::Io(format!(
                    "unexpected handshake from party {peer}"
                )));
            }
            streams[peer as usize] = Some(TcpLink::new(stream));
        }
        let mut stats = NetStats::new();
        stats.record_mesh_build();
        Ok(TcpTransport {
            party,
            parties: n,
            links: streams,
            pending: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            stats: Mutex::new(stats),
        })
    }

    /// Builds a fully-connected `n`-party mesh over ephemeral localhost
    /// ports: binds `n` listeners on `127.0.0.1:0`, then performs the
    /// pairwise rendezvous on one thread per party. Returns the endpoints
    /// ordered by party id.
    pub fn localhost_mesh(n: u32) -> Result<Vec<TcpTransport>, TransportError> {
        assert!(n >= 2, "a transport mesh needs at least two parties");
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0"))
            .collect::<std::io::Result<_>>()?;
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(|l| l.local_addr())
            .collect::<std::io::Result<_>>()?;
        let mut endpoints: Vec<Option<TcpTransport>> = (0..n).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = listeners
                .into_iter()
                .enumerate()
                .map(|(party, listener)| {
                    let addrs = &addrs;
                    s.spawn(move || TcpTransport::connect_mesh(party as u32, listener, addrs))
                })
                .collect();
            for (party, handle) in handles.into_iter().enumerate() {
                endpoints[party] = Some(handle.join().expect("mesh thread panicked")?);
            }
            Ok::<(), TransportError>(())
        })?;
        Ok(endpoints.into_iter().map(|e| e.expect("filled")).collect())
    }

    fn link(&self, peer: u32) -> Result<&Mutex<TcpLink>, TransportError> {
        self.links
            .get(peer as usize)
            .and_then(|s| s.as_ref())
            .ok_or(TransportError::InvalidPeer { party: peer })
    }
}

/// Encodes one frame into `buf` (cleared first, so a per-link buffer can be
/// reused across sends) and returns its wire length in bytes.
fn encode_frame_into(
    buf: &mut Vec<u8>,
    from: u32,
    tag: StreamTag,
    kind: MessageKind,
    label: &str,
    payload: &[u64],
) -> u64 {
    buf.clear();
    buf.extend_from_slice(&from.to_le_bytes());
    buf.push(kind.code());
    buf.extend_from_slice(&tag.step.to_le_bytes());
    buf.extend_from_slice(&tag.stream.to_le_bytes());
    buf.extend_from_slice(&(label.len() as u16).to_le_bytes());
    buf.extend_from_slice(label.as_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    for word in payload {
        buf.extend_from_slice(&word.to_le_bytes());
    }
    buf.len() as u64
}

/// Reads one envelope frame from a stream.
fn decode_frame(stream: &mut TcpStream) -> Result<Envelope, TransportError> {
    let mut u32buf = [0u8; 4];
    stream.read_exact(&mut u32buf).map_err(map_read_err)?;
    let from = u32::from_le_bytes(u32buf);
    let mut kind_buf = [0u8; 1];
    stream.read_exact(&mut kind_buf).map_err(map_read_err)?;
    let kind = MessageKind::from_code(kind_buf[0])
        .ok_or_else(|| TransportError::Io(format!("bad message kind code {}", kind_buf[0])))?;
    let mut tag_buf = [0u8; 4];
    stream.read_exact(&mut tag_buf).map_err(map_read_err)?;
    let step = u32::from_le_bytes(tag_buf);
    stream.read_exact(&mut tag_buf).map_err(map_read_err)?;
    let tag = StreamTag::new(step, u32::from_le_bytes(tag_buf));
    let mut u16buf = [0u8; 2];
    stream.read_exact(&mut u16buf).map_err(map_read_err)?;
    let mut label_bytes = vec![0u8; u16::from_le_bytes(u16buf) as usize];
    stream.read_exact(&mut label_bytes).map_err(map_read_err)?;
    let label =
        String::from_utf8(label_bytes).map_err(|_| TransportError::Io("non-UTF-8 label".into()))?;
    stream.read_exact(&mut u32buf).map_err(map_read_err)?;
    let len = u32::from_le_bytes(u32buf) as usize;
    if len > MAX_FRAME_WORDS {
        return Err(TransportError::Io(format!(
            "frame payload length {len} exceeds the {MAX_FRAME_WORDS}-word cap \
             (corrupt or desynchronized stream)"
        )));
    }
    let mut payload = Vec::with_capacity(len);
    let mut word = [0u8; 8];
    for _ in 0..len {
        stream.read_exact(&mut word).map_err(map_read_err)?;
        payload.push(u64::from_le_bytes(word));
    }
    Ok(Envelope {
        from,
        kind,
        tag,
        label,
        payload,
    })
}

fn map_read_err(e: std::io::Error) -> TransportError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            // `from` is substituted by the caller, which knows the peer.
            TransportError::Timeout { from: u32::MAX }
        }
        std::io::ErrorKind::UnexpectedEof => TransportError::Disconnected { party: u32::MAX },
        _ => TransportError::Io(e.to_string()),
    }
}

impl Transport for TcpTransport {
    fn party(&self) -> u32 {
        self.party
    }

    fn parties(&self) -> u32 {
        self.parties
    }

    fn send_to(
        &self,
        to: u32,
        kind: MessageKind,
        label: &str,
        payload: &[u64],
    ) -> Result<(), TransportError> {
        self.send_tagged(to, StreamTag::default(), kind, label, payload)
    }

    fn send_tagged(
        &self,
        to: u32,
        tag: StreamTag,
        kind: MessageKind,
        label: &str,
        payload: &[u64],
    ) -> Result<(), TransportError> {
        let bytes;
        {
            let mut link = self.link(to)?.lock();
            let TcpLink { stream, wbuf } = &mut *link;
            bytes = encode_frame_into(wbuf, self.party, tag, kind, label, payload);
            stream.write_all(wbuf)?;
            stream.flush()?;
        }
        self.stats.lock().record(self.party, to, bytes, kind);
        Ok(())
    }

    fn recv_from(&self, from: u32) -> Result<Envelope, TransportError> {
        self.link(from)?;
        if let Some(env) = self.pending[from as usize].lock().pop_front() {
            return Ok(env);
        }
        self.recv_frame(from)
    }

    fn recv_tagged(&self, from: u32, tag: StreamTag) -> Result<Envelope, TransportError> {
        self.link(from)?;
        {
            let mut pending = self.pending[from as usize].lock();
            if let Some(pos) = pending.iter().position(|e| e.tag == tag) {
                return Ok(pending.remove(pos).expect("position just found"));
            }
        }
        loop {
            let env = self.recv_frame(from)?;
            if env.tag == tag {
                return Ok(env);
            }
            self.pending[from as usize].lock().push_back(env);
        }
    }

    fn record_round(&self) {
        self.stats.lock().record_rounds(1);
    }

    fn stats(&self) -> NetStats {
        self.stats.lock().clone()
    }
}

impl TcpTransport {
    /// Reads the next raw frame off the `from` link, normalizing I/O errors.
    fn recv_frame(&self, from: u32) -> Result<Envelope, TransportError> {
        let mut link = self.link(from)?.lock();
        let env = decode_frame(&mut link.stream).map_err(|e| match e {
            TransportError::Timeout { .. } => TransportError::Timeout { from },
            TransportError::Disconnected { .. } => TransportError::Disconnected { party: from },
            other => other,
        })?;
        if env.from != from {
            return Err(TransportError::Io(format!(
                "frame from P{} arrived on the P{from} link",
                env.from
            )));
        }
        Ok(env)
    }
}

/// Merges per-party endpoint statistics into one mesh-wide view: links are
/// summed (each endpoint records only what *it* sent, so every directed link
/// is counted exactly once) while rounds and mesh builds are taken as the
/// maximum (every party counts the same synchronous rounds, and every
/// endpoint of one mesh reports that same mesh's construction).
pub fn merge_mesh_stats<I: IntoIterator<Item = NetStats>>(endpoints: I) -> NetStats {
    let mut merged = NetStats::new();
    let mut rounds = 0;
    let mut mesh_builds = 0;
    for stats in endpoints {
        rounds = rounds.max(stats.rounds);
        mesh_builds = mesh_builds.max(stats.mesh_builds);
        let mut links_only = stats;
        links_only.rounds = 0;
        links_only.mesh_builds = 0;
        merged.merge(&links_only);
    }
    merged.rounds = rounds;
    merged.mesh_builds = mesh_builds;
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_pair<T: Transport>(a: &T, b: &T) {
        a.send_to(b.party(), MessageKind::SecretShare, "x", &[1, 2, 3])
            .unwrap();
        a.send_to(b.party(), MessageKind::Control, "y", &[4])
            .unwrap();
        let first = b.recv_from(a.party()).unwrap();
        assert_eq!(first.payload, vec![1, 2, 3]);
        assert_eq!(first.kind, MessageKind::SecretShare);
        assert_eq!(first.label, "x");
        assert_eq!(first.from, a.party());
        let second = b.recv_from(a.party()).unwrap();
        assert_eq!(second.payload, vec![4]);
        b.send_to(a.party(), MessageKind::Reveal, "z", &[9])
            .unwrap();
        assert_eq!(a.recv_from(b.party()).unwrap().payload, vec![9]);
    }

    #[test]
    fn channel_mesh_delivers_in_order_and_counts_bytes() {
        let mesh = ChannelTransport::mesh(3);
        exercise_pair(&mesh[0], &mesh[1]);
        let stats = mesh[0].stats();
        // Two messages 0 -> 1: headers + labels + payloads.
        assert_eq!(stats.links[&(0, 1)].messages, 2);
        assert_eq!(
            stats.links[&(0, 1)].bytes,
            (FRAME_HEADER_BYTES + 1 + 24) + (FRAME_HEADER_BYTES + 1 + 8)
        );
        // Endpoint 0 never recorded 1 -> 0 traffic (endpoint 1 did).
        assert!(!stats.links.contains_key(&(1, 0)));
        assert_eq!(mesh[1].stats().links[&(1, 0)].messages, 1);
    }

    #[test]
    fn channel_send_all_reaches_every_peer() {
        let mesh = ChannelTransport::mesh(3);
        mesh[2]
            .send_all(MessageKind::Cleartext, "bcast", &[7, 8])
            .unwrap();
        for p in [0usize, 1] {
            assert_eq!(mesh[p].recv_from(2).unwrap().payload, vec![7, 8]);
        }
        assert_eq!(mesh[2].stats().total_messages(), 2);
    }

    #[test]
    fn channel_recv_times_out_and_rejects_bad_peers() {
        let mesh: Vec<_> = ChannelTransport::mesh(2)
            .into_iter()
            .map(|t| t.with_timeout(Duration::from_millis(5)))
            .collect();
        assert_eq!(
            mesh[0].recv_from(1),
            Err(TransportError::Timeout { from: 1 })
        );
        assert_eq!(
            mesh[0].recv_from(0),
            Err(TransportError::InvalidPeer { party: 0 })
        );
        assert!(matches!(
            mesh[0].send_to(9, MessageKind::Control, "", &[]),
            Err(TransportError::InvalidPeer { party: 9 })
        ));
    }

    #[test]
    fn channel_disconnect_is_reported() {
        let mut mesh = ChannelTransport::mesh(2);
        let b = mesh.pop().unwrap();
        drop(b);
        assert!(matches!(
            mesh[0].send_to(1, MessageKind::Control, "", &[1]),
            Err(TransportError::Disconnected { party: 1 })
        ));
    }

    #[test]
    fn rounds_are_recorded_per_endpoint_and_merged_as_max() {
        let mesh = ChannelTransport::mesh(2);
        mesh[0].record_round();
        mesh[0].record_round();
        mesh[1].record_round();
        mesh[1].record_round();
        mesh[0].send_to(1, MessageKind::Control, "r", &[1]).unwrap();
        let merged = merge_mesh_stats(mesh.iter().map(|t| t.stats()));
        assert_eq!(merged.rounds, 2, "rounds are synchronized, not summed");
        assert_eq!(merged.total_messages(), 1);
    }

    #[test]
    fn tcp_mesh_exchanges_frames_across_threads() {
        let mesh = TcpTransport::localhost_mesh(3).unwrap();
        let [t0, t1, t2]: [TcpTransport; 3] = mesh.try_into().ok().unwrap();
        std::thread::scope(|s| {
            s.spawn(|| {
                t0.send_to(1, MessageKind::SecretShare, "shares", &[10, 20])
                    .unwrap();
                t0.send_to(2, MessageKind::SecretShare, "shares", &[30])
                    .unwrap();
                assert_eq!(t0.recv_from(1).unwrap().payload, vec![42]);
            });
            s.spawn(|| {
                let env = t1.recv_from(0).unwrap();
                assert_eq!(env.payload, vec![10, 20]);
                assert_eq!(env.kind, MessageKind::SecretShare);
                t1.send_to(0, MessageKind::Reveal, "back", &[42]).unwrap();
            });
            s.spawn(|| {
                assert_eq!(t2.recv_from(0).unwrap().payload, vec![30]);
            });
        });
        let merged = merge_mesh_stats([t0.stats(), t1.stats(), t2.stats()]);
        assert_eq!(merged.total_messages(), 3);
        assert_eq!(merged.links[&(0, 1)].messages, 1);
        assert_eq!(merged.links[&(1, 0)].messages, 1);
    }

    /// Frames for a later stream sent *first* must not be handed to an
    /// earlier stream's receive: the transport buffers them per link and
    /// delivers each exchange by tag.
    fn exercise_stream_demux<T: Transport>(a: &T, b: &T) {
        let early = StreamTag::new(2, 0); // next step's round, sent first
        let late = StreamTag::new(1, 3); // previous step's final open
        a.send_tagged(b.party(), early, MessageKind::SecretShare, "d_e", &[7])
            .unwrap();
        a.send_tagged(b.party(), late, MessageKind::Reveal, "open", &[1, 2])
            .unwrap();
        let open = b.recv_tagged(a.party(), late).unwrap();
        assert_eq!(open.payload, vec![1, 2]);
        assert_eq!(open.tag, late);
        let beaver = b.recv_tagged(a.party(), early).unwrap();
        assert_eq!(beaver.payload, vec![7]);
        assert_eq!(beaver.tag, early);
    }

    #[test]
    fn channel_demultiplexes_concurrent_streams() {
        let mesh = ChannelTransport::mesh(2);
        exercise_stream_demux(&mesh[0], &mesh[1]);
    }

    #[test]
    fn tcp_demultiplexes_concurrent_streams() {
        let mesh = TcpTransport::localhost_mesh(2).unwrap();
        exercise_stream_demux(&mesh[0], &mesh[1]);
    }

    #[test]
    fn untagged_recv_still_drains_buffered_frames() {
        let mesh = ChannelTransport::mesh(2);
        let t1 = StreamTag::new(1, 0);
        let t2 = StreamTag::new(2, 0);
        mesh[0]
            .send_tagged(1, t1, MessageKind::Control, "a", &[1])
            .unwrap();
        mesh[0]
            .send_tagged(1, t2, MessageKind::Control, "b", &[2])
            .unwrap();
        // Pull the second stream first, parking the first in the buffer…
        assert_eq!(mesh[1].recv_tagged(0, t2).unwrap().payload, vec![2]);
        // …then an untagged receive must still surface the parked frame.
        assert_eq!(mesh[1].recv_from(0).unwrap().payload, vec![1]);
    }

    #[test]
    fn tcp_empty_payload_round_trips() {
        let mesh = TcpTransport::localhost_mesh(2).unwrap();
        mesh[0].send_to(1, MessageKind::Control, "", &[]).unwrap();
        let env = mesh[1].recv_from(0).unwrap();
        assert!(env.payload.is_empty());
        assert_eq!(env.wire_bytes(), FRAME_HEADER_BYTES);
    }

    #[test]
    fn envelope_wire_bytes_counts_header_label_and_payload() {
        let env = Envelope::new(0, MessageKind::Control, "ab", vec![1, 2]);
        assert_eq!(env.wire_bytes(), FRAME_HEADER_BYTES + 2 + 16);
    }

    #[test]
    fn error_display() {
        assert!(TransportError::InvalidPeer { party: 3 }
            .to_string()
            .contains("P3"));
        assert!(TransportError::Timeout { from: 1 }
            .to_string()
            .contains("P1"));
        assert!(TransportError::Disconnected { party: 2 }
            .to_string()
            .contains("P2"));
        assert!(TransportError::Io("boom".into())
            .to_string()
            .contains("boom"));
    }
}
