//! Latency/bandwidth model for links between parties.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A symmetric network model shared by all links.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// One-way message latency in seconds.
    pub latency_s: f64,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bps: f64,
}

impl NetworkModel {
    /// A LAN-like model (0.5 ms latency, 1 Gbit/s), matching the paper's
    /// same-datacenter VM deployment.
    pub fn lan() -> Self {
        NetworkModel {
            latency_s: 0.5e-3,
            bandwidth_bps: 125.0e6,
        }
    }

    /// A WAN-like model (25 ms latency, 100 Mbit/s) for sensitivity studies:
    /// Conclave parties are different organizations, so a wide-area
    /// deployment is plausible and stresses round-heavy protocols further.
    pub fn wan() -> Self {
        NetworkModel {
            latency_s: 25.0e-3,
            bandwidth_bps: 12.5e6,
        }
    }

    /// Time for one party to transfer `bytes` to another (latency + serialization).
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(self.latency_s + bytes as f64 / self.bandwidth_bps)
    }

    /// Time for `rounds` synchronous protocol rounds in which each round
    /// moves `bytes_per_round` bytes between the parties. Protocol rounds are
    /// sequential, so latency is paid once per round.
    pub fn round_time(&self, rounds: u64, bytes_per_round: u64) -> Duration {
        Duration::from_secs_f64(
            rounds as f64 * (self.latency_s + bytes_per_round as f64 / self.bandwidth_bps),
        )
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::lan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_is_faster_than_wan() {
        let lan = NetworkModel::lan();
        let wan = NetworkModel::wan();
        assert!(lan.transfer_time(1_000_000) < wan.transfer_time(1_000_000));
        assert!(lan.latency_s < wan.latency_s);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let m = NetworkModel::lan();
        let t1 = m.transfer_time(1_000_000);
        let t2 = m.transfer_time(10_000_000);
        assert!(t2 > t1);
        // Pure-latency floor for tiny messages.
        let tiny = m.transfer_time(1);
        assert!(tiny.as_secs_f64() >= m.latency_s);
    }

    #[test]
    fn round_time_pays_latency_per_round() {
        let m = NetworkModel::lan();
        let one = m.round_time(1, 1000);
        let hundred = m.round_time(100, 1000);
        assert!((hundred.as_secs_f64() / one.as_secs_f64() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn default_is_lan() {
        assert_eq!(NetworkModel::default(), NetworkModel::lan());
    }
}
