//! Active-adversary fault injection: a [`Transport`] wrapper that corrupts
//! selected frames on the receive path.
//!
//! The MAC-authenticated online phase (`conclave-mpc::runtime`) claims that a
//! network adversary who modifies, drops or replays any online message cannot
//! cause a wrong value to be accepted — the deferred `check_integrity` aborts
//! instead. That claim needs a falsifier: [`TamperingTransport`] wraps any
//! real transport and applies one programmable [`Fault`] to the first frame
//! matching a [`FaultSpec`] predicate (message kind, sender, plan step,
//! label, nth match). Integration suites wrap a whole mesh with
//! [`TamperingTransport::wrap_mesh`] and assert that the query aborts — and
//! that the *unauthenticated* runtime accepts the forged opening silently.
//!
//! Faults are applied on the **receive** path, after the inner transport's
//! stream demultiplexing, so the wrapper models a man-in-the-middle on one
//! directed link: the sender's statistics still record the honest bytes, and
//! only the receiving endpoint observes the corruption.

use crate::message::MessageKind;
use crate::stats::NetStats;
use crate::transport::{Envelope, StreamTag, Transport, TransportError};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The corruption applied to a matching envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// XORs `mask` into every payload word. The induced additive error
    /// depends on the payload bits, so independent receivers end up with
    /// *different* wrong values.
    FlipBits {
        /// Bit mask XOR-ed into each payload word.
        mask: u64,
    },
    /// Adds `delta` (wrapping) to every payload word. The induced error is
    /// payload-independent, so coordinated offsets across all receivers of
    /// one share exchange shift every party's reconstruction by the same
    /// amount — a *consistent* wrong opening that cross-party equality
    /// checks cannot see.
    Offset {
        /// Value wrapping-added to each payload word.
        delta: u64,
    },
    /// Discards the envelope: the receiver keeps waiting for a frame that
    /// never arrives and surfaces a timeout.
    Drop,
    /// Delivers the envelope, then replays a copy of it in place of the
    /// peer's next frame (a replay/desynchronization attack).
    Duplicate,
}

/// Predicate selecting which received envelope a [`Fault`] applies to. All
/// `Option` fields are conjunctive filters (`None` matches anything); `skip`
/// passes over that many matching frames first, so a test can target "the
/// third Beaver opening" precisely. Exactly **one** frame is tampered per
/// transport.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Only envelopes of this kind match (`None`: any kind).
    pub kind: Option<MessageKind>,
    /// Only envelopes from this sender match (`None`: any sender).
    pub from: Option<u32>,
    /// Only envelopes whose stream tag belongs to this plan step match.
    pub step: Option<u32>,
    /// Only envelopes whose label contains this substring match.
    pub label_contains: Option<String>,
    /// Number of matching envelopes delivered intact before the fault fires.
    pub skip: usize,
    /// The corruption to apply to the selected envelope.
    pub fault: Fault,
}

impl FaultSpec {
    /// A spec that tampers the first envelope of any kind from any sender.
    pub fn new(fault: Fault) -> Self {
        FaultSpec {
            kind: None,
            from: None,
            step: None,
            label_contains: None,
            skip: 0,
            fault,
        }
    }

    /// Restricts the fault to envelopes of `kind`.
    pub fn kind(mut self, kind: MessageKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Restricts the fault to envelopes sent by `from`.
    pub fn from(mut self, from: u32) -> Self {
        self.from = Some(from);
        self
    }

    /// Restricts the fault to envelopes on plan step `step`.
    pub fn step(mut self, step: u32) -> Self {
        self.step = Some(step);
        self
    }

    /// Restricts the fault to envelopes whose label contains `needle`.
    pub fn label_contains(mut self, needle: impl Into<String>) -> Self {
        self.label_contains = Some(needle.into());
        self
    }

    /// Passes over the first `skip` matching envelopes before tampering.
    pub fn skip(mut self, skip: usize) -> Self {
        self.skip = skip;
        self
    }

    fn matches(&self, env: &Envelope) -> bool {
        self.kind.is_none_or(|k| env.kind == k)
            && self.from.is_none_or(|f| env.from == f)
            && self.step.is_none_or(|s| env.tag.step == s)
            && self
                .label_contains
                .as_ref()
                .is_none_or(|n| env.label.contains(n))
    }
}

struct TamperState {
    spec: Option<FaultSpec>,
    seen: usize,
    done: bool,
    /// Per-peer queues of duplicated envelopes awaiting replay.
    replay: Vec<VecDeque<Envelope>>,
}

/// A [`Transport`] wrapper that applies one programmable [`Fault`] to the
/// first received envelope matching a [`FaultSpec`]. With no spec it is a
/// transparent pass-through, so equivalence suites can wrap unconditionally.
pub struct TamperingTransport<T: Transport> {
    inner: T,
    state: Mutex<TamperState>,
    fired: Arc<AtomicBool>,
}

impl<T: Transport> TamperingTransport<T> {
    /// Wraps `inner` as a transparent pass-through (no fault configured).
    pub fn passthrough(inner: T) -> Self {
        Self::build(inner, None)
    }

    /// Wraps `inner` and arms it with `spec`.
    pub fn with_fault(inner: T, spec: FaultSpec) -> Self {
        Self::build(inner, Some(spec))
    }

    fn build(inner: T, spec: Option<FaultSpec>) -> Self {
        let peers = inner.parties() as usize;
        TamperingTransport {
            inner,
            state: Mutex::new(TamperState {
                spec,
                seen: 0,
                done: false,
                replay: (0..peers).map(|_| VecDeque::new()).collect(),
            }),
            fired: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Wraps every endpoint of a mesh, arming endpoint `i` with
    /// `spec_for(i)` (or leaving it a pass-through on `None`). Coordinated
    /// attacks — e.g. a consistent additive offset at every receiver — are
    /// expressed by returning a per-party spec.
    pub fn wrap_mesh(
        mesh: Vec<T>,
        mut spec_for: impl FnMut(u32) -> Option<FaultSpec>,
    ) -> Vec<TamperingTransport<T>> {
        mesh.into_iter()
            .map(|t| {
                let spec = spec_for(t.party());
                Self::build(t, spec)
            })
            .collect()
    }

    /// Whether this endpoint's fault has fired (a matching frame was seen
    /// and corrupted). Tests use this to assert the attack actually landed
    /// before requiring an abort.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }

    /// A shareable handle onto the fired flag, for inspecting an endpoint
    /// after it has been moved into a party thread.
    pub fn fired_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.fired)
    }

    /// Applies the armed fault if `env` is the selected frame. Returns
    /// `None` when the frame is dropped.
    fn intercept(&self, env: Envelope) -> Option<Envelope> {
        let mut st = self.state.lock();
        let Some(spec) = st.spec.as_ref() else {
            return Some(env);
        };
        if st.done || !spec.matches(&env) {
            return Some(env);
        }
        if st.seen < spec.skip {
            st.seen += 1;
            return Some(env);
        }
        let fault = spec.fault;
        st.done = true;
        self.fired.store(true, Ordering::SeqCst);
        match fault {
            Fault::FlipBits { mask } => {
                let mut env = env;
                for w in &mut env.payload {
                    *w ^= mask;
                }
                Some(env)
            }
            Fault::Offset { delta } => {
                let mut env = env;
                for w in &mut env.payload {
                    *w = w.wrapping_add(delta);
                }
                Some(env)
            }
            Fault::Drop => None,
            Fault::Duplicate => {
                st.replay[env.from as usize].push_back(env.clone());
                Some(env)
            }
        }
    }

    fn take_replay(&self, from: u32) -> Option<Envelope> {
        self.state.lock().replay[from as usize].pop_front()
    }
}

impl<T: Transport> Transport for TamperingTransport<T> {
    fn party(&self) -> u32 {
        self.inner.party()
    }

    fn parties(&self) -> u32 {
        self.inner.parties()
    }

    fn send_to(
        &self,
        to: u32,
        kind: MessageKind,
        label: &str,
        payload: &[u64],
    ) -> Result<(), TransportError> {
        self.inner.send_to(to, kind, label, payload)
    }

    fn send_tagged(
        &self,
        to: u32,
        tag: StreamTag,
        kind: MessageKind,
        label: &str,
        payload: &[u64],
    ) -> Result<(), TransportError> {
        self.inner.send_tagged(to, tag, kind, label, payload)
    }

    fn recv_from(&self, from: u32) -> Result<Envelope, TransportError> {
        if let Some(env) = self.take_replay(from) {
            return Ok(env);
        }
        loop {
            let env = self.inner.recv_from(from)?;
            if let Some(env) = self.intercept(env) {
                return Ok(env);
            }
            // Dropped: keep waiting for the peer's next frame (or time out).
        }
    }

    fn recv_tagged(&self, from: u32, tag: StreamTag) -> Result<Envelope, TransportError> {
        if let Some(env) = self.take_replay(from) {
            return Ok(env);
        }
        loop {
            let env = self.inner.recv_tagged(from, tag)?;
            if let Some(env) = self.intercept(env) {
                return Ok(env);
            }
        }
    }

    fn record_round(&self) {
        self.inner.record_round();
    }

    fn stats(&self) -> NetStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::transport::ChannelTransport;
    use std::time::Duration;

    fn pair() -> Vec<ChannelTransport> {
        ChannelTransport::mesh(2)
            .into_iter()
            .map(|t| t.with_timeout(Duration::from_millis(20)))
            .collect()
    }

    #[test]
    fn passthrough_delivers_unchanged() {
        let mut mesh = pair();
        let b = TamperingTransport::passthrough(mesh.pop().unwrap());
        let a = mesh.pop().unwrap();
        a.send_to(1, MessageKind::Reveal, "open", &[1, 2, 3])
            .unwrap();
        let env = b.recv_from(0).unwrap();
        assert_eq!(env.payload, vec![1, 2, 3]);
        assert!(!b.fired());
    }

    #[test]
    fn flip_bits_hits_only_the_selected_frame() {
        let mut mesh = pair();
        let spec = FaultSpec::new(Fault::FlipBits { mask: 0xFF })
            .kind(MessageKind::Reveal)
            .skip(1);
        let b = TamperingTransport::with_fault(mesh.pop().unwrap(), spec);
        let a = mesh.pop().unwrap();
        a.send_to(1, MessageKind::Control, "ctl", &[5]).unwrap();
        a.send_to(1, MessageKind::Reveal, "open", &[10]).unwrap();
        a.send_to(1, MessageKind::Reveal, "open", &[10]).unwrap();
        a.send_to(1, MessageKind::Reveal, "open", &[10]).unwrap();
        assert_eq!(b.recv_from(0).unwrap().payload, vec![5]); // wrong kind
        assert_eq!(b.recv_from(0).unwrap().payload, vec![10]); // skipped
        assert_eq!(b.recv_from(0).unwrap().payload, vec![10 ^ 0xFF]); // tampered
        assert!(b.fired());
        assert_eq!(b.recv_from(0).unwrap().payload, vec![10]); // one-shot
    }

    #[test]
    fn offset_wraps_every_word() {
        let mut mesh = pair();
        let spec = FaultSpec::new(Fault::Offset { delta: 7 });
        let b = TamperingTransport::with_fault(mesh.pop().unwrap(), spec);
        let a = mesh.pop().unwrap();
        a.send_to(1, MessageKind::Reveal, "open", &[u64::MAX, 1])
            .unwrap();
        assert_eq!(b.recv_from(0).unwrap().payload, vec![6, 8]);
    }

    #[test]
    fn drop_surfaces_as_timeout() {
        let mut mesh = pair();
        let spec = FaultSpec::new(Fault::Drop).label_contains("open");
        let b = TamperingTransport::with_fault(mesh.pop().unwrap(), spec);
        let a = mesh.pop().unwrap();
        a.send_to(1, MessageKind::Reveal, "open", &[1]).unwrap();
        assert_eq!(b.recv_from(0), Err(TransportError::Timeout { from: 0 }));
        assert!(b.fired());
    }

    #[test]
    fn duplicate_replays_the_frame_before_the_next_one() {
        let mut mesh = pair();
        let spec = FaultSpec::new(Fault::Duplicate).from(0);
        let b = TamperingTransport::with_fault(mesh.pop().unwrap(), spec);
        let a = mesh.pop().unwrap();
        let t1 = StreamTag::new(1, 0);
        let t2 = StreamTag::new(1, 1);
        a.send_tagged(1, t1, MessageKind::Reveal, "open", &[11])
            .unwrap();
        a.send_tagged(1, t2, MessageKind::Reveal, "open", &[22])
            .unwrap();
        assert_eq!(b.recv_tagged(0, t1).unwrap().payload, vec![11]);
        // The replayed copy of the first frame shadows the second exchange:
        // its stale tag is exactly the desynchronization the protocol layer
        // must refuse to accept.
        let replay = b.recv_tagged(0, t2).unwrap();
        assert_eq!(replay.tag, t1);
        assert_eq!(replay.payload, vec![11]);
    }

    #[test]
    fn wrap_mesh_arms_per_party_specs() {
        let mesh = TamperingTransport::wrap_mesh(pair(), |p| {
            (p == 1).then(|| FaultSpec::new(Fault::Offset { delta: 1 }))
        });
        mesh[0]
            .send_to(1, MessageKind::Reveal, "open", &[1])
            .unwrap();
        mesh[1]
            .send_to(0, MessageKind::Reveal, "open", &[1])
            .unwrap();
        assert_eq!(mesh[0].recv_from(1).unwrap().payload, vec![1]);
        assert_eq!(mesh[1].recv_from(0).unwrap().payload, vec![2]);
    }
}
