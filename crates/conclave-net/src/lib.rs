//! Simulated multi-party network.
//!
//! MPC performance is dominated by communication: secret-sharing protocols
//! pay a network round per batch of multiplications, and garbled circuits
//! ship large wire-label state. The paper ran its parties on separate VMs;
//! here, the MPC backends run in-process and account their communication
//! through this crate, which converts message counts, bytes and rounds into
//! simulated elapsed time using a configurable latency/bandwidth model.

pub mod message;
pub mod model;
pub mod sim;
pub mod stats;

pub use message::{Message, MessageKind};
pub use model::NetworkModel;
pub use sim::SimNetwork;
pub use stats::{LinkStats, NetStats};
