//! Multi-party networking: a [`Transport`] abstraction with real and
//! simulated implementations.
//!
//! MPC performance is dominated by communication: secret-sharing protocols
//! pay a network round per batch of multiplications, and garbled circuits
//! ship large wire-label state. This crate provides both ways of accounting
//! for that:
//!
//! * the [`Transport`] trait ([`transport`]) moves typed [`Envelope`]s
//!   between parties for real — over an in-process channel mesh
//!   ([`ChannelTransport`]) or TCP sockets ([`TcpTransport`]) — recording
//!   *observed* per-link bytes and rounds into [`NetStats`]; and
//! * [`SimNetwork`] ([`sim`]) converts message counts, bytes and rounds into
//!   simulated elapsed time using a configurable latency/bandwidth
//!   [`NetworkModel`]. It implements [`Transport`] too (with in-memory
//!   loopback queues), so the cost-model path and the measured path share
//!   one interface.

// Also enforced workspace-wide via [workspace.lints]; stated here so the
// guarantee is visible at the crate root.
#![forbid(unsafe_code)]

pub mod mesh;
pub mod message;
pub mod model;
pub mod serve;
pub mod sim;
pub mod stats;
pub mod tamper;
pub mod transport;

pub use mesh::{BatchSums, Mesh, RoundBatcher};
pub use message::{Message, MessageKind};
pub use model::NetworkModel;
pub use sim::SimNetwork;
pub use stats::{LinkStats, NetStats};
pub use tamper::{Fault, FaultSpec, TamperingTransport};
pub use transport::{
    merge_mesh_stats, ChannelTransport, Envelope, StreamTag, TcpTransport, Transport,
    TransportError,
};
