//! Message metadata used for tracing simulated traffic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of payload a simulated message carries. Used for tracing and for
/// the leakage audit in `conclave-core` (e.g. "a reveal message was sent to a
/// party that is not authorized").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MessageKind {
    /// Secret shares moving into or between MPC endpoints.
    SecretShare,
    /// Cleartext data revealed to a specific party (e.g. the STP).
    Reveal,
    /// Cleartext data sent as part of a public (non-MPC) exchange.
    Cleartext,
    /// Protocol control traffic (round synchronization, triple distribution).
    Control,
    /// Masked protocol openings: values of the form `x - r` for a uniformly
    /// random mask `r` (Beaver `d`/`e` terms, circuit bit-decomposition
    /// openings). These carry data-plane bytes but reveal nothing about the
    /// underlying secrets; they are attributed separately from genuine
    /// [`MessageKind::Reveal`] traffic so per-kind byte stats distinguish
    /// "opened on purpose" from "opened because the protocol math says it is
    /// uniform".
    MaskedOpen,
    /// Offline-phase dealer traffic: correlated-randomness blocks (Beaver
    /// triples, bit-triples, daBits, input masks) streamed from a dealer to
    /// one party, plus the parties' block requests. Attributed separately so
    /// per-kind stats split the offline phase from online data-plane bytes.
    Dealer,
    /// SPDZ MAC-check traffic: commitments to and openings of the parties'
    /// MAC-difference shares at integrity-check boundaries. Carries no
    /// data-plane payload — only the zero-sum check values.
    MacCheck,
    /// Serving-layer request: an analyst submits an annotated SQL script to a
    /// `conclave-server` endpoint. The envelope label carries the tenant
    /// name; the payload is the UTF-8 query text packed into words.
    SubmitSql,
    /// Serving-layer response: the revealed result relations for a
    /// [`MessageKind::SubmitSql`] request.
    QueryResult,
    /// Serving-layer response: a typed error (admission rejection, SQL or
    /// compile failure, runtime abort) for a [`MessageKind::SubmitSql`]
    /// request.
    QueryError,
}

impl MessageKind {
    /// Stable one-byte wire code used by the TCP transport framing.
    pub fn code(self) -> u8 {
        match self {
            MessageKind::SecretShare => 0,
            MessageKind::Reveal => 1,
            MessageKind::Cleartext => 2,
            MessageKind::Control => 3,
            MessageKind::MaskedOpen => 4,
            MessageKind::Dealer => 5,
            MessageKind::MacCheck => 6,
            MessageKind::SubmitSql => 7,
            MessageKind::QueryResult => 8,
            MessageKind::QueryError => 9,
        }
    }

    /// Decodes a wire code produced by [`MessageKind::code`].
    pub fn from_code(code: u8) -> Option<MessageKind> {
        match code {
            0 => Some(MessageKind::SecretShare),
            1 => Some(MessageKind::Reveal),
            2 => Some(MessageKind::Cleartext),
            3 => Some(MessageKind::Control),
            4 => Some(MessageKind::MaskedOpen),
            5 => Some(MessageKind::Dealer),
            6 => Some(MessageKind::MacCheck),
            7 => Some(MessageKind::SubmitSql),
            8 => Some(MessageKind::QueryResult),
            9 => Some(MessageKind::QueryError),
            _ => None,
        }
    }
}

impl fmt::Display for MessageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MessageKind::SecretShare => "share",
            MessageKind::Reveal => "reveal",
            MessageKind::Cleartext => "cleartext",
            MessageKind::Control => "control",
            MessageKind::MaskedOpen => "masked-open",
            MessageKind::Dealer => "dealer",
            MessageKind::MacCheck => "mac-check",
            MessageKind::SubmitSql => "submit-sql",
            MessageKind::QueryResult => "query-result",
            MessageKind::QueryError => "query-error",
        };
        f.write_str(s)
    }
}

/// Record of one simulated message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Sending party id.
    pub from: u32,
    /// Receiving party id.
    pub to: u32,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Payload kind.
    pub kind: MessageKind,
    /// Free-form label (operator or protocol step name).
    pub label: String,
}

impl Message {
    /// Creates a message record.
    pub fn new(
        from: u32,
        to: u32,
        bytes: u64,
        kind: MessageKind,
        label: impl Into<String>,
    ) -> Self {
        Message {
            from,
            to,
            bytes,
            kind,
            label: label.into(),
        }
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "P{} -> P{} [{} B, {}] {}",
            self.from, self.to, self.bytes, self.kind, self.label
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_all_fields() {
        let m = Message::new(1, 2, 128, MessageKind::Reveal, "hybrid_join keys");
        let s = m.to_string();
        assert!(s.contains("P1"));
        assert!(s.contains("P2"));
        assert!(s.contains("128"));
        assert!(s.contains("reveal"));
        assert!(s.contains("hybrid_join"));
    }

    #[test]
    fn kind_display() {
        assert_eq!(MessageKind::SecretShare.to_string(), "share");
        assert_eq!(MessageKind::Cleartext.to_string(), "cleartext");
        assert_eq!(MessageKind::Control.to_string(), "control");
        assert_eq!(MessageKind::MaskedOpen.to_string(), "masked-open");
        assert_eq!(MessageKind::Dealer.to_string(), "dealer");
        assert_eq!(MessageKind::MacCheck.to_string(), "mac-check");
    }

    #[test]
    fn kind_codes_round_trip() {
        for kind in [
            MessageKind::SecretShare,
            MessageKind::Reveal,
            MessageKind::Cleartext,
            MessageKind::Control,
            MessageKind::MaskedOpen,
            MessageKind::Dealer,
            MessageKind::MacCheck,
            MessageKind::SubmitSql,
            MessageKind::QueryResult,
            MessageKind::QueryError,
        ] {
            assert_eq!(MessageKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(MessageKind::from_code(200), None);
    }
}
