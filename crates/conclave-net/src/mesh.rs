//! Query-lifetime transport meshes and round batching.
//!
//! The paper's central cost claim is that MPC wall-clock is dominated by
//! synchronous communication rounds, not bytes. Two consequences for the
//! transport layer live here:
//!
//! * [`Mesh`] — the full set of per-party endpoints, built **once per query**
//!   (one TCP handshake per link for the whole plan) and handed to the
//!   per-party workers. Rebuilding a mesh per plan step — the old behaviour —
//!   shows up as `NetStats::mesh_builds > 1`.
//! * [`RoundBatcher`] — staging for independent share openings so that
//!   everything a step has pending crosses the network in **one** synchronous
//!   exchange instead of one round per opening.

use crate::message::MessageKind;
use crate::transport::{ChannelTransport, StreamTag, TcpTransport, Transport, TransportError};

/// A query-lifetime transport mesh: one endpoint per party, indexed by party
/// id. Build it once with [`Mesh::channel`] / [`Mesh::tcp_localhost`] (or
/// wrap externally-connected endpoints with [`Mesh::from_endpoints`]), then
/// split it into its endpoints with [`Mesh::into_endpoints`] and hand one to
/// each party's worker thread for the lifetime of the query.
pub struct Mesh {
    endpoints: Vec<Box<dyn Transport>>,
}

impl Mesh {
    /// Builds an in-process channel mesh of `n` parties.
    pub fn channel(n: u32) -> Mesh {
        Mesh::from_endpoints(ChannelTransport::mesh(n))
    }

    /// Builds a localhost TCP mesh of `n` parties (one handshake per link).
    pub fn tcp_localhost(n: u32) -> Result<Mesh, TransportError> {
        Ok(Mesh::from_endpoints(TcpTransport::localhost_mesh(n)?))
    }

    /// Wraps pre-connected endpoints (ordered by party id) into a mesh.
    pub fn from_endpoints<T: Transport + 'static>(endpoints: Vec<T>) -> Mesh {
        for (i, e) in endpoints.iter().enumerate() {
            assert_eq!(
                e.party(),
                i as u32,
                "mesh endpoints must be ordered by party id"
            );
        }
        Mesh {
            endpoints: endpoints
                .into_iter()
                .map(|e| Box::new(e) as Box<dyn Transport>)
                .collect(),
        }
    }

    /// Number of parties in the mesh.
    pub fn parties(&self) -> u32 {
        self.endpoints.len() as u32
    }

    /// Splits the mesh into its per-party endpoints (ordered by party id),
    /// each of which can move to its party's worker thread.
    pub fn into_endpoints(self) -> Vec<Box<dyn Transport>> {
        self.endpoints
    }
}

/// Stages independent share-opening (or masked-value) vectors so they cross
/// the network in **one** synchronous exchange: every staged segment is
/// concatenated into a single broadcast, each peer's reply is summed
/// element-wise, and the per-segment sums are handed back. `k` independent
/// openings cost one round instead of `k`.
///
/// The staging buffer is retained across exchanges, so steady-state use
/// allocates only the returned sums.
#[derive(Debug, Default)]
pub struct RoundBatcher {
    staged: Vec<u64>,
    ends: Vec<usize>,
}

impl RoundBatcher {
    /// Creates an empty batcher.
    pub fn new() -> RoundBatcher {
        RoundBatcher::default()
    }

    /// Stages one segment of words for the next exchange; returns its
    /// segment index into the eventual [`BatchSums`].
    pub fn stage(&mut self, words: &[u64]) -> usize {
        self.staged.extend_from_slice(words);
        self.ends.push(self.staged.len());
        self.ends.len() - 1
    }

    /// Number of segments currently staged.
    pub fn segments(&self) -> usize {
        self.ends.len()
    }

    /// Whether nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Runs the batched exchange on stream `tag`: broadcasts all staged
    /// words, receives every peer's broadcast, sums element-wise (wrapping,
    /// i.e. in `Z_{2^64}`), and returns the segment-addressable sums. Records
    /// exactly **one** round regardless of how many segments were staged; a
    /// batcher with nothing staged exchanges nothing and records no round.
    pub fn exchange_summed(
        &mut self,
        net: &dyn Transport,
        tag: StreamTag,
        kind: MessageKind,
        label: &str,
    ) -> Result<BatchSums, TransportError> {
        let mut words = std::mem::take(&mut self.staged);
        let ends = std::mem::take(&mut self.ends);
        if ends.is_empty() {
            return Ok(BatchSums { words, ends });
        }
        net.send_all_tagged(tag, kind, label, &words)?;
        for peer in 0..net.parties() {
            if peer == net.party() {
                continue;
            }
            let env = net.recv_tagged(peer, tag)?;
            if env.payload.len() != words.len() {
                return Err(TransportError::Io(format!(
                    "batched exchange {tag} length mismatch from P{peer}: \
                     got {} words, want {}",
                    env.payload.len(),
                    words.len()
                )));
            }
            for (acc, w) in words.iter_mut().zip(&env.payload) {
                *acc = acc.wrapping_add(*w);
            }
        }
        net.record_round();
        Ok(BatchSums { words, ends })
    }
}

/// The element-wise sums of one batched exchange, addressable by the segment
/// indices [`RoundBatcher::stage`] returned.
#[derive(Debug)]
pub struct BatchSums {
    words: Vec<u64>,
    ends: Vec<usize>,
}

impl BatchSums {
    /// Number of segments in the exchange.
    pub fn segments(&self) -> usize {
        self.ends.len()
    }

    /// The summed words of segment `i`.
    pub fn segment(&self, i: usize) -> &[u64] {
        let start = if i == 0 { 0 } else { self.ends[i - 1] };
        &self.words[start..self.ends[i]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_builds_once_and_splits_into_endpoints() {
        let mesh = Mesh::channel(3);
        assert_eq!(mesh.parties(), 3);
        let endpoints = mesh.into_endpoints();
        assert_eq!(endpoints.len(), 3);
        for (i, e) in endpoints.iter().enumerate() {
            assert_eq!(e.party(), i as u32);
            assert_eq!(e.stats().mesh_builds, 1);
        }
    }

    #[test]
    fn batched_exchange_sums_per_segment_in_one_round() {
        let endpoints = Mesh::channel(3).into_endpoints();
        let outs: Vec<(Vec<Vec<u64>>, crate::NetStats)> = std::thread::scope(|s| {
            let handles: Vec<_> = endpoints
                .into_iter()
                .map(|net| {
                    s.spawn(move || {
                        let p = u64::from(net.party());
                        let mut batcher = RoundBatcher::new();
                        // Two independent "openings" staged into one round.
                        let a = batcher.stage(&[p, 10 + p]);
                        let b = batcher.stage(&[100 * (p + 1)]);
                        let sums = batcher
                            .exchange_summed(
                                net.as_ref(),
                                StreamTag::new(7, 0),
                                MessageKind::Reveal,
                                "test",
                            )
                            .unwrap();
                        assert!(batcher.is_empty(), "staging cleared after exchange");
                        (
                            vec![sums.segment(a).to_vec(), sums.segment(b).to_vec()],
                            net.stats(),
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Sums over parties 0+1+2: [0+1+2, 10·3+3] and [100+200+300].
        for (out, stats) in &outs {
            assert_eq!(out[0], vec![3, 33]);
            assert_eq!(out[1], vec![600]);
            assert_eq!(stats.rounds, 1, "k segments still cost one round");
        }
    }

    #[test]
    fn empty_batcher_exchanges_nothing() {
        let endpoints = Mesh::channel(2).into_endpoints();
        let mut batcher = RoundBatcher::new();
        let sums = batcher
            .exchange_summed(
                endpoints[0].as_ref(),
                StreamTag::default(),
                MessageKind::Reveal,
                "noop",
            )
            .unwrap();
        assert_eq!(sums.segments(), 0);
        assert_eq!(endpoints[0].stats().rounds, 0);
        assert_eq!(endpoints[0].stats().total_messages(), 0);
    }
}
