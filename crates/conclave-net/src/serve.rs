//! Serving-layer framing: the `SubmitSql` / `QueryResult` / `QueryError`
//! envelope protocol spoken between an analyst client and a
//! `conclave-server` endpoint, plus a generic listener loop.
//!
//! The protocol runs over an ordinary two-endpoint [`Transport`] link (party
//! 0 = client, party 1 = server), so it works unchanged over in-process
//! channels and TCP. Frames are:
//!
//! * [`MessageKind::SubmitSql`] — label carries the tenant name, payload the
//!   UTF-8 query text packed into words by [`pack_text`].
//! * [`MessageKind::QueryResult`] — payload is an opaque word encoding of the
//!   result relations (the serving crate owns that codec; this module only
//!   frames it).
//! * [`MessageKind::QueryError`] — payload word 0 is a numeric error code
//!   owned by the serving crate, the rest is a packed human-readable message.
//!
//! This module deliberately knows nothing about SQL, plans or relations: the
//! server passes a handler closure to [`serve_queries`], keeping the
//! dependency direction `conclave-server → conclave-net`.

use crate::message::MessageKind;
use crate::transport::{Envelope, Transport, TransportError};

/// Error code a listener uses when the request frame itself is malformed
/// (bad packing, wrong kind). Serving crates start their own codes at 1.
pub const WIRE_ERR_MALFORMED: u64 = 0;

/// Packs UTF-8 text into words: word 0 is the byte length, followed by the
/// bytes in little-endian order, eight per word.
pub fn pack_text(text: &str) -> Vec<u64> {
    let bytes = text.as_bytes();
    let mut words = Vec::with_capacity(1 + bytes.len().div_ceil(8));
    words.push(bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut buf = [0u8; 8];
        buf[..chunk.len()].copy_from_slice(chunk);
        words.push(u64::from_le_bytes(buf));
    }
    words
}

/// Reverses [`pack_text`]. Returns a description of the defect on malformed
/// input (truncated payload, length mismatch, invalid UTF-8).
pub fn unpack_text(words: &[u64]) -> Result<String, String> {
    let Some((&len, body)) = words.split_first() else {
        return Err("empty text payload".into());
    };
    let len = len as usize;
    if body.len() != len.div_ceil(8) {
        return Err(format!(
            "text payload of {} bytes needs {} words, got {}",
            len,
            len.div_ceil(8),
            body.len()
        ));
    }
    let mut bytes = Vec::with_capacity(len);
    for word in body {
        bytes.extend_from_slice(&word.to_le_bytes());
    }
    bytes.truncate(len);
    String::from_utf8(bytes).map_err(|e| format!("text payload is not UTF-8: {e}"))
}

/// Consumes text alongside a leading code word: the inverse of building a
/// `QueryError` payload (`[code, packed message…]`).
pub fn unpack_error(words: &[u64]) -> Result<(u64, String), String> {
    let Some((&code, rest)) = words.split_first() else {
        return Err("empty error payload".into());
    };
    Ok((code, unpack_text(rest)?))
}

/// Serves `SubmitSql` requests arriving on `link` until the peer disconnects.
///
/// For each request, `handler(tenant, sql)` either returns the result payload
/// words (sent back as [`MessageKind::QueryResult`]) or a `(code, message)`
/// error (sent back as [`MessageKind::QueryError`]). Receive timeouts are
/// idle polls, not failures; a clean disconnect ends the loop with `Ok(())`.
pub fn serve_queries<F>(link: &dyn Transport, mut handler: F) -> Result<(), TransportError>
where
    F: FnMut(&str, &str) -> Result<Vec<u64>, (u64, String)>,
{
    let peer = 1 - link.party();
    loop {
        let env = match link.recv_from(peer) {
            Ok(env) => env,
            Err(TransportError::Timeout { .. }) => continue,
            Err(TransportError::Disconnected { .. }) => return Ok(()),
            Err(e) => return Err(e),
        };
        let reply = match request_sql(&env) {
            Ok(sql) => handler(&env.label, &sql),
            Err(msg) => Err((WIRE_ERR_MALFORMED, msg)),
        };
        match reply {
            Ok(words) => link.send_to(peer, MessageKind::QueryResult, &env.label, &words)?,
            Err((code, message)) => {
                let mut words = vec![code];
                words.extend(pack_text(&message));
                link.send_to(peer, MessageKind::QueryError, &env.label, &words)?;
            }
        }
    }
}

fn request_sql(env: &Envelope) -> Result<String, String> {
    if env.kind != MessageKind::SubmitSql {
        return Err(format!("expected a submit-sql frame, got {}", env.kind));
    }
    unpack_text(&env.payload)
}

/// Client side of [`serve_queries`]: submits one query for `tenant` and
/// blocks until the matching `QueryResult`/`QueryError` envelope arrives
/// (receive timeouts are treated as "still running", not failures).
pub fn submit_sql(
    link: &dyn Transport,
    tenant: &str,
    sql: &str,
) -> Result<Envelope, TransportError> {
    let peer = 1 - link.party();
    link.send_to(peer, MessageKind::SubmitSql, tenant, &pack_text(sql))?;
    loop {
        match link.recv_from(peer) {
            Ok(env) => return Ok(env),
            Err(TransportError::Timeout { .. }) => continue,
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::transport::ChannelTransport;

    #[test]
    fn text_packing_round_trips() {
        for text in [
            "",
            "x",
            "exactly8",
            "SELECT a FROM t REVEAL TO p1; -- ünïcode",
        ] {
            let words = pack_text(text);
            assert_eq!(unpack_text(&words).unwrap(), text);
        }
        assert!(unpack_text(&[]).is_err());
        assert!(unpack_text(&[9, 0]).is_err()); // 9 bytes need 2 words
        assert!(unpack_text(&[2, 0xFFFF]).is_err()); // invalid UTF-8
    }

    #[test]
    fn serve_loop_round_trips_results_and_errors() {
        let mut mesh = ChannelTransport::mesh(2);
        let server_end = mesh.pop().unwrap();
        let client = mesh.pop().unwrap();
        let server = std::thread::spawn(move || {
            serve_queries(&server_end, |tenant, sql| {
                if tenant == "acme" {
                    Ok(pack_text(&format!("ran: {sql}")))
                } else {
                    Err((7, format!("unknown tenant {tenant}")))
                }
            })
        });
        let ok = submit_sql(&client, "acme", "SELECT 1").unwrap();
        assert_eq!(ok.kind, MessageKind::QueryResult);
        assert_eq!(unpack_text(&ok.payload).unwrap(), "ran: SELECT 1");
        let err = submit_sql(&client, "ghost", "SELECT 1").unwrap();
        assert_eq!(err.kind, MessageKind::QueryError);
        let (code, msg) = unpack_error(&err.payload).unwrap();
        assert_eq!(code, 7);
        assert!(msg.contains("ghost"));
        drop(client);
        server.join().unwrap().unwrap();
    }
}
