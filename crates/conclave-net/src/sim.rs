//! The simulated network shared by all MPC endpoints of one computation.

use crate::message::{Message, MessageKind};
use crate::model::NetworkModel;
use crate::stats::NetStats;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// A thread-safe, shared simulated network.
///
/// MPC backends call [`SimNetwork::send`] and [`SimNetwork::rounds`] as they
/// execute; the network accumulates traffic statistics and the simulated time
/// spent communicating. Cloning the handle shares the underlying state.
#[derive(Debug, Clone)]
pub struct SimNetwork {
    inner: Arc<Mutex<Inner>>,
    model: NetworkModel,
    trace_limit: usize,
}

#[derive(Debug, Default)]
struct Inner {
    stats: NetStats,
    elapsed: Duration,
    trace: Vec<Message>,
}

impl SimNetwork {
    /// Creates a network with the given model. At most `trace_limit` message
    /// records are retained for inspection (counters are always exact).
    pub fn new(model: NetworkModel) -> Self {
        SimNetwork {
            inner: Arc::new(Mutex::new(Inner::default())),
            model,
            trace_limit: 10_000,
        }
    }

    /// Creates a LAN network (the default deployment in the paper).
    pub fn lan() -> Self {
        SimNetwork::new(NetworkModel::lan())
    }

    /// The network model in use.
    pub fn model(&self) -> NetworkModel {
        self.model
    }

    /// Records a message of `bytes` from one party to another and advances
    /// simulated time by its transfer time. Returns that transfer time.
    pub fn send(&self, from: u32, to: u32, bytes: u64, kind: MessageKind, label: &str) -> Duration {
        let t = self.model.transfer_time(bytes);
        let mut inner = self.inner.lock();
        inner.stats.record(from, to, bytes, kind);
        inner.elapsed += t;
        if inner.trace.len() < self.trace_limit {
            inner.trace.push(Message::new(from, to, bytes, kind, label));
        }
        t
    }

    /// Records a broadcast from one party to every other participant.
    pub fn broadcast(
        &self,
        from: u32,
        to: &[u32],
        bytes: u64,
        kind: MessageKind,
        label: &str,
    ) -> Duration {
        let mut total = Duration::ZERO;
        for &p in to {
            if p != from {
                // Broadcasts to different receivers proceed in parallel, so
                // elapsed time is the maximum, but stats count every copy.
                let t = self.send(from, p, bytes, kind, label);
                total = total.max(t);
            }
        }
        total
    }

    /// Records `rounds` synchronous protocol rounds moving `bytes_per_round`
    /// per party pair among `parties` parties, and advances simulated time.
    pub fn rounds(&self, parties: u32, rounds: u64, bytes_per_round: u64, label: &str) -> Duration {
        let t = self.model.round_time(rounds, bytes_per_round);
        let mut inner = self.inner.lock();
        inner.stats.record_rounds(rounds);
        // Each round, every party sends to every other party.
        let pairs = u64::from(parties.saturating_sub(1)) * u64::from(parties);
        let per_pair_bytes = bytes_per_round;
        for _ in 0..rounds.min(1) {
            // Only trace a single representative message per call to bound
            // memory; byte counters below account for everything.
            if inner.trace.len() < self.trace_limit {
                inner.trace.push(Message::new(
                    0,
                    0,
                    bytes_per_round,
                    MessageKind::Control,
                    label,
                ));
            }
        }
        let link = inner.stats.links.entry((0, 0)).or_default();
        link.messages += rounds * pairs.max(1);
        link.bytes += rounds * per_pair_bytes * pairs.max(1);
        *inner
            .stats
            .bytes_by_kind
            .entry(MessageKind::Control.to_string())
            .or_default() += rounds * per_pair_bytes * pairs.max(1);
        inner.elapsed += t;
        t
    }

    /// Snapshot of the traffic statistics.
    pub fn stats(&self) -> NetStats {
        self.inner.lock().stats.clone()
    }

    /// Simulated time spent on communication so far.
    pub fn elapsed(&self) -> Duration {
        self.inner.lock().elapsed
    }

    /// Recorded message trace (bounded).
    pub fn trace(&self) -> Vec<Message> {
        self.inner.lock().trace.clone()
    }

    /// Resets statistics, elapsed time and trace.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        *inner = Inner::default();
    }
}

impl Default for SimNetwork {
    fn default() -> Self {
        SimNetwork::lan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_accumulates_stats_and_time() {
        let net = SimNetwork::lan();
        net.send(1, 2, 1_000, MessageKind::SecretShare, "shares");
        net.send(2, 3, 2_000, MessageKind::Reveal, "reveal");
        let stats = net.stats();
        assert_eq!(stats.total_bytes(), 3_000);
        assert_eq!(stats.total_messages(), 2);
        assert!(net.elapsed() > Duration::ZERO);
        assert_eq!(net.trace().len(), 2);
        assert_eq!(net.trace()[0].label, "shares");
    }

    #[test]
    fn broadcast_skips_self_and_counts_all_receivers() {
        let net = SimNetwork::lan();
        net.broadcast(1, &[1, 2, 3], 100, MessageKind::Cleartext, "open");
        let stats = net.stats();
        assert_eq!(stats.total_messages(), 2);
        assert_eq!(stats.bytes_to(2), 100);
        assert_eq!(stats.bytes_to(1), 0);
    }

    #[test]
    fn rounds_advance_time_linearly() {
        let net = SimNetwork::lan();
        let t1 = net.rounds(3, 10, 1_000, "mult batch");
        let t2 = net.rounds(3, 20, 1_000, "mult batch");
        assert!((t2.as_secs_f64() / t1.as_secs_f64() - 2.0).abs() < 1e-9);
        assert_eq!(net.stats().rounds, 30);
        assert!(net.stats().total_bytes() > 0);
    }

    #[test]
    fn clones_share_state_and_reset_clears() {
        let net = SimNetwork::lan();
        let clone = net.clone();
        clone.send(1, 2, 10, MessageKind::Control, "x");
        assert_eq!(net.stats().total_messages(), 1);
        net.reset();
        assert_eq!(clone.stats().total_messages(), 0);
        assert_eq!(clone.elapsed(), Duration::ZERO);
    }

    #[test]
    fn model_accessor() {
        let net = SimNetwork::new(NetworkModel::wan());
        assert_eq!(net.model(), NetworkModel::wan());
    }
}
