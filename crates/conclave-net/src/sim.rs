//! The simulated network shared by all MPC endpoints of one computation.
//!
//! [`SimNetwork`] converts message counts, bytes and rounds into simulated
//! elapsed time via a [`NetworkModel`]. It also implements the [`Transport`]
//! trait (backed by in-memory loopback queues), so protocol code written
//! against `&dyn Transport` can run over the cost model and over the real
//! channel/TCP meshes through one interface: obtain per-party endpoints with
//! [`SimNetwork::endpoint`].

use crate::message::{Message, MessageKind};
use crate::model::NetworkModel;
use crate::stats::NetStats;
use crate::transport::{Envelope, Transport, TransportError, DEFAULT_RECV_TIMEOUT};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A thread-safe, shared simulated network.
///
/// MPC backends call [`SimNetwork::send`] and [`SimNetwork::rounds`] as they
/// execute; the network accumulates traffic statistics and the simulated time
/// spent communicating. Cloning the handle shares the underlying state.
#[derive(Debug, Clone)]
pub struct SimNetwork {
    inner: Arc<Mutex<Inner>>,
    model: NetworkModel,
    trace_limit: usize,
    /// Party id this handle speaks as when used through [`Transport`].
    local_party: u32,
    /// Mesh size when used through [`Transport`] (0 = not an endpoint).
    num_parties: u32,
}

#[derive(Debug, Default)]
struct Inner {
    stats: NetStats,
    elapsed: Duration,
    trace: Vec<Message>,
    /// Loopback payload queues keyed by `(from, to)`, for the
    /// [`Transport`] implementation.
    queues: BTreeMap<(u32, u32), VecDeque<Envelope>>,
}

impl SimNetwork {
    /// Creates a network with the given model. At most `trace_limit` message
    /// records are retained for inspection (counters are always exact).
    pub fn new(model: NetworkModel) -> Self {
        SimNetwork {
            inner: Arc::new(Mutex::new(Inner::default())),
            model,
            trace_limit: 10_000,
            local_party: 0,
            num_parties: 0,
        }
    }

    /// Creates a LAN network (the default deployment in the paper).
    pub fn lan() -> Self {
        SimNetwork::new(NetworkModel::lan())
    }

    /// Returns a handle bound to a party identity, usable as a
    /// [`Transport`] endpoint in an `n`-party mesh. All endpoints share this
    /// network's counters, simulated clock and loopback queues.
    pub fn endpoint(&self, party: u32, parties: u32) -> SimNetwork {
        assert!(party < parties, "endpoint party id out of range");
        SimNetwork {
            inner: self.inner.clone(),
            model: self.model,
            trace_limit: self.trace_limit,
            local_party: party,
            num_parties: parties,
        }
    }

    /// The network model in use.
    pub fn model(&self) -> NetworkModel {
        self.model
    }

    /// Records a message of `bytes` from one party to another and advances
    /// simulated time by its transfer time. Returns that transfer time.
    pub fn send(&self, from: u32, to: u32, bytes: u64, kind: MessageKind, label: &str) -> Duration {
        let t = self.model.transfer_time(bytes);
        let mut inner = self.inner.lock();
        inner.stats.record(from, to, bytes, kind);
        inner.elapsed += t;
        if inner.trace.len() < self.trace_limit {
            inner.trace.push(Message::new(from, to, bytes, kind, label));
        }
        t
    }

    /// Records a broadcast from one party to every other participant.
    pub fn broadcast(
        &self,
        from: u32,
        to: &[u32],
        bytes: u64,
        kind: MessageKind,
        label: &str,
    ) -> Duration {
        let mut total = Duration::ZERO;
        for &p in to {
            if p != from {
                // Broadcasts to different receivers proceed in parallel, so
                // elapsed time is the maximum, but stats count every copy.
                let t = self.send(from, p, bytes, kind, label);
                total = total.max(t);
            }
        }
        total
    }

    /// Records `rounds` synchronous protocol rounds moving `bytes_per_round`
    /// per party pair among `parties` parties, and advances simulated time.
    pub fn rounds(&self, parties: u32, rounds: u64, bytes_per_round: u64, label: &str) -> Duration {
        let t = self.model.round_time(rounds, bytes_per_round);
        let mut inner = self.inner.lock();
        inner.stats.record_rounds(rounds);
        // Each round, every party sends to every other party.
        let pairs = u64::from(parties.saturating_sub(1)) * u64::from(parties);
        let per_pair_bytes = bytes_per_round;
        for _ in 0..rounds.min(1) {
            // Only trace a single representative message per call to bound
            // memory; byte counters below account for everything.
            if inner.trace.len() < self.trace_limit {
                inner.trace.push(Message::new(
                    0,
                    0,
                    bytes_per_round,
                    MessageKind::Control,
                    label,
                ));
            }
        }
        let link = inner.stats.links.entry((0, 0)).or_default();
        link.messages += rounds * pairs.max(1);
        link.bytes += rounds * per_pair_bytes * pairs.max(1);
        *inner
            .stats
            .bytes_by_kind
            .entry(MessageKind::Control.to_string())
            .or_default() += rounds * per_pair_bytes * pairs.max(1);
        inner.elapsed += t;
        t
    }

    /// Snapshot of the traffic statistics.
    pub fn stats(&self) -> NetStats {
        self.inner.lock().stats.clone()
    }

    /// Simulated time spent on communication so far.
    pub fn elapsed(&self) -> Duration {
        self.inner.lock().elapsed
    }

    /// Recorded message trace (bounded).
    pub fn trace(&self) -> Vec<Message> {
        self.inner.lock().trace.clone()
    }

    /// Resets statistics, elapsed time and trace.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        *inner = Inner::default();
    }
}

impl Default for SimNetwork {
    fn default() -> Self {
        SimNetwork::lan()
    }
}

/// [`SimNetwork`] as a [`Transport`]: sends are charged to the cost model
/// *and* enqueued on an in-memory loopback queue, so protocol code written
/// against `&dyn Transport` runs unchanged over the simulator — with modeled
/// elapsed time instead of wall-clock network time. Endpoints must be
/// created with [`SimNetwork::endpoint`].
impl Transport for SimNetwork {
    fn party(&self) -> u32 {
        self.local_party
    }

    fn parties(&self) -> u32 {
        self.num_parties
    }

    fn send_to(
        &self,
        to: u32,
        kind: MessageKind,
        label: &str,
        payload: &[u64],
    ) -> Result<(), TransportError> {
        if self.num_parties == 0 || to >= self.num_parties || to == self.local_party {
            return Err(TransportError::InvalidPeer { party: to });
        }
        let env = Envelope::new(self.local_party, kind, label, payload.to_vec());
        // Charge the cost model exactly as the in-process accounting path
        // does, then deliver the payload for real.
        self.send(self.local_party, to, env.wire_bytes(), kind, label);
        self.inner
            .lock()
            .queues
            .entry((self.local_party, to))
            .or_default()
            .push_back(env);
        Ok(())
    }

    fn recv_from(&self, from: u32) -> Result<Envelope, TransportError> {
        if self.num_parties == 0 || from >= self.num_parties || from == self.local_party {
            return Err(TransportError::InvalidPeer { party: from });
        }
        let deadline = Instant::now() + DEFAULT_RECV_TIMEOUT;
        loop {
            {
                let mut inner = self.inner.lock();
                if let Some(env) = inner
                    .queues
                    .get_mut(&(from, self.local_party))
                    .and_then(VecDeque::pop_front)
                {
                    return Ok(env);
                }
            }
            if Instant::now() >= deadline {
                return Err(TransportError::Timeout { from });
            }
            // Back off briefly between polls so blocked endpoints don't pin
            // a core for the whole timeout window.
            std::thread::sleep(Duration::from_micros(50));
        }
    }

    fn record_round(&self) {
        let mut inner = self.inner.lock();
        inner.stats.record_rounds(1);
        // One synchronous round costs one latency beat in the model.
        let t = self.model.round_time(1, 0);
        inner.elapsed += t;
    }

    fn stats(&self) -> NetStats {
        SimNetwork::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_accumulates_stats_and_time() {
        let net = SimNetwork::lan();
        net.send(1, 2, 1_000, MessageKind::SecretShare, "shares");
        net.send(2, 3, 2_000, MessageKind::Reveal, "reveal");
        let stats = net.stats();
        assert_eq!(stats.total_bytes(), 3_000);
        assert_eq!(stats.total_messages(), 2);
        assert!(net.elapsed() > Duration::ZERO);
        assert_eq!(net.trace().len(), 2);
        assert_eq!(net.trace()[0].label, "shares");
    }

    #[test]
    fn broadcast_skips_self_and_counts_all_receivers() {
        let net = SimNetwork::lan();
        net.broadcast(1, &[1, 2, 3], 100, MessageKind::Cleartext, "open");
        let stats = net.stats();
        assert_eq!(stats.total_messages(), 2);
        assert_eq!(stats.bytes_to(2), 100);
        assert_eq!(stats.bytes_to(1), 0);
    }

    #[test]
    fn rounds_advance_time_linearly() {
        let net = SimNetwork::lan();
        let t1 = net.rounds(3, 10, 1_000, "mult batch");
        let t2 = net.rounds(3, 20, 1_000, "mult batch");
        assert!((t2.as_secs_f64() / t1.as_secs_f64() - 2.0).abs() < 1e-9);
        assert_eq!(net.stats().rounds, 30);
        assert!(net.stats().total_bytes() > 0);
    }

    #[test]
    fn clones_share_state_and_reset_clears() {
        let net = SimNetwork::lan();
        let clone = net.clone();
        clone.send(1, 2, 10, MessageKind::Control, "x");
        assert_eq!(net.stats().total_messages(), 1);
        net.reset();
        assert_eq!(clone.stats().total_messages(), 0);
        assert_eq!(clone.elapsed(), Duration::ZERO);
    }

    #[test]
    fn model_accessor() {
        let net = SimNetwork::new(NetworkModel::wan());
        assert_eq!(net.model(), NetworkModel::wan());
    }

    #[test]
    fn sim_network_acts_as_a_transport_endpoint() {
        let net = SimNetwork::lan();
        let a = net.endpoint(0, 2);
        let b = net.endpoint(1, 2);
        a.send_to(1, MessageKind::SecretShare, "shares", &[5, 6])
            .unwrap();
        let env = b.recv_from(0).unwrap();
        assert_eq!(env.payload, vec![5, 6]);
        assert_eq!(env.from, 0);
        // The cost model was charged for the delivered bytes...
        assert!(net.elapsed() > Duration::ZERO);
        assert_eq!(net.stats().total_messages(), 1);
        // ...and rounds advance the simulated clock by a latency beat.
        let before = net.elapsed();
        Transport::record_round(&b);
        assert_eq!(net.stats().rounds, 1);
        assert!(net.elapsed() > before);
        // Endpoint misuse is rejected.
        assert!(a.send_to(0, MessageKind::Control, "", &[]).is_err());
        assert!(a.recv_from(2).is_err());
        // A non-endpoint handle refuses transport sends.
        assert!(net.send_to(1, MessageKind::Control, "", &[]).is_err());
    }

    #[test]
    fn sim_transport_send_all_and_cross_thread_delivery() {
        let net = SimNetwork::lan();
        let endpoints: Vec<SimNetwork> = (0..3).map(|p| net.endpoint(p, 3)).collect();
        let [e0, e1, e2]: [SimNetwork; 3] = endpoints.try_into().ok().unwrap();
        std::thread::scope(|s| {
            s.spawn(|| e0.send_all(MessageKind::Control, "go", &[1]).unwrap());
            s.spawn(|| assert_eq!(e1.recv_from(0).unwrap().payload, vec![1]));
            s.spawn(|| assert_eq!(e2.recv_from(0).unwrap().payload, vec![1]));
        });
        assert_eq!(net.stats().total_messages(), 2);
    }
}
