//! Aggregated traffic statistics.

use crate::message::MessageKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Traffic counters for one directed link (from → to).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Number of messages sent.
    pub messages: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
}

/// Traffic statistics for the whole computation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetStats {
    /// Per-link counters keyed by `(from, to)`.
    pub links: BTreeMap<(u32, u32), LinkStats>,
    /// Per-kind byte counters.
    pub bytes_by_kind: BTreeMap<String, u64>,
    /// Number of synchronous protocol rounds recorded.
    pub rounds: u64,
    /// Number of transport meshes constructed (TCP handshakes / channel
    /// allocation). A plan-scoped runtime builds exactly one mesh per query;
    /// a value above one means per-step meshes crept back in.
    pub mesh_builds: u64,
}

impl NetStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        NetStats::default()
    }

    /// Records one message.
    pub fn record(&mut self, from: u32, to: u32, bytes: u64, kind: MessageKind) {
        let link = self.links.entry((from, to)).or_default();
        link.messages += 1;
        link.bytes += bytes;
        *self.bytes_by_kind.entry(kind.to_string()).or_default() += bytes;
    }

    /// Records `rounds` synchronous protocol rounds.
    pub fn record_rounds(&mut self, rounds: u64) {
        self.rounds += rounds;
    }

    /// Records the construction of one transport mesh this endpoint belongs
    /// to (called once per endpoint by the mesh constructors; merging the
    /// endpoints of one mesh keeps the count at one, see
    /// [`crate::merge_mesh_stats`]).
    pub fn record_mesh_build(&mut self) {
        self.mesh_builds += 1;
    }

    /// Total bytes across all links.
    pub fn total_bytes(&self) -> u64 {
        self.links.values().map(|l| l.bytes).sum()
    }

    /// Total messages across all links.
    pub fn total_messages(&self) -> u64 {
        self.links.values().map(|l| l.messages).sum()
    }

    /// Bytes received by a given party.
    pub fn bytes_to(&self, party: u32) -> u64 {
        self.links
            .iter()
            .filter(|((_, to), _)| *to == party)
            .map(|(_, l)| l.bytes)
            .sum()
    }

    /// Bytes sent with a given kind label.
    pub fn bytes_of_kind(&self, kind: MessageKind) -> u64 {
        self.bytes_by_kind
            .get(&kind.to_string())
            .copied()
            .unwrap_or(0)
    }

    /// Merges another statistics object into this one.
    pub fn merge(&mut self, other: &NetStats) {
        for (k, l) in &other.links {
            let entry = self.links.entry(*k).or_default();
            entry.messages += l.messages;
            entry.bytes += l.bytes;
        }
        for (k, b) in &other.bytes_by_kind {
            *self.bytes_by_kind.entry(k.clone()).or_default() += b;
        }
        self.rounds += other.rounds;
        self.mesh_builds += other.mesh_builds;
    }

    /// Returns the traffic recorded since `baseline` — the per-counter
    /// difference `self − baseline`, saturating at zero. Used by the
    /// multi-query party runtime to attribute a long-lived mesh's cumulative
    /// counters to individual queries: snapshot at query start, `since` at
    /// query end.
    pub fn since(&self, baseline: &NetStats) -> NetStats {
        let mut delta = NetStats::new();
        for (k, l) in &self.links {
            let base = baseline.links.get(k).copied().unwrap_or_default();
            let diff = LinkStats {
                messages: l.messages.saturating_sub(base.messages),
                bytes: l.bytes.saturating_sub(base.bytes),
            };
            if diff.messages > 0 || diff.bytes > 0 {
                delta.links.insert(*k, diff);
            }
        }
        for (k, b) in &self.bytes_by_kind {
            let base = baseline.bytes_by_kind.get(k).copied().unwrap_or(0);
            if *b > base {
                delta.bytes_by_kind.insert(k.clone(), b - base);
            }
        }
        delta.rounds = self.rounds.saturating_sub(baseline.rounds);
        delta.mesh_builds = self.mesh_builds.saturating_sub(baseline.mesh_builds);
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut s = NetStats::new();
        s.record(1, 2, 100, MessageKind::SecretShare);
        s.record(1, 2, 50, MessageKind::SecretShare);
        s.record(2, 1, 10, MessageKind::Reveal);
        s.record_rounds(3);
        assert_eq!(s.total_bytes(), 160);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.bytes_to(1), 10);
        assert_eq!(s.bytes_to(2), 150);
        assert_eq!(s.bytes_of_kind(MessageKind::SecretShare), 150);
        assert_eq!(s.bytes_of_kind(MessageKind::Cleartext), 0);
        assert_eq!(s.rounds, 3);
        assert_eq!(s.links[&(1, 2)].messages, 2);
    }

    #[test]
    fn merge_combines_counters() {
        let mut a = NetStats::new();
        a.record(1, 2, 100, MessageKind::Control);
        a.record_rounds(1);
        let mut b = NetStats::new();
        b.record(1, 2, 50, MessageKind::Control);
        b.record(3, 1, 5, MessageKind::Reveal);
        b.record_rounds(2);
        a.merge(&b);
        assert_eq!(a.total_bytes(), 155);
        assert_eq!(a.links[&(1, 2)].bytes, 150);
        assert_eq!(a.rounds, 3);
    }

    #[test]
    fn since_subtracts_a_baseline() {
        let mut s = NetStats::new();
        s.record(0, 1, 100, MessageKind::SecretShare);
        s.record_rounds(2);
        s.record_mesh_build();
        let baseline = s.clone();
        // since(self) is empty.
        let none = s.since(&baseline);
        assert_eq!(none.total_bytes(), 0);
        assert_eq!(none.rounds, 0);
        assert_eq!(none.mesh_builds, 0);
        assert!(none.links.is_empty());
        // Only post-baseline traffic survives.
        s.record(0, 1, 40, MessageKind::SecretShare);
        s.record(1, 0, 7, MessageKind::Reveal);
        s.record_rounds(5);
        let delta = s.since(&baseline);
        assert_eq!(delta.links[&(0, 1)].bytes, 40);
        assert_eq!(delta.links[&(0, 1)].messages, 1);
        assert_eq!(delta.links[&(1, 0)].bytes, 7);
        assert_eq!(delta.bytes_of_kind(MessageKind::SecretShare), 40);
        assert_eq!(delta.rounds, 5);
        assert_eq!(delta.mesh_builds, 0);
    }
}
