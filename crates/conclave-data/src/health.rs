//! Synthetic HealthLNK-like clinical data for the SMCQL comparison (§7.4).
//!
//! Two hospitals each hold `diagnoses(patientID, diagnosis)` and
//! `medications(patientID, medication)` relations. The *aspirin count* query
//! joins diagnoses and medications on (public) patient IDs, filters for a
//! heart-disease diagnosis and an aspirin prescription, and counts distinct
//! patients; the *comorbidity* query counts the most common diagnoses among
//! c. diff patients. The generator reproduces the workload parameters the
//! paper states: 2 % overlap between the two hospitals' patient IDs and a
//! number of distinct diagnosis codes equal to 10 % of the row count.

use conclave_engine::Relation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Diagnosis code used for heart disease in the aspirin-count query.
pub const HEART_DISEASE: i64 = 414;
/// Medication code used for aspirin in the aspirin-count query.
pub const ASPIRIN: i64 = 1191;
/// Diagnosis code used for c. diff in the comorbidity query.
pub const CDIFF: i64 = 8;

/// Generator for HealthLNK-like relations.
#[derive(Debug, Clone)]
pub struct HealthGenerator {
    rng: StdRng,
    /// Fraction of patient IDs shared between the two hospitals.
    pub overlap: f64,
    /// Fraction of rows that carry the "interesting" code (heart disease /
    /// aspirin / c. diff), so query selectivities are realistic.
    pub positive_fraction: f64,
}

impl HealthGenerator {
    /// Creates a generator with the paper's workload parameters.
    pub fn new(seed: u64) -> Self {
        HealthGenerator {
            rng: StdRng::seed_from_u64(seed),
            overlap: 0.02,
            positive_fraction: 0.25,
        }
    }

    fn patient_id(&mut self, hospital: usize, rows: usize, i: usize) -> i64 {
        let shared = ((rows as f64) * self.overlap).round() as usize;
        if i < shared {
            i as i64
        } else {
            (1_000_000 * (hospital as i64 + 1)) + i as i64
        }
    }

    /// One hospital's diagnoses relation: `patientID`, `diagnosis`.
    pub fn diagnoses(&mut self, hospital: usize, rows: usize) -> Relation {
        let data: Vec<Vec<i64>> = (0..rows)
            .map(|i| {
                let pid = self.patient_id(hospital, rows, i);
                let diag = if self.rng.gen_bool(self.positive_fraction) {
                    HEART_DISEASE
                } else {
                    self.rng.gen_range(1..500)
                };
                vec![pid, diag]
            })
            .collect();
        Relation::from_ints(&["patientID", "diagnosis"], &data)
    }

    /// One hospital's medications relation: `patientID`, `medication`.
    pub fn medications(&mut self, hospital: usize, rows: usize) -> Relation {
        let data: Vec<Vec<i64>> = (0..rows)
            .map(|i| {
                let pid = self.patient_id(hospital, rows, i);
                let med = if self.rng.gen_bool(self.positive_fraction) {
                    ASPIRIN
                } else {
                    self.rng.gen_range(1..3_000)
                };
                vec![pid, med]
            })
            .collect();
        Relation::from_ints(&["patientID", "medication"], &data)
    }

    /// One hospital's diagnoses relation for the comorbidity query, with the
    /// number of distinct diagnosis codes set to 10 % of the row count (the
    /// parameter §7.4 uses).
    pub fn comorbidity_diagnoses(&mut self, hospital: usize, rows: usize) -> Relation {
        let distinct = (rows / 10).max(1) as i64;
        let data: Vec<Vec<i64>> = (0..rows)
            .map(|i| {
                let pid = self.patient_id(hospital, rows, i);
                let diag = self.rng.gen_range(0..distinct);
                vec![pid, diag]
            })
            .collect();
        Relation::from_ints(&["patientID", "diagnosis"], &data)
    }

    /// Cleartext reference for the aspirin-count query: the number of
    /// distinct patients who have a heart-disease diagnosis in either
    /// hospital's data and an aspirin prescription in either hospital's data.
    pub fn reference_aspirin_count(diagnoses: &[Relation], medications: &[Relation]) -> i64 {
        use std::collections::HashSet;
        let diagnosed: HashSet<i64> = diagnoses
            .iter()
            .flat_map(|r| r.rows.iter())
            .filter(|row| row[1].as_int() == Some(HEART_DISEASE))
            .map(|row| row[0].as_int().expect("health data is integer-typed"))
            .collect();
        let medicated: HashSet<i64> = medications
            .iter()
            .flat_map(|r| r.rows.iter())
            .filter(|row| row[1].as_int() == Some(ASPIRIN))
            .map(|row| row[0].as_int().expect("health data is integer-typed"))
            .collect();
        diagnosed.intersection(&medicated).count() as i64
    }

    /// Cleartext reference for the comorbidity query: the `limit` most common
    /// diagnoses with their counts, in descending count order.
    pub fn reference_comorbidity(diagnoses: &[Relation], limit: usize) -> Vec<(i64, i64)> {
        use std::collections::HashMap;
        let mut counts: HashMap<i64, i64> = HashMap::new();
        for rel in diagnoses {
            for row in &rel.rows {
                *counts
                    .entry(row[1].as_int().expect("health data is integer-typed"))
                    .or_default() += 1;
            }
        }
        let mut v: Vec<(i64, i64)> = counts.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(limit);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn diagnoses_and_medications_shapes() {
        let mut g = HealthGenerator::new(1);
        let d = g.diagnoses(0, 1_000);
        let m = g.medications(0, 1_000);
        assert_eq!(d.schema.names(), vec!["patientID", "diagnosis"]);
        assert_eq!(m.schema.names(), vec!["patientID", "medication"]);
        assert_eq!(d.num_rows(), 1_000);
        let heart = d
            .rows
            .iter()
            .filter(|r| r[1].as_int() == Some(HEART_DISEASE))
            .count();
        assert!(heart > 150, "positive fraction should make matches common");
    }

    #[test]
    fn hospitals_share_two_percent_of_patients() {
        let mut g = HealthGenerator::new(2);
        let d0 = g.diagnoses(0, 2_000);
        let d1 = g.diagnoses(1, 2_000);
        let p0: HashSet<i64> = d0.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        let p1: HashSet<i64> = d1.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(p0.intersection(&p1).count(), 40, "2% of 2000");
    }

    #[test]
    fn comorbidity_distinct_keys_are_ten_percent() {
        let mut g = HealthGenerator::new(3);
        let d = g.comorbidity_diagnoses(0, 5_000);
        let distinct: HashSet<i64> = d.rows.iter().map(|r| r[1].as_int().unwrap()).collect();
        assert!(distinct.len() <= 500);
        assert!(distinct.len() > 400, "should use most of the key space");
    }

    #[test]
    fn references_are_consistent() {
        let mut g = HealthGenerator::new(4);
        let d = vec![g.diagnoses(0, 500), g.diagnoses(1, 500)];
        let m = vec![g.medications(0, 500), g.medications(1, 500)];
        let count = HealthGenerator::reference_aspirin_count(&d, &m);
        assert!(count >= 0);
        let cd = vec![
            g.comorbidity_diagnoses(0, 500),
            g.comorbidity_diagnoses(1, 500),
        ];
        let top = HealthGenerator::reference_comorbidity(&cd, 10);
        assert_eq!(top.len(), 10);
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1), "sorted by count");
    }
}
