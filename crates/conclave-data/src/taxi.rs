//! Synthetic vehicle-for-hire trip data for the market-concentration query.
//!
//! The paper models the sales books of several imaginary VFH companies by
//! randomly dividing six years of NYC yellow-cab trips across three parties
//! and filtering out zero-fare trips (§7.1). This generator produces trips
//! with the same relevant structure: a `companyID`, a `price` in cents (a
//! small fraction of which is zero and must be filtered out), and an
//! `airport` flag with roughly the 3.5 % airport-transfer share reported in
//! the 2014 Taxicab Factbook (§2.1).

use conclave_engine::Relation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator for synthetic taxi/VFH trip relations.
#[derive(Debug, Clone)]
pub struct TaxiGenerator {
    rng: StdRng,
    /// Number of VFH companies across all parties.
    pub num_companies: i64,
    /// Fraction of trips with a zero fare (filtered out by the query).
    pub zero_fare_fraction: f64,
    /// Fraction of trips that are airport transfers.
    pub airport_fraction: f64,
}

impl TaxiGenerator {
    /// Creates a generator with the paper's workload characteristics.
    pub fn new(seed: u64) -> Self {
        TaxiGenerator {
            rng: StdRng::seed_from_u64(seed),
            num_companies: 12,
            zero_fare_fraction: 0.01,
            airport_fraction: 0.035,
        }
    }

    /// Generates one party's trip relation with `rows` trips. Columns:
    /// `companyID`, `price` (cents), `airport` (0/1).
    pub fn party_trips(&mut self, rows: usize) -> Relation {
        let data: Vec<Vec<i64>> = (0..rows)
            .map(|_| {
                let company = self.rng.gen_range(0..self.num_companies);
                let zero = self.rng.gen_bool(self.zero_fare_fraction);
                let price = if zero {
                    0
                } else {
                    // Fares roughly $5–$80, in cents.
                    self.rng.gen_range(500..8_000)
                };
                let airport = i64::from(self.rng.gen_bool(self.airport_fraction));
                vec![company, price, airport]
            })
            .collect();
        Relation::from_ints(&["companyID", "price", "airport"], &data)
    }

    /// Generates the per-party relations for a total of `total_rows` trips
    /// split across `parties` parties (the paper splits 1.3 B trips across
    /// three imaginary companies' books).
    pub fn split_across_parties(&mut self, total_rows: usize, parties: usize) -> Vec<Relation> {
        let parties = parties.max(1);
        let per_party = total_rows / parties;
        let mut out = Vec::with_capacity(parties);
        for i in 0..parties {
            let rows = if i == parties - 1 {
                total_rows - per_party * (parties - 1)
            } else {
                per_party
            };
            out.push(self.party_trips(rows));
        }
        out
    }

    /// Cleartext reference computation of the Herfindahl–Hirschman Index over
    /// a set of trip relations (used by tests to check end-to-end results).
    pub fn reference_hhi(parts: &[Relation]) -> f64 {
        use std::collections::HashMap;
        let mut revenue: HashMap<i64, f64> = HashMap::new();
        for part in parts {
            for row in &part.rows {
                let company = row[0].as_int().unwrap_or(0);
                let price = row[1].as_int().unwrap_or(0);
                if price > 0 {
                    *revenue.entry(company).or_default() += price as f64;
                }
            }
        }
        let total: f64 = revenue.values().sum();
        if total == 0.0 {
            return 0.0;
        }
        revenue.values().map(|r| (r / total) * (r / total)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_have_expected_shape() {
        let mut g = TaxiGenerator::new(1);
        let r = g.party_trips(10_000);
        assert_eq!(r.num_rows(), 10_000);
        assert_eq!(r.schema.names(), vec!["companyID", "price", "airport"]);
        let zero_fares = r
            .rows
            .iter()
            .filter(|row| row[1].as_int() == Some(0))
            .count();
        let airport = r
            .rows
            .iter()
            .filter(|row| row[2].as_int() == Some(1))
            .count();
        // ~1% zero fares, ~3.5% airport trips.
        assert!((50..200).contains(&zero_fares), "zero fares: {zero_fares}");
        assert!((200..550).contains(&airport), "airport trips: {airport}");
    }

    #[test]
    fn split_preserves_total_rows() {
        let mut g = TaxiGenerator::new(2);
        let parts = g.split_across_parties(10_001, 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(|p| p.num_rows()).sum::<usize>(), 10_001);
        let single = g.split_across_parties(10, 0);
        assert_eq!(single.len(), 1);
    }

    #[test]
    fn reference_hhi_is_a_valid_index() {
        let mut g = TaxiGenerator::new(3);
        let parts = g.split_across_parties(30_000, 3);
        let hhi = TaxiGenerator::reference_hhi(&parts);
        // With 12 similarly-sized companies, HHI should be near 1/12 ≈ 0.083
        // and always within (0, 1].
        assert!(hhi > 0.05 && hhi < 0.2, "hhi = {hhi}");
        assert!(TaxiGenerator::reference_hhi(&[]) == 0.0);
    }

    #[test]
    fn monopoly_has_hhi_one() {
        let rel = Relation::from_ints(
            &["companyID", "price", "airport"],
            &[vec![1, 100, 0], vec![1, 300, 0]],
        );
        let hhi = TaxiGenerator::reference_hhi(&[rel]);
        assert!((hhi - 1.0).abs() < 1e-9);
    }
}
