//! Synthetic credit-card regulation data (§2.1, §7.3).
//!
//! The regulator holds a demographics relation mapping SSNs to ZIP codes;
//! each credit-reporting agency holds a relation mapping (a subset of) those
//! SSNs to credit scores. The query joins on SSN and averages scores by ZIP.

use conclave_engine::Relation;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Generator for the credit-card regulation workload.
#[derive(Debug, Clone)]
pub struct CreditGenerator {
    rng: StdRng,
    /// Number of distinct ZIP codes in the demographics relation.
    pub num_zips: i64,
    /// Fraction of the regulator's SSNs that each agency has a score for.
    pub coverage: f64,
}

impl CreditGenerator {
    /// Creates a generator with defaults mirroring the paper's description.
    pub fn new(seed: u64) -> Self {
        CreditGenerator {
            rng: StdRng::seed_from_u64(seed),
            num_zips: 100,
            coverage: 0.6,
        }
    }

    /// The regulator's demographics relation: `ssn`, `zip` for `rows` people.
    pub fn demographics(&mut self, rows: usize) -> Relation {
        let data: Vec<Vec<i64>> = (0..rows as i64)
            .map(|ssn| vec![ssn, self.rng.gen_range(0..self.num_zips)])
            .collect();
        Relation::from_ints(&["ssn", "zip"], &data)
    }

    /// One agency's score relation: `ssn`, `score`, covering a random subset
    /// of the demographics SSNs (`coverage` fraction of `population` SSNs).
    pub fn agency_scores(&mut self, population: usize) -> Relation {
        let take = ((population as f64) * self.coverage).round() as usize;
        let mut ssns: Vec<i64> = (0..population as i64).collect();
        ssns.shuffle(&mut self.rng);
        ssns.truncate(take);
        let data: Vec<Vec<i64>> = ssns
            .into_iter()
            .map(|ssn| vec![ssn, self.rng.gen_range(300..850)])
            .collect();
        Relation::from_ints(&["ssn", "score"], &data)
    }

    /// Cleartext reference: average credit score by ZIP, given the regulator's
    /// demographics and all agencies' score relations.
    pub fn reference_average_by_zip(
        demographics: &Relation,
        scores: &[Relation],
    ) -> Vec<(i64, f64)> {
        use std::collections::HashMap;
        let mut zip_of: HashMap<i64, i64> = HashMap::new();
        for row in &demographics.rows {
            zip_of.insert(
                row[0].as_int().expect("credit data is integer-typed"),
                row[1].as_int().expect("credit data is integer-typed"),
            );
        }
        let mut sums: HashMap<i64, (f64, f64)> = HashMap::new();
        for rel in scores {
            for row in &rel.rows {
                let ssn = row[0].as_int().expect("credit data is integer-typed");
                if let Some(&zip) = zip_of.get(&ssn) {
                    let e = sums.entry(zip).or_insert((0.0, 0.0));
                    e.0 += row[1].as_int().expect("credit data is integer-typed") as f64;
                    e.1 += 1.0;
                }
            }
        }
        let mut out: Vec<(i64, f64)> = sums.into_iter().map(|(z, (s, n))| (z, s / n)).collect();
        out.sort_by_key(|(z, _)| *z);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demographics_and_scores_shapes() {
        let mut g = CreditGenerator::new(1);
        let demo = g.demographics(1_000);
        assert_eq!(demo.num_rows(), 1_000);
        assert_eq!(demo.schema.names(), vec!["ssn", "zip"]);
        let scores = g.agency_scores(1_000);
        assert_eq!(scores.num_rows(), 600, "60% coverage of 1000 SSNs");
        assert!(scores
            .rows
            .iter()
            .all(|r| (300..850).contains(&r[1].as_int().unwrap())));
        // Agency SSNs are a subset of the population.
        assert!(scores
            .rows
            .iter()
            .all(|r| (0..1_000).contains(&r[0].as_int().unwrap())));
    }

    #[test]
    fn reference_average_is_within_score_range() {
        let mut g = CreditGenerator::new(2);
        let demo = g.demographics(2_000);
        let s1 = g.agency_scores(2_000);
        let s2 = g.agency_scores(2_000);
        let avg = CreditGenerator::reference_average_by_zip(&demo, &[s1, s2]);
        assert!(!avg.is_empty());
        assert!(avg.iter().all(|(_, a)| (300.0..850.0).contains(a)));
        // Zips are sorted and unique.
        assert!(avg.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn reference_handles_unmatched_ssns() {
        let demo = Relation::from_ints(&["ssn", "zip"], &[vec![1, 10]]);
        let scores = Relation::from_ints(&["ssn", "score"], &[vec![99, 700]]);
        let avg = CreditGenerator::reference_average_by_zip(&demo, &[scores]);
        assert!(avg.is_empty());
    }
}
