//! Synthetic workload generators.
//!
//! The paper's end-to-end experiments use data we cannot redistribute or
//! obtain (six years of NYC taxi trips, credit-bureau records keyed by SSN,
//! and the HealthLNK clinical data repository). This crate generates
//! synthetic data with the statistical properties those experiments depend
//! on — row counts, key cardinalities, cross-party overlap and group-size
//! distributions — so every figure's workload can be regenerated at any scale.

// Also enforced workspace-wide via [workspace.lints]; stated here so the
// guarantee is visible at the crate root.
#![forbid(unsafe_code)]

pub mod credit;
pub mod health;
pub mod synthetic;
pub mod taxi;

pub use credit::CreditGenerator;
pub use health::HealthGenerator;
pub use synthetic::SyntheticGenerator;
pub use taxi::TaxiGenerator;
