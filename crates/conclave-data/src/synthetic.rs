//! Generic synthetic relation generators (uniform and Zipf-distributed keys).

use conclave_engine::Relation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates random integer relations for microbenchmarks (Figures 1 and 5).
#[derive(Debug, Clone)]
pub struct SyntheticGenerator {
    rng: StdRng,
}

impl SyntheticGenerator {
    /// Creates a generator with a fixed seed (experiments are reproducible).
    pub fn new(seed: u64) -> Self {
        SyntheticGenerator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A relation of `rows` rows with the given integer columns drawn
    /// uniformly from `0..key_space`.
    pub fn uniform(&mut self, columns: &[&str], rows: usize, key_space: i64) -> Relation {
        let key_space = key_space.max(1);
        let data: Vec<Vec<i64>> = (0..rows)
            .map(|_| {
                columns
                    .iter()
                    .map(|_| self.rng.gen_range(0..key_space))
                    .collect()
            })
            .collect();
        Relation::from_ints(columns, &data)
    }

    /// A two-column `(key, value)` relation whose keys follow a Zipf-like
    /// distribution (skewed group sizes, as real aggregation inputs have).
    pub fn zipf_keyed(&mut self, rows: usize, distinct_keys: usize, exponent: f64) -> Relation {
        let distinct = distinct_keys.max(1);
        // Precompute cumulative Zipf weights.
        let weights: Vec<f64> = (1..=distinct)
            .map(|k| 1.0 / (k as f64).powf(exponent))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut cumulative = Vec::with_capacity(distinct);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cumulative.push(acc);
        }
        let data: Vec<Vec<i64>> = (0..rows)
            .map(|_| {
                let u: f64 = self.rng.gen();
                let key = cumulative.partition_point(|&c| c < u).min(distinct - 1) as i64;
                let value = self.rng.gen_range(0..1_000);
                vec![key, value]
            })
            .collect();
        Relation::from_ints(&["key", "value"], &data)
    }

    /// Two relations that share exactly `overlap_fraction` of their keys —
    /// used by join microbenchmarks and the SMCQL comparison (2 % patient-ID
    /// overlap in §7.4).
    pub fn overlapping_pair(
        &mut self,
        rows_each: usize,
        overlap_fraction: f64,
    ) -> (Relation, Relation) {
        let overlap = ((rows_each as f64) * overlap_fraction.clamp(0.0, 1.0)).round() as usize;
        let make = |rng: &mut StdRng, base: i64, rows: usize, shared: usize| -> Vec<Vec<i64>> {
            (0..rows)
                .map(|i| {
                    let key = if i < shared {
                        i as i64 // shared key range
                    } else {
                        base + i as i64 // disjoint per-side range
                    };
                    vec![key, rng.gen_range(0..1_000)]
                })
                .collect()
        };
        let left = make(&mut self.rng, 1_000_000_000, rows_each, overlap);
        let right = make(&mut self.rng, 2_000_000_000, rows_each, overlap);
        (
            Relation::from_ints(&["key", "value"], &left),
            Relation::from_ints(&["key", "value"], &right),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn uniform_shape_and_range() {
        let mut g = SyntheticGenerator::new(1);
        let r = g.uniform(&["a", "b"], 500, 10);
        assert_eq!(r.num_rows(), 500);
        assert_eq!(r.num_cols(), 2);
        assert!(r
            .rows
            .iter()
            .all(|row| (0..10).contains(&row[0].as_int().unwrap())));
        // Degenerate key space.
        let r = g.uniform(&["a"], 10, 0);
        assert!(r.rows.iter().all(|row| row[0].as_int() == Some(0)));
    }

    #[test]
    fn determinism_by_seed() {
        let a = SyntheticGenerator::new(7).uniform(&["a"], 100, 50);
        let b = SyntheticGenerator::new(7).uniform(&["a"], 100, 50);
        let c = SyntheticGenerator::new(8).uniform(&["a"], 100, 50);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zipf_is_skewed_toward_small_keys() {
        let mut g = SyntheticGenerator::new(2);
        let r = g.zipf_keyed(20_000, 100, 1.2);
        assert_eq!(r.num_rows(), 20_000);
        let count_key0 = r
            .rows
            .iter()
            .filter(|row| row[0].as_int() == Some(0))
            .count();
        let count_key99 = r
            .rows
            .iter()
            .filter(|row| row[0].as_int() == Some(99))
            .count();
        assert!(
            count_key0 > count_key99 * 3,
            "Zipf head key should dominate: {count_key0} vs {count_key99}"
        );
    }

    #[test]
    fn overlapping_pair_has_requested_intersection() {
        let mut g = SyntheticGenerator::new(3);
        let (l, r) = g.overlapping_pair(1_000, 0.02);
        let lk: HashSet<i64> = l.rows.iter().map(|row| row[0].as_int().unwrap()).collect();
        let rk: HashSet<i64> = r.rows.iter().map(|row| row[0].as_int().unwrap()).collect();
        let shared = lk.intersection(&rk).count();
        assert_eq!(shared, 20, "2% of 1000 keys should overlap");
        // Full overlap and zero overlap edge cases.
        let (l, r) = g.overlapping_pair(100, 1.5);
        let lk: HashSet<i64> = l.rows.iter().map(|row| row[0].as_int().unwrap()).collect();
        let rk: HashSet<i64> = r.rows.iter().map(|row| row[0].as_int().unwrap()).collect();
        assert_eq!(lk.intersection(&rk).count(), 100);
    }
}
