//! Conclave-RS: a Rust reproduction of *Conclave: secure multi-party
//! computation on big data* (EuroSys 2019).
//!
//! This facade crate re-exports the workspace crates under stable paths so
//! that examples and downstream users can depend on a single `conclave`
//! package.
//!
//! # Quickstart
//!
//! ```
//! use conclave::prelude::*;
//!
//! // Two parties each hold a table of (key, value) pairs; a regulator (party
//! // A) should learn the per-key sums without either party revealing rows.
//! let pa = Party::new(1, "mpc.a.org");
//! let pb = Party::new(2, "mpc.b.org");
//! let schema = Schema::new(vec![
//!     ColumnDef::new("key", DataType::Int),
//!     ColumnDef::new("val", DataType::Int),
//! ]);
//! let mut q = QueryBuilder::new();
//! let ta = q.input("ta", schema.clone(), pa.clone());
//! let tb = q.input("tb", schema, pb.clone());
//! let both = q.concat(&[ta, tb]);
//! let sums = q.aggregate(both, "total", AggFunc::Sum, &["key"], "val");
//! q.collect(sums, &[pa.clone()]);
//! let query = q.build().unwrap();
//! assert!(query.dag.node_count() >= 4);
//! ```

pub use conclave_core as core;
pub use conclave_data as data;
pub use conclave_engine as engine;
pub use conclave_ir as ir;
pub use conclave_mpc as mpc;
pub use conclave_net as net;
pub use conclave_parallel as parallel;
pub use conclave_smcql as smcql;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use conclave_core::{
        compile, config::ConclaveConfig, config::PartyRuntime, driver::Driver, plan::PhysicalPlan,
        report::RunReport, session::Session, session::SessionError,
    };
    pub use conclave_data::{
        credit::CreditGenerator, health::HealthGenerator, taxi::TaxiGenerator,
    };
    pub use conclave_engine::columnar::ColumnarRelation;
    pub use conclave_engine::relation::Relation;
    pub use conclave_engine::{
        ColumnarExecutor, ConversionCounts, EngineMode, Executor, RowExecutor, Table,
    };
    pub use conclave_ir::{
        builder::QueryBuilder,
        ops::AggFunc,
        party::Party,
        schema::{ColumnDef, Schema},
        types::{DataType, Value},
    };
    pub use conclave_mpc::backend::{BackendKind, MpcBackendConfig};
}
