//! Conclave-RS: a Rust reproduction of *Conclave: secure multi-party
//! computation on big data* (EuroSys 2019).
//!
//! This facade crate re-exports the workspace crates under stable paths so
//! that examples and downstream users can depend on a single `conclave`
//! package.
//!
//! # Quickstart
//!
//! Two parties each hold a table of (key, value) pairs; a regulator (party 1)
//! should learn the per-key sums without either party revealing rows.
//! Queries are written in the Conclave SQL dialect (see `docs/SQL.md`) and
//! run end to end with [`Session::run_sql`](conclave_core::Session::run_sql):
//!
//! ```
//! use conclave::prelude::*;
//!
//! let report = Session::new(ConclaveConfig::standard().with_sequential_local())
//!     .bind("ta", Relation::from_ints(&["key", "val"], &[vec![1, 2], vec![2, 7]]))
//!     .bind("tb", Relation::from_ints(&["key", "val"], &[vec![1, 3]]))
//!     .run_sql(
//!         "CREATE TABLE ta (key INT, val INT) WITH OWNER p1;
//!          CREATE TABLE tb (key INT, val INT) WITH OWNER p2;
//!          SELECT key, SUM(val) AS total FROM (ta UNION ALL tb)
//!          GROUP BY key
//!          REVEAL TO p1;",
//!     )
//!     .unwrap();
//! let out = report.output_for(1).unwrap();
//! let expected = Relation::from_ints(&["key", "total"], &[vec![1, 5], vec![2, 7]]);
//! assert!(out.same_rows_unordered(&expected));
//! ```
//!
//! The same query can be assembled programmatically with the LINQ-style
//! [`QueryBuilder`](conclave_ir::builder::QueryBuilder) — the SQL frontend
//! lowers to exactly that builder's operator DAG:
//!
//! ```
//! use conclave::prelude::*;
//!
//! let pa = Party::new(1, "mpc.a.org");
//! let pb = Party::new(2, "mpc.b.org");
//! let schema = Schema::new(vec![
//!     ColumnDef::new("key", DataType::Int),
//!     ColumnDef::new("val", DataType::Int),
//! ]);
//! let mut q = QueryBuilder::new();
//! let ta = q.input("ta", schema.clone(), pa.clone());
//! let tb = q.input("tb", schema, pb.clone());
//! let both = q.concat(&[ta, tb]);
//! let sums = q.aggregate(both, "total", AggFunc::Sum, &["key"], "val");
//! q.collect(sums, &[pa.clone()]);
//! let query = q.build().unwrap();
//! assert!(query.dag.node_count() >= 4);
//! ```

// Also enforced workspace-wide via [workspace.lints]; stated here so the
// guarantee is visible at the crate root.
#![forbid(unsafe_code)]

pub use conclave_core as core;
pub use conclave_data as data;
pub use conclave_engine as engine;
pub use conclave_ir as ir;
pub use conclave_mpc as mpc;
pub use conclave_net as net;
pub use conclave_parallel as parallel;
pub use conclave_server as server;
pub use conclave_smcql as smcql;
pub use conclave_sql as sql;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use conclave_core::{
        compile, config::ConclaveConfig, config::DealerMode, config::PartyRuntime, driver::Driver,
        plan::CompileError, plan::PhysicalPlan, report::RunReport, session::PersistentSession,
        session::Session, session::SessionError, Disclosure, DisclosureKind, LeakageReport,
        LeakageViolation,
    };
    pub use conclave_data::{
        credit::CreditGenerator, health::HealthGenerator, taxi::TaxiGenerator,
    };
    pub use conclave_engine::columnar::ColumnarRelation;
    pub use conclave_engine::relation::Relation;
    pub use conclave_engine::{
        ColumnarExecutor, ConversionCounts, EngineMode, Executor, RowExecutor, Table,
    };
    pub use conclave_ir::{
        builder::QueryBuilder,
        ops::AggFunc,
        party::Party,
        schema::{ColumnDef, Schema},
        trust::TrustSet,
        types::{DataType, Value},
    };
    pub use conclave_mpc::backend::{BackendKind, MpcBackendConfig};
    pub use conclave_mpc::dealer::{MaterialPool, MaterialSpec};
    pub use conclave_server::{
        AdmissionLimits, ConclaveServer, QueryOutcome, ServerConfig, ServerError, ServerHandle,
    };
    pub use conclave_sql::{
        compile_sql, compile_sql_with_catalog, normalize_sql, Catalog, SqlError,
    };
}
