//! Transport-equivalence property tests.
//!
//! The distributed party runtime must be **observationally identical** to the
//! single-process `Protocol` oracle: for random share/open/multiply/aggregate
//! workloads (including the empty-relation edge case), the values revealed by
//! a mesh of real per-party endpoints — over the in-process channel transport
//! *and* over localhost TCP — must be cell-identical to what the in-process
//! engine reveals. Row *order* may differ where a protocol step involves an
//! oblivious shuffle (the permutation streams differ), so relation-valued
//! results are compared as multisets, exactly like the driver-level suites.

// Demo/test target: panicking on bad setup is the desired behavior here
// (the workspace-level clippy::unwrap_used lint targets library code).
#![allow(clippy::unwrap_used)]

use conclave::core::config::PartyRuntime;
use conclave::core::party_exec::execute_op_distributed;
use conclave::mpc::backend::{MpcBackendConfig, MpcEngine};
use conclave::mpc::runtime::{PartyResult, PartySession, StepCtx};
use conclave::mpc::AuthShare;
use conclave::net::{ChannelTransport, TcpTransport, Transport};
use conclave::prelude::*;
use conclave_ir::expr::Expr;
use conclave_ir::ops::{Operand, Operator};
use proptest::prelude::*;

/// Runs the same per-party program on every endpoint of a mesh and returns
/// each party's result.
fn run_mesh<T, R, F>(mesh: Vec<T>, seed: u64, f: F) -> Vec<R>
where
    T: Transport,
    R: Send,
    F: Fn(&mut StepCtx) -> PartyResult<R> + Sync,
{
    std::thread::scope(|s| {
        let handles: Vec<_> = mesh
            .into_iter()
            .map(|t| {
                let f = &f;
                s.spawn(move || {
                    let mut sess = PartySession::new(&t, seed);
                    let mut proto = sess.step(0);
                    f(&mut proto)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .expect("party thread panicked")
                    .expect("party program failed")
            })
            .collect()
    })
}

/// Runs the same program on a channel mesh and a TCP-localhost mesh,
/// returning `(transport name, per-party results)` for each.
fn run_both_transports<R, F>(parties: u32, seed: u64, f: F) -> Vec<(&'static str, Vec<R>)>
where
    R: Send,
    F: Fn(&mut StepCtx) -> PartyResult<R> + Sync,
{
    let chan = run_mesh(ChannelTransport::mesh(parties), seed, &f);
    let tcp = run_mesh(
        TcpTransport::localhost_mesh(parties).expect("localhost mesh"),
        seed,
        &f,
    );
    vec![("channel", chan), ("tcp", tcp)]
}

/// Shares `values` from its owner, opens them again, and returns the opened
/// vector (exercises share → open round trips over real messages).
fn share_open_program(proto: &mut StepCtx, owner: u32, values: &[i64]) -> PartyResult<Vec<i64>> {
    let own = (proto.party() == owner).then_some(values);
    let shares = proto.input_column(owner, own, values.len())?;
    proto.open_column(&shares)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// share → open round-trips arbitrary i64 vectors on both transports.
    #[test]
    fn share_open_round_trips(values in prop::collection::vec(any::<i64>(), 0..12),
                              owner in 0u32..3,
                              seed in any::<u64>()) {
        for (name, outs) in
            run_both_transports(3, seed, |p| share_open_program(p, owner, &values))
        {
            for out in &outs {
                prop_assert_eq!(out, &values, "{} transport corrupted a share/open", name);
            }
        }
    }

    /// Distributed Beaver multiplication opens the exact wrapping products —
    /// the same values the in-process `Protocol` oracle produces.
    #[test]
    fn multiply_matches_the_oracle(pairs in prop::collection::vec((any::<i64>(), any::<i64>()), 1..10),
                                   seed in any::<u64>()) {
        // Oracle: in-process protocol.
        let mut oracle = conclave::mpc::Protocol::new(3, seed);
        let expected: Vec<i64> = pairs
            .iter()
            .map(|&(x, y)| {
                let sx = oracle.share_value(x);
                let sy = oracle.share_value(y);
                let prod = oracle.mul(&sx, &sy);
                oracle.open(&prod)
            })
            .collect();
        let program = |proto: &mut StepCtx| -> PartyResult<Vec<i64>> {
            let own = proto.party() == 0;
            let xs: Vec<i64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<i64> = pairs.iter().map(|p| p.1).collect();
            let sx = proto.input_column(0, own.then_some(xs.as_slice()), xs.len())?;
            let sy = proto.input_column(0, own.then_some(ys.as_slice()), ys.len())?;
            let ps: Vec<(AuthShare, AuthShare)> = sx.into_iter().zip(sy).collect();
            let prod = proto.mul_batch(&ps)?;
            proto.open_column(&prod)
        };
        for (name, outs) in run_both_transports(3, seed, program) {
            for out in &outs {
                prop_assert_eq!(out, &expected, "{} transport multiply diverged", name);
            }
        }
    }
}

/// Signed 64-bit values biased towards the boundaries where a naive
/// (unsigned) bit-decomposed comparison gets the answer wrong.
fn edge_i64() -> impl Strategy<Value = i64> {
    prop_oneof![
        4 => any::<i64>(),
        1 => Just(i64::MIN),
        1 => Just(i64::MIN + 1),
        1 => Just(i64::MAX),
        1 => Just(-1i64),
        1 => Just(0i64),
        1 => Just(1i64),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Circuit lt/eq match the in-process oracle on signed boundary values —
    /// including equal-operand pairs — over channel *and* TCP meshes.
    #[test]
    fn circuit_comparisons_match_the_oracle_on_signed_boundaries(
        pairs in prop::collection::vec((edge_i64(), edge_i64()), 1..8),
        seed in any::<u64>()) {
        // Force at least one equal-operand pair into every case.
        let mut pairs = pairs;
        let dup = pairs[0].0;
        pairs.push((dup, dup));
        let mut oracle = conclave::mpc::Protocol::new(3, seed);
        let expected: Vec<i64> = pairs
            .iter()
            .flat_map(|&(x, y)| {
                let sx = oracle.share_value(x);
                let sy = oracle.share_value(y);
                let lt = oracle.lt(&sx, &sy);
                let eq = oracle.eq(&sx, &sy);
                [oracle.open(&lt), oracle.open(&eq)]
            })
            .collect();
        let program = |proto: &mut StepCtx| -> PartyResult<Vec<i64>> {
            let own = proto.party() == 0;
            let xs: Vec<i64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<i64> = pairs.iter().map(|p| p.1).collect();
            let sx = proto.input_column(0, own.then_some(xs.as_slice()), xs.len())?;
            let sy = proto.input_column(0, own.then_some(ys.as_slice()), ys.len())?;
            let ps: Vec<(AuthShare, AuthShare)> = sx.into_iter().zip(sy).collect();
            let lt = proto.lt_batch(&ps)?;
            let eq = proto.eq_batch(&ps)?;
            let mut interleaved = Vec::with_capacity(2 * ps.len());
            for (l, e) in lt.into_iter().zip(eq) {
                interleaved.push(l);
                interleaved.push(e);
            }
            proto.open_column(&interleaved)
        };
        for (name, outs) in run_both_transports(3, seed, program) {
            for out in &outs {
                prop_assert_eq!(out, &expected, "{} transport comparison diverged", name);
            }
        }
    }

    /// Sorting columns that contain i64::MIN/MAX and negatives produces the
    /// oracle's exact row order on both distributed runtimes.
    #[test]
    fn sort_matches_the_oracle_on_signed_boundaries(
        values in prop::collection::vec(edge_i64(), 0..8),
        ascending in any::<bool>(),
        seed in any::<u64>()) {
        let rel = Relation::from_ints(
            &["k", "v"],
            &values.iter().enumerate().map(|(i, &v)| vec![i as i64, v]).collect::<Vec<_>>(),
        );
        let op = Operator::SortBy { column: "v".into(), ascending };
        assert_op_equivalence(&op, &rel, seed, true);
    }
}

/// Builds a small keyed relation from generated material.
fn keyed_relation(rows: &[(i64, i64)]) -> Relation {
    Relation::from_ints(
        &["k", "v"],
        &rows
            .iter()
            .map(|&(k, v)| vec![k.rem_euclid(5), v % 1000])
            .collect::<Vec<_>>(),
    )
}

/// Executes `op` on the in-process oracle and on both distributed transports,
/// and requires cell-identical reveals. `ordered` demands the exact same row
/// order (sorts, whose networks are deterministic and shuffle-free);
/// unordered comparison is for operators whose output order depends on an
/// oblivious shuffle, where the two runtimes draw different permutations.
fn assert_op_equivalence(op: &Operator, rel: &Relation, seed: u64, ordered: bool) {
    let mut oracle = MpcEngine::new(MpcBackendConfig::sharemind());
    let (expected, _) = oracle.execute_op(op, &[rel]).expect("oracle executes");
    let table = Table::from_rows(rel.clone());
    for runtime in [PartyRuntime::Channel, PartyRuntime::Tcp] {
        let outcome = execute_op_distributed(op, &[&table], 3, seed, runtime, false)
            .expect("distributed step executes");
        let matches = if ordered {
            outcome.relation.rows == expected.rows
        } else {
            outcome.relation.same_rows_unordered(&expected)
        };
        assert!(
            matches,
            "{runtime:?} diverged on {}:\n{}\nvs oracle\n{}",
            op.name(),
            outcome.relation,
            expected
        );
        assert!(outcome.net.total_bytes() > 0, "traffic must be observed");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random grouped-aggregation workloads reveal identical cells on the
    /// oracle, the channel mesh and the TCP mesh.
    #[test]
    fn aggregate_matches_the_oracle(rows in prop::collection::vec((any::<i64>(), any::<i64>()), 0..10),
                                    func_sel in 0u8..4,
                                    seed in any::<u64>()) {
        let rel = keyed_relation(&rows);
        let func = match func_sel {
            0 => AggFunc::Sum,
            1 => AggFunc::Count,
            2 => AggFunc::Min,
            _ => AggFunc::Max,
        };
        let over = (func != AggFunc::Count).then(|| "v".to_string());
        let op = Operator::Aggregate {
            group_by: vec!["k".into()],
            func,
            over,
            out: "agg".into(),
        };
        assert_op_equivalence(&op, &rel, seed, false);
    }

    /// Random sort workloads produce identically-ordered reveals.
    #[test]
    fn sort_matches_the_oracle(rows in prop::collection::vec((any::<i64>(), any::<i64>()), 0..10),
                               ascending in any::<bool>(),
                               seed in any::<u64>()) {
        let rel = keyed_relation(&rows);
        let op = Operator::SortBy { column: "v".into(), ascending };
        assert_op_equivalence(&op, &rel, seed, true);
    }
}

/// The empty-relation edge case, explicitly on both transports.
#[test]
fn empty_relation_share_open_and_aggregate() {
    let empty = Relation::from_ints(&["k", "v"], &[]);
    let op = Operator::Aggregate {
        group_by: vec!["k".into()],
        func: AggFunc::Sum,
        over: Some("v".into()),
        out: "s".into(),
    };
    assert_op_equivalence(&op, &empty, 99, false);
    // Raw share/open of an empty column moves no payload but still works.
    let outs = run_mesh(ChannelTransport::mesh(2), 5, |p| {
        share_open_program(p, 0, &[])
    });
    for out in outs {
        assert!(out.is_empty());
    }
}

/// The canonical 3-step MPC pipeline (filter → multiply → scalar aggregate
/// over a concat), compiled so every step runs under MPC.
fn pipeline_query() -> (conclave_ir::builder::Query, Party) {
    let pa = Party::new(1, "a");
    let pb = Party::new(2, "b");
    let schema = Schema::ints(&["k", "v"]);
    let mut q = QueryBuilder::new();
    let a = q.input("ta", schema.clone(), pa.clone());
    let b = q.input("tb", schema, pb);
    let all = q.concat(&[a, b]);
    let pos = q.filter(all, Expr::col("v").gt(Expr::lit(0)));
    let scaled = q.multiply(pos, "w", vec![Operand::col("v"), Operand::lit(3)]);
    let total = q.aggregate_scalar(scaled, "total", AggFunc::Sum, "w");
    q.collect(total, std::slice::from_ref(&pa));
    (q.build().unwrap(), pa)
}

fn run_pipeline(runtime: Option<PartyRuntime>, ta: Relation, tb: Relation) -> RunReport {
    let mut config = ConclaveConfig::mpc_only().with_sequential_local();
    if let Some(rt) = runtime {
        config = config.with_party_runtime(rt);
    }
    Session::new(config)
        .bind("ta", ta)
        .bind("tb", tb)
        .run(&pipeline_query().0)
        .unwrap()
}

fn pipeline_rows(n: i64, salt: i64) -> Relation {
    Relation::from_ints(
        &["k", "v"],
        &(0..n)
            .map(|i| vec![i % 3, (i * 17 + salt) % 50 - 10])
            .collect::<Vec<_>>(),
    )
}

/// Pins the plan-level round and mesh-build counts of the canonical 3-step
/// query: one mesh for the whole plan, and the same (exact) number of
/// synchronous rounds on the channel and TCP runtimes. A regression here
/// means the runtime started re-building meshes or paying extra rounds.
///
/// Round budget history: the simulated-comparison runtime paid **3** rounds
/// (filter's operand-opening comparison, the filter-flag open, the final
/// reveal). The bit-decomposed comparison circuits legitimately raised this
/// to **11**: the filter predicate's `lt_batch` is now a 9-round circuit
/// (1 masked decomposition open + 6 Kogge-Stone carry levels + 1
/// sign-combine AND + 1 bit-to-arithmetic open) instead of a 1-round
/// cleartext opening, while the flag open and final reveal still cost 1
/// round each. SPDZ MAC authentication raised it to **13**: every opened
/// value is now logged and the plan's single reveal boundary pays one
/// deferred `check_integrity` (a commitment round plus a σ-opening round)
/// covering everything opened since the query began. Still independent of
/// row count.
#[test]
fn pipeline_round_and_mesh_counts_are_pinned() {
    let mut seen = Vec::new();
    for runtime in [PartyRuntime::Channel, PartyRuntime::Tcp] {
        let report = run_pipeline(Some(runtime), pipeline_rows(8, 1), pipeline_rows(8, 2));
        assert_eq!(
            report.net.mesh_builds, 1,
            "{runtime:?}: one transport mesh per query"
        );
        assert_eq!(
            report.net.rounds, 13,
            "{runtime:?}: synchronous round count of the 3-step pipeline"
        );
        assert_eq!(
            report.mpc_stats.counts.mac_checks, 1,
            "{runtime:?}: one deferred MAC check at the single reveal boundary"
        );
        seen.push(report.net.rounds);
    }
    assert_eq!(seen[0], seen[1], "transports must agree on round structure");
}

/// Offline-material equivalence matrix: the same plan over every
/// `{seeded, file, streamed} × {channel, tcp}` combination must reveal the
/// same result multiset as the in-process simulated oracle. Where the
/// material comes from (synthesized, pregenerated files, or a dealer
/// streaming over dedicated links) must never change what the online phase
/// computes — only who paid for the offline phase, and when.
#[test]
fn dealer_modes_match_the_oracle_on_every_transport() {
    let ta = pipeline_rows(8, 1);
    let tb = pipeline_rows(8, 2);
    let oracle = run_pipeline(None, ta.clone(), tb.clone());
    let expected = oracle.output_for(1).unwrap();

    let dir = std::env::temp_dir().join(format!("conclave-dealer-matrix-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // The plan-scoped mesh has 3 computing parties (Sharemind-like backend);
    // the dealer seed is independent of the mesh seed.
    conclave::mpc::dealer::write_party_files(&dir, 99, 3, Default::default()).unwrap();

    for runtime in [PartyRuntime::Channel, PartyRuntime::Tcp] {
        for dealer in [
            DealerMode::Seeded,
            DealerMode::File(dir.clone()),
            DealerMode::Streamed,
        ] {
            let config = ConclaveConfig::mpc_only()
                .with_sequential_local()
                .with_party_runtime(runtime)
                .with_dealer(dealer.clone());
            let report = Session::new(config)
                .bind("ta", ta.clone())
                .bind("tb", tb.clone())
                .run(&pipeline_query().0)
                .unwrap();
            let got = report.output_for(1).unwrap();
            assert!(
                got.same_rows_unordered(expected),
                "{runtime:?}/{dealer:?} diverged:\n{got}\nvs oracle\n{expected}"
            );
            assert!(report.net_measured);
            assert_eq!(
                report.dealer_net.is_some(),
                dealer == DealerMode::Streamed,
                "{runtime:?}/{dealer:?}: dealer traffic is measured iff streamed"
            );
            if let Some(dealer_net) = &report.dealer_net {
                assert!(
                    dealer_net.total_bytes() > 0,
                    "{runtime:?}: streamed offline blocks must be accounted"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The pipelined runtime (resident shares, deferred opens) reveals
    /// cell-identical results to the in-process simulated oracle on random
    /// multi-step workloads.
    #[test]
    fn pipelined_execution_matches_the_simulated_oracle(
        na in 0i64..12, nb in 0i64..12, salt_a in any::<i64>(), salt_b in any::<i64>()) {
        let ta = pipeline_rows(na, salt_a % 1000);
        let tb = pipeline_rows(nb, salt_b % 1000);
        let oracle = run_pipeline(None, ta.clone(), tb.clone());
        prop_assert!(!oracle.net_measured);
        let piped = run_pipeline(Some(PartyRuntime::Channel), ta, tb);
        prop_assert!(piped.net_measured);
        prop_assert_eq!(piped.net.mesh_builds, 1);
        let expected = oracle.output_for(1).unwrap();
        let got = piped.output_for(1).unwrap();
        prop_assert!(got.same_rows_unordered(expected),
                     "pipelined runtime diverged:\n{}\nvs oracle\n{}", got, expected);
    }
}

/// A whole two-party query over the TCP runtime reveals cell-identical
/// results to the simulated session, and the report is measured — the
/// acceptance scenario of the party-runtime issue.
#[test]
fn tcp_two_party_query_matches_the_simulated_session() {
    let pa = Party::new(1, "a");
    let pb = Party::new(2, "b");
    let schema = Schema::ints(&["k", "v"]);
    let mut q = QueryBuilder::new();
    let a = q.input("ta", schema.clone(), pa.clone());
    let b = q.input("tb", schema, pb);
    let both = q.concat(&[a, b]);
    let sums = q.aggregate(both, "total", AggFunc::Sum, &["k"], "v");
    q.collect(sums, &[pa]);
    let query = q.build().unwrap();

    let bindings = |session: Session| {
        session
            .bind(
                "ta",
                Relation::from_ints(&["k", "v"], &[vec![1, 2], vec![2, 9], vec![1, 1]]),
            )
            .bind(
                "tb",
                Relation::from_ints(&["k", "v"], &[vec![1, 3], vec![3, 4]]),
            )
    };
    let oracle = bindings(Session::new(
        ConclaveConfig::standard().with_sequential_local(),
    ))
    .run(&query)
    .unwrap();
    assert!(!oracle.net_measured);

    let measured = bindings(Session::new(
        ConclaveConfig::standard()
            .with_sequential_local()
            .with_tcp_runtime(),
    ))
    .run(&query)
    .unwrap();
    assert!(measured
        .output_for(1)
        .unwrap()
        .same_rows_unordered(oracle.output_for(1).unwrap()));
    assert!(measured.net_measured);
    assert!(measured.net.total_bytes() > 0);
    assert!(measured.net.rounds > 0);
    assert_eq!(measured.network_bytes, measured.net.total_bytes());
    // Every link between the three computing parties carried traffic.
    for from in 0..3u32 {
        for to in 0..3u32 {
            if from != to {
                assert!(
                    measured.net.links.contains_key(&(from, to)),
                    "no observed traffic on link P{from}->P{to}"
                );
            }
        }
    }
}
