//! Cross-crate integration tests: compile and execute the paper's queries end
//! to end over generated data and check the results against independent
//! cleartext references, under every backend configuration.

// Demo/test target: panicking on bad setup is the desired behavior here
// (the workspace-level clippy::unwrap_used lint targets library code).
#![allow(clippy::unwrap_used)]

use conclave::prelude::*;
use conclave_core::config::LocalBackend;
use conclave_data::{CreditGenerator, HealthGenerator, TaxiGenerator};
use conclave_engine::Relation;
use conclave_ir::expr::Expr;
use conclave_ir::ops::Operand;
use conclave_ir::trust::TrustSet;
use std::collections::HashMap;

fn market_query() -> conclave_ir::builder::Query {
    let pa = Party::new(1, "a");
    let pb = Party::new(2, "b");
    let pc = Party::new(3, "c");
    let schema = Schema::new(vec![
        ColumnDef::new("companyID", DataType::Int),
        ColumnDef::new("price", DataType::Int),
        ColumnDef::new("airport", DataType::Int),
    ]);
    let mut q = QueryBuilder::new();
    let a = q.input("inputA", schema.clone(), pa.clone());
    let b = q.input("inputB", schema.clone(), pb);
    let c = q.input("inputC", schema, pc);
    let trips = q.concat(&[a, b, c]);
    let paid = q.filter(trips, Expr::col("price").gt(Expr::lit(0)));
    let proj = q.project(paid, &["companyID", "price"]);
    let revenue = q.aggregate(proj, "rev", AggFunc::Sum, &["companyID"], "price");
    q.collect(revenue, &[pa]);
    q.build().unwrap()
}

fn taxi_inputs(total: usize, seed: u64) -> (HashMap<String, Relation>, Vec<Relation>) {
    let mut gen = TaxiGenerator::new(seed);
    let parts = gen.split_across_parties(total, 3);
    let mut inputs = HashMap::new();
    for (name, rel) in ["inputA", "inputB", "inputC"].iter().zip(parts.iter()) {
        inputs.insert(name.to_string(), rel.clone());
    }
    (inputs, parts)
}

fn reference_revenue(parts: &[Relation]) -> HashMap<i64, i64> {
    let mut revenue = HashMap::new();
    for p in parts {
        for row in &p.rows {
            let price = row[1].as_int().unwrap();
            if price > 0 {
                *revenue.entry(row[0].as_int().unwrap()).or_insert(0) += price;
            }
        }
    }
    revenue
}

#[test]
fn market_query_is_correct_under_all_configurations() {
    let query = market_query();
    let (inputs, parts) = taxi_inputs(900, 1);
    let reference = reference_revenue(&parts);
    let configs = vec![
        ("standard/parallel", ConclaveConfig::standard()),
        (
            "standard/sequential",
            ConclaveConfig::standard().with_sequential_local(),
        ),
        ("no pushdown consent", {
            let mut c = ConclaveConfig::standard();
            c.allow_cardinality_leaking_pushdown = false;
            c
        }),
        ("mpc only", ConclaveConfig::mpc_only()),
    ];
    for (name, config) in configs {
        let plan =
            conclave_core::compile(&query, &config).unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut driver = Driver::new(config);
        let report = driver
            .run(&plan, &inputs)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let out = report.output_for(1).expect("party 1 receives the result");
        assert_eq!(out.num_rows(), reference.len(), "{name}: wrong group count");
        for row in &out.rows {
            let company = row[0].as_int().unwrap();
            let rev = row[1].as_int().unwrap();
            assert_eq!(
                reference[&company], rev,
                "{name}: wrong revenue for company {company}"
            );
        }
    }
}

/// The full oracle matrix: {sequential row, parallel row, sequential
/// vectorized, parallel vectorized} × {hybrid operators on, off}.
fn engine_hybrid_matrix() -> Vec<(String, ConclaveConfig)> {
    let mut out = Vec::new();
    for (hybrid_name, base) in [
        ("hybrid", ConclaveConfig::standard()),
        ("no-hybrid", ConclaveConfig::without_hybrid()),
    ] {
        for (engine_name, config) in [
            ("seq-row", base.clone().with_sequential_local()),
            (
                "seq-vectorized",
                base.clone().with_sequential_local().with_columnar(),
            ),
            ("parallel-row", base.clone()),
            ("parallel-vectorized", base.clone().with_columnar()),
        ] {
            out.push((format!("{hybrid_name}/{engine_name}"), config));
        }
    }
    out
}

#[test]
fn market_query_agrees_across_engine_and_hybrid_matrix() {
    let query = market_query();
    let (inputs, parts) = taxi_inputs(600, 5);
    let reference = reference_revenue(&parts);
    let mut outputs: Vec<(String, Relation)> = Vec::new();
    for (name, config) in engine_hybrid_matrix() {
        let plan =
            conclave_core::compile(&query, &config).unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut driver = Driver::new(config);
        let report = driver
            .run(&plan, &inputs)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let out = report.output_for(1).expect("party 1 receives the result");
        assert_eq!(out.num_rows(), reference.len(), "{name}: wrong group count");
        for row in &out.rows {
            let company = row[0].as_int().unwrap();
            assert_eq!(
                reference[&company],
                row[1].as_int().unwrap(),
                "{name}: wrong revenue for company {company}"
            );
        }
        outputs.push((name, out.clone()));
    }
    // Every configuration agrees with every other, not just with the oracle.
    let (first_name, first) = &outputs[0];
    for (name, out) in &outputs[1..] {
        assert!(
            out.same_rows_unordered(first),
            "{name} disagrees with {first_name}"
        );
    }
}

#[test]
fn credit_query_agrees_across_engine_and_hybrid_matrix() {
    let population = 400;
    let mut gen = CreditGenerator::new(7);
    let demographics = gen.demographics(population);
    let s1 = gen.agency_scores(population);
    let s2 = gen.agency_scores(population);
    let reference =
        CreditGenerator::reference_average_by_zip(&demographics, &[s1.clone(), s2.clone()]);
    let mut inputs = HashMap::new();
    inputs.insert("demographics".to_string(), demographics);
    inputs.insert("scores1".to_string(), s1);
    inputs.insert("scores2".to_string(), s2);

    let mut outputs: Vec<(String, Relation)> = Vec::new();
    for (name, config) in engine_hybrid_matrix() {
        // With trust annotations the hybrid configs compile hybrid operators;
        // without-hybrid configs run the same query fully under MPC rewrites.
        let query = credit_query(true);
        let plan =
            conclave_core::compile(&query, &config).unwrap_or_else(|e| panic!("{name}: {e}"));
        if config.use_hybrid_operators {
            assert!(plan.hybrid_node_count() >= 2, "{name}: hybrid ops expected");
        }
        let mut driver = Driver::new(config);
        let report = driver
            .run(&plan, &inputs)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let out = report.output_for(1).unwrap();
        let zip_idx = out.schema.index_of("zip").unwrap();
        let avg_idx = out.schema.index_of("avg_score").unwrap();
        assert_eq!(out.num_rows(), reference.len(), "{name}: group count");
        for row in &out.rows {
            let zip = row[zip_idx].as_int().unwrap();
            let avg = row[avg_idx].as_float().unwrap();
            let (_, expected) = reference
                .iter()
                .find(|(z, _)| *z == zip)
                .expect("zip exists");
            assert!(
                (avg - expected).abs() < 1e-9,
                "{name}: zip {zip}: {avg} vs {expected}"
            );
        }
        outputs.push((name, out.clone()));
    }
    let (first_name, first) = &outputs[0];
    for (name, out) in &outputs[1..] {
        assert!(
            out.same_rows_unordered(first),
            "{name} disagrees with {first_name}"
        );
    }
}

/// A single-party query whose compiled plan is entirely local: the cleanest
/// probe for mid-plan conversion behavior.
fn local_only_query() -> conclave_ir::builder::Query {
    let p = Party::new(1, "solo");
    let schema = Schema::ints(&["companyID", "price"]);
    let mut q = QueryBuilder::new();
    let t = q.input("sales", schema, p.clone());
    let paid = q.filter(t, Expr::col("price").gt(Expr::lit(0)));
    let rev = q.aggregate(paid, "rev", AggFunc::Sum, &["companyID"], "price");
    q.collect(rev, &[p]);
    q.build().unwrap()
}

#[test]
fn columnar_driven_query_converts_only_at_input_and_collect_boundaries() {
    let query = local_only_query();
    let rel = Relation::from_ints(
        &["companyID", "price"],
        &(0..500)
            .map(|i| vec![i % 7, (i * 13) % 100])
            .collect::<Vec<_>>(),
    );
    let config = ConclaveConfig::standard()
        .with_sequential_local()
        .with_columnar();

    // Column-backed inputs: ZERO mid-plan conversions; the single
    // columnar→row conversion happens at the collect (reveal) boundary.
    let report = Session::new(config.clone())
        .bind("sales", ColumnarRelation::from_rows(&rel))
        .run(&query)
        .unwrap();
    assert_eq!(
        report.conversions.row_to_columnar, 0,
        "columnar-bound inputs must never be re-converted mid-plan"
    );
    assert_eq!(
        report.conversions.columnar_to_row, 1,
        "exactly one conversion, at the collect boundary"
    );

    // Row-backed inputs (the legacy `Driver::run` shim): one conversion at
    // the input binding, one at the collect boundary — still nothing between
    // plan operators.
    let plan = conclave_core::compile(&query, &config).unwrap();
    let mut driver = Driver::new(config.clone());
    let mut inputs = HashMap::new();
    inputs.insert("sales".to_string(), rel.clone());
    let report = driver.run(&plan, &inputs).unwrap();
    assert_eq!(report.conversions.row_to_columnar, 1, "input binding only");
    assert_eq!(report.conversions.columnar_to_row, 1, "collect only");

    // Row mode never converts at all.
    let row_report = Session::new(ConclaveConfig::standard().with_sequential_local())
        .bind("sales", rel)
        .run(&query)
        .unwrap();
    assert_eq!(row_report.conversions.total(), 0);
}

#[test]
fn multi_party_columnar_queries_convert_only_at_boundaries() {
    let query = market_query();
    let (inputs, _) = taxi_inputs(600, 11);
    let tables: HashMap<String, conclave_engine::Table> = inputs
        .iter()
        .map(|(k, v)| {
            (
                k.clone(),
                conclave_engine::Table::from_columns(ColumnarRelation::from_rows(v)),
            )
        })
        .collect();
    let n_inputs = tables.len() as u64;
    for config in [
        ConclaveConfig::standard()
            .with_sequential_local()
            .with_columnar(),
        ConclaveConfig::mpc_only()
            .with_sequential_local()
            .with_columnar(),
    ] {
        let plan = conclave_core::compile(&query, &config).unwrap();
        let node_count = plan.dag.node_count() as u64;
        let mut driver = Driver::new(config);
        let report = driver.run_tables(&plan, &tables).unwrap();
        // Column-backed inputs are shared column-at-a-time and never
        // round-trip through rows; conversions are bounded by the genuine
        // domain boundaries (inputs, reveals, collect), not by plan size.
        assert_eq!(report.conversions.row_to_columnar, 0);
        assert!(
            report.conversions.columnar_to_row <= n_inputs + 1,
            "conversions ({}) must stay at reveal boundaries, got report:\n{report}",
            report.conversions.columnar_to_row
        );
        // The pre-redesign data plane converted at every operator edge; the
        // new one is strictly below one conversion per node.
        assert!(report.conversions.total() < node_count);
    }
}

#[test]
fn parallel_and_sequential_local_backends_agree() {
    let query = market_query();
    let (inputs, _) = taxi_inputs(2_000, 2);
    let plan = conclave_core::compile(&query, &ConclaveConfig::standard()).unwrap();
    let mut seq_driver = Driver::new(ConclaveConfig::standard().with_sequential_local());
    let mut par_driver = Driver::new(ConclaveConfig::standard());
    assert_eq!(
        ConclaveConfig::standard().local_backend,
        LocalBackend::Parallel
    );
    let seq = seq_driver.run(&plan, &inputs).unwrap();
    let par = par_driver.run(&plan, &inputs).unwrap();
    assert!(seq
        .output_for(1)
        .unwrap()
        .same_rows_unordered(par.output_for(1).unwrap()));
}

fn credit_query(annotated: bool) -> conclave_ir::builder::Query {
    let regulator = Party::new(1, "gov");
    let a = Party::new(2, "a");
    let b = Party::new(3, "b");
    let ssn_trust = if annotated {
        TrustSet::of([1])
    } else {
        TrustSet::private()
    };
    let demo = Schema::new(vec![
        ColumnDef::new("ssn", DataType::Int),
        ColumnDef::with_trust("zip", DataType::Int, TrustSet::of([1])),
    ]);
    let agency = Schema::new(vec![
        ColumnDef::with_trust("ssn", DataType::Int, ssn_trust),
        ColumnDef::new("score", DataType::Int),
    ]);
    let mut q = QueryBuilder::new();
    let demographics = q.input("demographics", demo, regulator.clone());
    let s1 = q.input("scores1", agency.clone(), a);
    let s2 = q.input("scores2", agency, b);
    let scores = q.concat(&[s1, s2]);
    let joined = q.join(demographics, scores, &["ssn"], &["ssn"]);
    let count = q.count(joined, "count", &["zip"]);
    let total = q.aggregate(joined, "total", AggFunc::Sum, &["zip"], "score");
    let both = q.join(total, count, &["zip"], &["zip"]);
    let avg = q.divide(
        both,
        "avg_score",
        Operand::col("total"),
        Operand::col("count"),
    );
    q.collect(avg, &[regulator]);
    q.build().unwrap()
}

#[test]
fn credit_query_matches_reference_with_and_without_hybrid_operators() {
    let population = 600;
    let mut gen = CreditGenerator::new(3);
    let demographics = gen.demographics(population);
    let s1 = gen.agency_scores(population);
    let s2 = gen.agency_scores(population);
    let reference =
        CreditGenerator::reference_average_by_zip(&demographics, &[s1.clone(), s2.clone()]);
    let mut inputs = HashMap::new();
    inputs.insert("demographics".to_string(), demographics);
    inputs.insert("scores1".to_string(), s1);
    inputs.insert("scores2".to_string(), s2);

    for (annotated, config) in [
        (true, ConclaveConfig::standard().with_sequential_local()),
        (false, ConclaveConfig::standard().with_sequential_local()),
    ] {
        let query = credit_query(annotated);
        let plan = conclave_core::compile(&query, &config).unwrap();
        if annotated {
            assert!(
                plan.hybrid_node_count() >= 2,
                "annotations enable hybrid operators"
            );
        }
        let mut driver = Driver::new(config.clone());
        let report = driver.run(&plan, &inputs).unwrap();
        let out = report.output_for(1).unwrap();
        let zip_idx = out.schema.index_of("zip").unwrap();
        let avg_idx = out.schema.index_of("avg_score").unwrap();
        assert_eq!(out.num_rows(), reference.len());
        for row in &out.rows {
            let zip = row[zip_idx].as_int().unwrap();
            let avg = row[avg_idx].as_float().unwrap();
            let (_, expected) = reference
                .iter()
                .find(|(z, _)| *z == zip)
                .expect("zip exists");
            assert!(
                (avg - expected).abs() < 1e-9,
                "zip {zip}: {avg} vs {expected}"
            );
        }
    }
}

#[test]
fn hybrid_plan_reveals_only_to_the_stp_and_is_cheaper() {
    let population = 400;
    let mut gen = CreditGenerator::new(4);
    let mut inputs = HashMap::new();
    inputs.insert("demographics".to_string(), gen.demographics(population));
    inputs.insert("scores1".to_string(), gen.agency_scores(population));
    inputs.insert("scores2".to_string(), gen.agency_scores(population));

    let hybrid_plan =
        conclave_core::compile(&credit_query(true), &ConclaveConfig::standard()).unwrap();
    let mpc_plan =
        conclave_core::compile(&credit_query(false), &ConclaveConfig::mpc_only()).unwrap();
    let mut d1 = Driver::new(ConclaveConfig::standard().with_sequential_local());
    let mut d2 = Driver::new(ConclaveConfig::mpc_only().with_sequential_local());
    let hybrid = d1.run(&hybrid_plan, &inputs).unwrap();
    let baseline = d2.run(&mpc_plan, &inputs).unwrap();

    // Results agree.
    assert!(hybrid
        .output_for(1)
        .unwrap()
        .same_rows_unordered(baseline.output_for(1).unwrap()));
    // Hybrid execution does far less MPC work.
    assert!(
        hybrid.mpc_stats.counts.nonlinear_ops() * 3 < baseline.mpc_stats.counts.nonlinear_ops(),
        "hybrid {} vs baseline {}",
        hybrid.mpc_stats.counts.nonlinear_ops(),
        baseline.mpc_stats.counts.nonlinear_ops()
    );
    // Every leakage event goes to the regulator (party 1), never to the
    // competing agencies.
    assert!(!hybrid.leakage.is_empty());
    assert!(hybrid.leakage.iter().all(|e| e.to_party == 1));
}

#[test]
fn aspirin_count_conclave_and_smcql_agree_with_reference() {
    let rows = 300;
    let mut gen = HealthGenerator::new(9);
    let d0 = gen.diagnoses(0, rows);
    let d1 = gen.diagnoses(1, rows);
    let m0 = gen.medications(0, rows);
    let m1 = gen.medications(1, rows);
    let reference = HealthGenerator::reference_aspirin_count(
        &[d0.clone(), d1.clone()],
        &[m0.clone(), m1.clone()],
    );

    // Conclave.
    let hospital_a = Party::new(1, "a");
    let hospital_b = Party::new(2, "b");
    let diag_schema = Schema::new(vec![
        ColumnDef::public("patientID", DataType::Int),
        ColumnDef::new("diagnosis", DataType::Int),
    ]);
    let med_schema = Schema::new(vec![
        ColumnDef::public("patientID", DataType::Int),
        ColumnDef::new("medication", DataType::Int),
    ]);
    let mut q = QueryBuilder::new();
    let i1 = q.input("d1", diag_schema.clone(), hospital_a.clone());
    let i2 = q.input("d2", diag_schema, hospital_b.clone());
    let i3 = q.input("m1", med_schema.clone(), hospital_a.clone());
    let i4 = q.input("m2", med_schema, hospital_b);
    let diag = q.concat(&[i1, i2]);
    let meds = q.concat(&[i3, i4]);
    let joined = q.join(diag, meds, &["patientID"], &["patientID"]);
    let matching = q.filter(
        joined,
        Expr::col("diagnosis")
            .eq(Expr::lit(conclave_data::health::HEART_DISEASE))
            .and(Expr::col("medication").eq(Expr::lit(conclave_data::health::ASPIRIN))),
    );
    let count = q.distinct_count(matching, "patientID", "n");
    q.collect(count, &[hospital_a]);
    let query = q.build().unwrap();

    let config = ConclaveConfig::standard().with_sequential_local();
    let plan = conclave_core::compile(&query, &config).unwrap();
    let mut inputs = HashMap::new();
    inputs.insert("d1".to_string(), d0.clone());
    inputs.insert("d2".to_string(), d1.clone());
    inputs.insert("m1".to_string(), m0.clone());
    inputs.insert("m2".to_string(), m1.clone());
    let mut driver = Driver::new(config);
    let report = driver.run(&plan, &inputs).unwrap();
    let conclave_count = report
        .output_for(1)
        .and_then(|r| r.scalar().cloned())
        .and_then(|v| v.as_int())
        .unwrap();
    assert_eq!(conclave_count, reference);

    // SMCQL.
    let mut planner = conclave_smcql::SmcqlPlanner::default_paper_setup();
    let smcql_run =
        conclave_smcql::queries::aspirin_count(&mut planner, [&d0, &d1], [&m0, &m1]).unwrap();
    assert_eq!(smcql_run.result, reference);
    // Conclave's simulated runtime beats SMCQL's (Figure 7a's shape).
    assert!(report.total_time() < smcql_run.total_time());
}

#[test]
fn garbled_circuit_backend_runs_small_queries_and_fails_predictably_at_scale() {
    let query = market_query();
    let (inputs, parts) = taxi_inputs(240, 6);
    let reference = reference_revenue(&parts);
    let config = ConclaveConfig::standard()
        .with_sequential_local()
        .with_mpc(MpcBackendConfig::obliv_c());
    let plan = conclave_core::compile(&query, &config).unwrap();
    let mut driver = Driver::new(config);
    let report = driver.run(&plan, &inputs).unwrap();
    let out = report.output_for(1).unwrap();
    assert_eq!(out.num_rows(), reference.len());
    assert!(
        report.mpc_stats.circuit.and_gates > 0,
        "GC backend counts gates"
    );
}
