//! Property tests for the unified [`Table`] data plane.
//!
//! The `Table` caching contract is load-bearing for the whole execution
//! redesign: `as_rows`/`as_columns` must round-trip *losslessly* over
//! arbitrary relations (nulls, mixed-type columns, empty, single-row), the
//! one-shot conversion cache must hand back pointer-identical data on
//! repeated access, and clones must share cache and conversion counters.

// Demo/test target: panicking on bad setup is the desired behavior here
// (the workspace-level clippy::unwrap_used lint targets library code).
#![allow(clippy::unwrap_used)]

use conclave::prelude::*;
use conclave_engine::{ColumnarRelation, Relation, Table};
use proptest::prelude::*;

/// Raw generated cell material: `(int value, type selector)` per column.
type RawRow = (i64, i64, i64, u8);

/// Maps a raw integer plus a selector to a runtime value, biased toward
/// integers with a tail of nulls, floats, bools and strings (same shape as
/// the engine differential suite).
fn to_value(raw: i64, sel: u8) -> Value {
    match sel % 12 {
        0 => Value::Null,
        1 => Value::Float(raw as f64 / 2.0),
        2 => Value::Bool(raw % 2 == 0),
        3 => Value::Str(format!("s{}", raw.rem_euclid(5))),
        _ => Value::Int(raw),
    }
}

fn to_relation(rows: &[RawRow]) -> Relation {
    let schema = Schema::new(vec![
        ColumnDef::new("a", DataType::Int),
        ColumnDef::new("b", DataType::Int),
        ColumnDef::new("c", DataType::Int),
    ]);
    let data = rows
        .iter()
        .map(|&(k, v, w, sel)| vec![Value::Int(k.rem_euclid(6)), to_value(v, sel), Value::Int(w)])
        .collect();
    Relation::new(schema, data).unwrap()
}

fn rows_strategy(max: usize) -> impl Strategy<Value = Vec<RawRow>> {
    prop::collection::vec((0i64..1000, -500i64..500, -3i64..40, 0u8..255), 0..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Row → columns → rows is the identity for any relation, including
    /// empty, single-row, nulled and mixed-type inputs.
    #[test]
    fn as_columns_round_trips_losslessly(rows in rows_strategy(40)) {
        let rel = to_relation(&rows);
        let table = Table::from_rows(rel.clone());
        let back = table.as_columns().to_rows();
        prop_assert_eq!(&back.schema, &rel.schema);
        prop_assert_eq!(&back.rows, &rel.rows);
        // Metadata accessors agree with both representations.
        prop_assert_eq!(table.num_rows(), rel.num_rows());
        prop_assert_eq!(table.num_cols(), rel.num_cols());
        prop_assert_eq!(table.is_empty(), rel.num_rows() == 0);
    }

    /// Columns → rows → columns preserves every cell for any relation.
    #[test]
    fn as_rows_round_trips_losslessly(rows in rows_strategy(40)) {
        let rel = to_relation(&rows);
        let table = Table::from_columns(ColumnarRelation::from_rows(&rel));
        prop_assert_eq!(&table.as_rows().rows, &rel.rows);
        // A second conversion of the reconstructed rows is still lossless.
        let again = ColumnarRelation::from_rows(table.as_rows()).to_rows();
        prop_assert_eq!(&again.rows, &rel.rows);
    }

    /// The conversion cache is one-shot: repeated access returns
    /// pointer-identical data and the conversion counter stays at one.
    #[test]
    fn conversion_cache_returns_pointer_identical_data(rows in rows_strategy(20)) {
        let table = Table::from_rows(to_relation(&rows));
        let first: *const ColumnarRelation = table.as_columns();
        let second: *const ColumnarRelation = table.as_columns();
        prop_assert_eq!(first, second);
        prop_assert_eq!(table.conversion_counts().row_to_columnar, 1);
        // The other direction was never exercised.
        prop_assert_eq!(table.conversion_counts().columnar_to_row, 0);
        // Clones share the cache: the clone sees the same allocation and the
        // same counters without converting again.
        let clone = table.clone();
        let third: *const ColumnarRelation = clone.as_columns();
        prop_assert_eq!(first, third);
        prop_assert_eq!(clone.conversion_counts().row_to_columnar, 1);
    }

    /// Column values read the same through either representation, without
    /// forcing a conversion.
    #[test]
    fn column_values_agree_across_representations(rows in rows_strategy(30)) {
        let rel = to_relation(&rows);
        let row_table = Table::from_rows(rel.clone());
        let col_table = Table::from_columns(ColumnarRelation::from_rows(&rel));
        for name in ["a", "b", "c"] {
            prop_assert_eq!(
                row_table.column_values(name).unwrap(),
                col_table.column_values(name).unwrap()
            );
        }
        prop_assert_eq!(row_table.conversion_counts().total(), 0);
        prop_assert_eq!(col_table.conversion_counts().total(), 0);
    }
}

#[test]
fn edge_cases_round_trip() {
    // Empty relation.
    let empty = Table::from_rows(Relation::from_ints(&["x", "y"], &[]));
    assert_eq!(empty.as_columns().to_rows(), *empty.as_rows());
    assert!(empty.is_empty());
    // Single row.
    let single = Table::from_rows(Relation::from_ints(&["x"], &[vec![7]]));
    assert_eq!(
        single.as_columns().to_rows().rows,
        vec![vec![Value::Int(7)]]
    );
    // All-null column.
    let nulls = Table::from_rows(
        Relation::new(
            Schema::ints(&["n"]),
            vec![vec![Value::Null], vec![Value::Null]],
        )
        .unwrap(),
    );
    assert_eq!(nulls.as_columns().to_rows(), *nulls.as_rows());
    // Mixed-type column.
    let mixed = Table::from_rows(
        Relation::new(
            Schema::ints(&["m"]),
            vec![
                vec![Value::Int(1)],
                vec![Value::Str("s".into())],
                vec![Value::Float(0.5)],
                vec![Value::Bool(true)],
                vec![Value::Null],
            ],
        )
        .unwrap(),
    );
    assert_eq!(mixed.as_columns().to_rows(), *mixed.as_rows());
}
