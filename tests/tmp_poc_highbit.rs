//! Temporary review PoC: high-valuation tampering vs the MAC check.
#![allow(clippy::unwrap_used)]

use conclave::mpc::runtime::{PartyError, PartyResult, PartySession};
use conclave::mpc::AuthShare;
use conclave::net::{ChannelTransport, Fault, FaultSpec, MessageKind, TamperingTransport};

const INPUTS_X: [i64; 3] = [1_000_003, -77, 40_000];
const INPUTS_Y: [i64; 3] = [12, 5_000_011, -40_001];

fn party_program(sess: &mut PartySession) -> PartyResult<Vec<i64>> {
    let mut proto = sess.step(0);
    let own0 = proto.party() == 0;
    let own1 = proto.party() == 1;
    let sx = proto.input_column(0, own0.then_some(INPUTS_X.as_slice()), INPUTS_X.len())?;
    let sy = proto.input_column(1, own1.then_some(INPUTS_Y.as_slice()), INPUTS_Y.len())?;
    let pairs: Vec<(AuthShare, AuthShare)> = sx.iter().copied().zip(sy.iter().copied()).collect();
    let vals = proto.mul_batch(&pairs)?;
    let out = proto.open_column(&vals)?;
    proto.session().check_integrity()?;
    Ok(out)
}

#[test]
fn high_bit_consistent_lie_sometimes_escapes() {
    const DELTA: u64 = 1 << 63;
    let mut escaped = 0;
    let mut caught = 0;
    for seed in 0..40u64 {
        let mesh = TamperingTransport::wrap_mesh(ChannelTransport::mesh(3), |p| {
            Some(
                FaultSpec::new(Fault::Offset { delta: DELTA })
                    .kind(MessageKind::Reveal)
                    .from((p + 1) % 3),
            )
        });
        let results = std::thread::scope(|s| {
            let handles: Vec<_> = mesh
                .into_iter()
                .map(|t| {
                    s.spawn(move || -> PartyResult<Vec<i64>> {
                        let mut sess = PartySession::new(&t, 1000 + seed);
                        party_program(&mut sess)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        let any_integrity = results
            .iter()
            .any(|r| matches!(r, Err(PartyError::Integrity(_))));
        if any_integrity {
            caught += 1;
        } else if results.iter().all(|r| r.is_ok()) {
            escaped += 1;
        }
    }
    panic!("escaped={escaped} caught={caught} out of 40");
}
