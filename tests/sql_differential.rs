//! SQL-vs-builder differential suite.
//!
//! The SQL frontend must be a pure alternate spelling of the programmatic
//! `QueryBuilder`: for the paper's §7.4 queries (`comorbidity`,
//! `aspirin_count`) and the running credit-scoring example, the SQL text and
//! the hand-built DAG must produce **cell-identical** results under every
//! engine configuration — {row, columnar} × {hybrid operators on, off}.

use conclave::prelude::*;
use conclave_data::health::{ASPIRIN, HEART_DISEASE};
use conclave_ir::builder::Query;
use conclave_ir::expr::Expr;
use conclave_ir::trust::TrustSet;

/// The four configurations of the differential matrix:
/// {row, columnar} × {hybrid on, hybrid off}.
fn config_matrix() -> Vec<(&'static str, ConclaveConfig)> {
    vec![
        (
            "row+hybrid",
            ConclaveConfig::standard().with_sequential_local(),
        ),
        (
            "columnar+hybrid",
            ConclaveConfig::standard()
                .with_sequential_local()
                .with_columnar(),
        ),
        (
            "row+nohybrid",
            ConclaveConfig::without_hybrid().with_sequential_local(),
        ),
        (
            "columnar+nohybrid",
            ConclaveConfig::without_hybrid()
                .with_sequential_local()
                .with_columnar(),
        ),
    ]
}

/// Runs `sql` and `built` over the same bindings under every configuration
/// and asserts the outputs for `recipient` are cell-identical.
fn assert_sql_builder_parity(
    sql: &str,
    built: &Query,
    bindings: &[(&str, Relation)],
    recipient: u32,
) {
    for (label, config) in config_matrix() {
        let mut session = Session::new(config);
        for (name, rel) in bindings {
            session = session.bind(*name, rel.clone());
        }
        let sql_report = session
            .run_sql(sql)
            .unwrap_or_else(|e| panic!("[{label}] SQL run failed: {e}"));
        let builder_report = session
            .run(built)
            .unwrap_or_else(|e| panic!("[{label}] builder run failed: {e}"));
        let sql_out = sql_report.output_for(recipient).expect("SQL output");
        let builder_out = builder_report
            .output_for(recipient)
            .expect("builder output");
        assert_eq!(
            sql_out, builder_out,
            "[{label}] SQL and builder outputs differ"
        );
    }
}

// ---------------------------------------------------------------------------
// Comorbidity (§7.4): top-10 diagnoses across two hospitals.
// ---------------------------------------------------------------------------

const COMORBIDITY_SQL: &str = "
    CREATE TABLE diagnoses1 (patientID INT PUBLIC, diagnosis INT)
        WITH OWNER p1 AT 'hospital-a.org';
    CREATE TABLE diagnoses2 (patientID INT PUBLIC, diagnosis INT)
        WITH OWNER p2 AT 'hospital-b.org';
    SELECT diagnosis, COUNT(*) AS cnt
    FROM (diagnoses1 UNION ALL diagnoses2)
    GROUP BY diagnosis
    ORDER BY cnt DESC
    LIMIT 10
    REVEAL TO p1;
";

fn comorbidity_builder() -> Query {
    let hospital_a = Party::new(1, "hospital-a.org");
    let hospital_b = Party::new(2, "hospital-b.org");
    let diag_schema = Schema::new(vec![
        ColumnDef::public("patientID", DataType::Int),
        ColumnDef::new("diagnosis", DataType::Int),
    ]);
    let mut q = QueryBuilder::new();
    let d1 = q.input("diagnoses1", diag_schema.clone(), hospital_a.clone());
    let d2 = q.input("diagnoses2", diag_schema, hospital_b);
    let diag = q.concat(&[d1, d2]);
    let counts = q.count(diag, "cnt", &["diagnosis"]);
    let sorted = q.sort_by(counts, "cnt", false);
    let top = q.limit(sorted, 10);
    q.collect(top, &[hospital_a]);
    q.build().expect("well formed")
}

#[test]
fn comorbidity_sql_matches_builder_in_all_modes() {
    let mut gen = HealthGenerator::new(5);
    let d0 = gen.comorbidity_diagnoses(0, 600);
    let d1 = gen.comorbidity_diagnoses(1, 600);
    let built = comorbidity_builder();
    assert_sql_builder_parity(
        COMORBIDITY_SQL,
        &built,
        &[("diagnoses1", d0.clone()), ("diagnoses2", d1.clone())],
        1,
    );
    // The SQL result also matches the independent cleartext reference.
    let reference = HealthGenerator::reference_comorbidity(&[d0.clone(), d1.clone()], 10);
    let report = Session::new(ConclaveConfig::standard().with_sequential_local())
        .bind("diagnoses1", d0)
        .bind("diagnoses2", d1)
        .run_sql(COMORBIDITY_SQL)
        .unwrap();
    let counts: Vec<i64> = report
        .output_for(1)
        .unwrap()
        .column_values("cnt")
        .unwrap()
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    let expected: Vec<i64> = reference.iter().map(|(_, c)| *c).collect();
    assert_eq!(counts, expected);
}

// ---------------------------------------------------------------------------
// Aspirin count (§7.4): distinct heart-disease patients prescribed aspirin.
// ---------------------------------------------------------------------------

fn aspirin_sql() -> String {
    format!(
        "CREATE TABLE diagnoses1 (patientID INT PUBLIC, diagnosis INT)
             WITH OWNER p1 AT 'hospital-a.org';
         CREATE TABLE diagnoses2 (patientID INT PUBLIC, diagnosis INT)
             WITH OWNER p2 AT 'hospital-b.org';
         CREATE TABLE medications1 (patientID INT PUBLIC, medication INT)
             WITH OWNER p1 AT 'hospital-a.org';
         CREATE TABLE medications2 (patientID INT PUBLIC, medication INT)
             WITH OWNER p2 AT 'hospital-b.org';
         SELECT COUNT(DISTINCT patientID) AS num_patients
         FROM (diagnoses1 UNION ALL diagnoses2)
              JOIN (medications1 UNION ALL medications2) ON patientID = patientID
         WHERE diagnosis = {HEART_DISEASE} AND medication = {ASPIRIN}
         REVEAL TO p1;"
    )
}

fn aspirin_builder() -> Query {
    let hospital_a = Party::new(1, "hospital-a.org");
    let hospital_b = Party::new(2, "hospital-b.org");
    let diag_schema = Schema::new(vec![
        ColumnDef::public("patientID", DataType::Int),
        ColumnDef::new("diagnosis", DataType::Int),
    ]);
    let med_schema = Schema::new(vec![
        ColumnDef::public("patientID", DataType::Int),
        ColumnDef::new("medication", DataType::Int),
    ]);
    let mut q = QueryBuilder::new();
    let d1 = q.input("diagnoses1", diag_schema.clone(), hospital_a.clone());
    let d2 = q.input("diagnoses2", diag_schema, hospital_b.clone());
    let m1 = q.input("medications1", med_schema.clone(), hospital_a.clone());
    let m2 = q.input("medications2", med_schema, hospital_b);
    let diag = q.concat(&[d1, d2]);
    let meds = q.concat(&[m1, m2]);
    let joined = q.join(diag, meds, &["patientID"], &["patientID"]);
    let matching = q.filter(
        joined,
        Expr::col("diagnosis")
            .eq(Expr::lit(HEART_DISEASE))
            .and(Expr::col("medication").eq(Expr::lit(ASPIRIN))),
    );
    let count = q.distinct_count(matching, "patientID", "num_patients");
    q.collect(count, &[hospital_a]);
    q.build().expect("well formed")
}

#[test]
fn aspirin_count_sql_matches_builder_in_all_modes() {
    let mut gen = HealthGenerator::new(17);
    let d0 = gen.diagnoses(0, 400);
    let d1 = gen.diagnoses(1, 400);
    let m0 = gen.medications(0, 400);
    let m1 = gen.medications(1, 400);
    let built = aspirin_builder();
    assert_sql_builder_parity(
        &aspirin_sql(),
        &built,
        &[
            ("diagnoses1", d0.clone()),
            ("diagnoses2", d1.clone()),
            ("medications1", m0.clone()),
            ("medications2", m1.clone()),
        ],
        1,
    );
    // The SQL count also matches the independent cleartext reference.
    let reference = HealthGenerator::reference_aspirin_count(
        &[d0.clone(), d1.clone()],
        &[m0.clone(), m1.clone()],
    );
    let report = Session::new(ConclaveConfig::standard().with_sequential_local())
        .bind("diagnoses1", d0)
        .bind("diagnoses2", d1)
        .bind("medications1", m0)
        .bind("medications2", m1)
        .run_sql(&aspirin_sql())
        .unwrap();
    let count = report
        .output_for(1)
        .and_then(|r| r.scalar().cloned())
        .and_then(|v| v.as_int())
        .unwrap();
    assert_eq!(count, reference);
}

// ---------------------------------------------------------------------------
// Credit scoring (the running example): join + grouped sum with trust
// annotations that enable the hybrid rewrites.
// ---------------------------------------------------------------------------

const CREDIT_SQL: &str = "
    CREATE TABLE demographics (ssn INT, zip INT TRUSTED BY (p1)) WITH OWNER p1;
    CREATE TABLE scores1 (ssn INT TRUSTED BY (p1), score INT) WITH OWNER p2;
    CREATE TABLE scores2 (ssn INT TRUSTED BY (p1), score INT) WITH OWNER p3;
    SELECT zip, SUM(score) AS total
    FROM demographics JOIN (scores1 UNION ALL scores2) ON ssn = ssn
    GROUP BY zip
    REVEAL TO p1;
";

fn credit_builder() -> Query {
    let regulator = Party::new(1, "p1");
    let bank_a = Party::new(2, "p2");
    let bank_b = Party::new(3, "p3");
    let demo = Schema::new(vec![
        ColumnDef::new("ssn", DataType::Int),
        ColumnDef::with_trust("zip", DataType::Int, TrustSet::of([1])),
    ]);
    let bank = Schema::new(vec![
        ColumnDef::with_trust("ssn", DataType::Int, TrustSet::of([1])),
        ColumnDef::new("score", DataType::Int),
    ]);
    let mut q = QueryBuilder::new();
    let demographics = q.input("demographics", demo, regulator.clone());
    let s1 = q.input("scores1", bank.clone(), bank_a);
    let s2 = q.input("scores2", bank, bank_b);
    let scores = q.concat(&[s1, s2]);
    let joined = q.join(demographics, scores, &["ssn"], &["ssn"]);
    let total = q.aggregate(joined, "total", AggFunc::Sum, &["zip"], "score");
    q.collect(total, &[regulator]);
    q.build().expect("well formed")
}

#[test]
fn credit_sql_matches_builder_and_enables_hybrid_rewrites() {
    let mut gen = CreditGenerator::new(11);
    let demo = gen.demographics(200);
    let s1 = gen.agency_scores(150);
    let s2 = gen.agency_scores(150);
    let built = credit_builder();
    assert_sql_builder_parity(
        CREDIT_SQL,
        &built,
        &[
            ("demographics", demo.clone()),
            ("scores1", s1.clone()),
            ("scores2", s2.clone()),
        ],
        1,
    );
    // The trust annotations written in SQL must enable the same hybrid
    // rewrites the builder schema enables: under the standard config, the
    // join and aggregation leave the monolithic-MPC frontier.
    let config = ConclaveConfig::standard().with_sequential_local();
    let session = Session::new(config.clone())
        .bind("demographics", demo)
        .bind("scores1", s1)
        .bind("scores2", s2);
    let sql_query = session.sql_query(CREDIT_SQL).unwrap();
    let sql_plan = compile(&sql_query, &config).unwrap();
    let builder_plan = compile(&built, &config).unwrap();
    assert_eq!(
        sql_plan.mpc_node_count(),
        builder_plan.mpc_node_count(),
        "SQL and builder plans must leave the same residue under MPC"
    );
    assert!(
        sql_plan
            .transformations
            .iter()
            .any(|t| t.contains("hybrid")),
        "trust annotations in SQL should trigger hybrid rewrites: {:?}",
        sql_plan.transformations
    );
}
