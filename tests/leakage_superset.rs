//! Differential check closing the loop on the static leakage linter: the
//! compiler's `LeakageReport` must be a **superset** of what execution
//! actually discloses.
//!
//! Two directions are pinned here:
//!
//! * For randomly generated annotated queries, every dynamic leakage event
//!   the driver records while running over the real channel-mesh party
//!   runtime (the same per-party transports `tests/wire_privacy.rs` sniffs —
//!   reveals are the only point where cleartext crosses the MPC boundary)
//!   must be covered by a disclosure in the static report. The linter may
//!   over-approximate; it must never under-approximate.
//! * Deliberately leaky plans — a mid-plan reveal to an untrusted party, and
//!   the operand-opening shape of the pre-circuit comparison bug — are
//!   rejected at compile time with a diagnostic naming the node, column,
//!   party and derivation chain.

// Demo/test target: panicking on bad setup is the desired behavior here
// (the workspace-level clippy::unwrap_used lint targets library code).
#![allow(clippy::unwrap_used)]

use conclave::ir::ops::Operator;
use conclave::ir::party::PartySet;
use conclave::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random per-column trust annotation over the two-party universe.
fn gen_trust(rng: &mut StdRng) -> &'static str {
    [
        "",
        " PUBLIC",
        " TRUSTED BY (p1)",
        " TRUSTED BY (p2)",
        " TRUSTED BY (p1, p2)",
    ][rng.gen_range(0..5usize)]
}

/// Generates a random annotated two-party script: random trust on every
/// column, a random query shape, and a random output recipient.
fn gen_annotated_script(rng: &mut StdRng) -> String {
    let decls = format!(
        "CREATE TABLE ta (k INT{}, v INT{}) WITH OWNER p1;
         CREATE TABLE tb (k INT{}, v INT{}) WITH OWNER p2;",
        gen_trust(rng),
        gen_trust(rng),
        gen_trust(rng),
        gen_trust(rng),
    );
    let recipient = rng.gen_range(1..3u32);
    let query = match rng.gen_range(0..5) {
        0 => "SELECT k, SUM(v) AS total FROM (ta UNION ALL tb) GROUP BY k".to_string(),
        1 => "SELECT COUNT(*) AS n FROM ta JOIN tb ON k = k".to_string(),
        2 => "SELECT k, SUM(v) AS total FROM ta JOIN tb ON k = k GROUP BY k".to_string(),
        3 => "SELECT DISTINCT k FROM (ta UNION ALL tb)".to_string(),
        _ => format!(
            "SELECT k, v FROM (ta UNION ALL tb) WHERE v > {}",
            rng.gen_range(0..4)
        ),
    };
    format!("{decls} {query} REVEAL TO p{recipient};")
}

fn session() -> Session {
    Session::new(
        ConclaveConfig::standard()
            .with_sequential_local()
            .with_channel_runtime(),
    )
    .bind(
        "ta",
        Relation::from_ints(&["k", "v"], &[vec![1, 2], vec![2, 7], vec![1, 4]]),
    )
    .bind(
        "tb",
        Relation::from_ints(&["k", "v"], &[vec![1, 3], vec![3, 5]]),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The superset property: static report ⊇ dynamic leakage events.
    #[test]
    fn static_report_covers_every_dynamic_reveal(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sql = gen_annotated_script(&mut rng);
        let report = match session().run_sql(&sql) {
            Ok(r) => r,
            // The linter proving a generated plan leaky and refusing to
            // compile it satisfies the property vacuously — nothing ran, so
            // nothing was disclosed.
            Err(SessionError::Compile(CompileError::Leakage(_))) => return,
            Err(other) => panic!("query failed for a non-leakage reason: {other}\n{sql}"),
        };
        let static_report = report
            .static_leakage
            .as_ref()
            .expect("the driver attaches the static report before executing");
        for event in &report.leakage {
            prop_assert!(
                static_report.covers(event.node, event.to_party),
                "dynamic reveal of node #{} to P{} ({}) is not claimed by the \
                 static report\nquery: {sql}\nreport:\n{static_report}",
                event.node,
                event.to_party,
                event.what,
            );
        }
    }
}

/// Builds the shared two-party base query: concat of two inputs whose `v`
/// columns only P1 is trusted with, collected by P1.
fn trusted_sum_query() -> conclave::ir::builder::Query {
    let pa = Party::new(1, "a");
    let pb = Party::new(2, "b");
    let schema = Schema::new(vec![
        ColumnDef::with_trust("k", DataType::Int, TrustSet::Public),
        ColumnDef::with_trust("v", DataType::Int, TrustSet::of([1])),
    ]);
    let mut q = QueryBuilder::new();
    let a = q.input("ta", schema.clone(), pa.clone());
    let b = q.input("tb", schema, pb);
    let both = q.concat(&[a, b]);
    q.collect(both, &[pa]);
    q.build().unwrap()
}

/// Finds the id of the first node with the given operator name.
fn node_named(query: &conclave::ir::builder::Query, name: &str) -> usize {
    query
        .dag
        .iter()
        .find(|n| n.op.name() == name)
        .unwrap_or_else(|| panic!("no {name} node"))
        .id
}

#[test]
fn tampered_mid_plan_reveal_is_rejected_at_compile_time() {
    // An adversarial (or buggy) pass inserts a reveal of the whole relation
    // to P2, who is not trusted with `v`. The linter must reject the plan
    // and name the node, column, party and derivation chain.
    let mut query = trusted_sum_query();
    let concat = node_named(&query, "concat");
    let reveal = query
        .dag
        .insert_after(
            concat,
            Operator::RevealTo {
                party: 2,
                columns: None,
            },
        )
        .unwrap();
    let err = compile(&query, &ConclaveConfig::standard()).unwrap_err();
    let CompileError::Leakage(v) = err else {
        panic!("expected a leakage violation, got: {err}");
    };
    assert_eq!(v.node, reveal);
    assert_eq!(v.party, 2);
    assert_eq!(v.column, "v");
    assert!(!v.chain.is_empty(), "diagnostic carries a derivation chain");
    let shown = v.to_string();
    assert!(shown.contains("P2") && shown.contains("`v`"), "{shown}");
}

#[test]
fn operand_opening_shape_is_rejected_statically() {
    // The pre-circuit comparison bug opened raw operands to every computing
    // party mid-plan. Expressed as a plan node, that shape must now be
    // impossible to compile.
    let mut query = trusted_sum_query();
    let concat = node_named(&query, "concat");
    query
        .dag
        .insert_after(
            concat,
            Operator::Open {
                recipients: PartySet::from_ids([1, 2]),
            },
        )
        .unwrap();
    let err = compile(&query, &ConclaveConfig::standard()).unwrap_err();
    let CompileError::Leakage(v) = err else {
        panic!("expected a leakage violation, got: {err}");
    };
    assert_eq!(v.party, 2);
    assert_eq!(v.column, "v");
}

#[test]
fn untampered_plan_passes_and_reports_the_declared_output() {
    let query = trusted_sum_query();
    let plan = compile(&query, &ConclaveConfig::standard()).unwrap();
    let out = plan.leakage.for_party(1);
    assert!(
        out.iter().any(|d| d.kind == DisclosureKind::QueryOutput),
        "P1's declared output is in the report"
    );
}
