//! Fuzz-ish certification of [`load_party_file`] against mangled inputs.
//!
//! Dealer files cross a trust boundary: the offline phase may run on a
//! different machine, and the online party loads whatever bytes arrive on
//! disk. The contract is that *every* malformed file — truncated, spliced
//! with garbage, count-corrupted, or missing outright — surfaces as a typed
//! [`PartyError`] and never as a panic or an absurd allocation. A clean
//! round trip must keep working, byte-for-byte equal to the generated
//! material.

// Demo/test target: panicking on bad setup is the desired behavior here
// (the workspace-level clippy::unwrap_used lint targets library code).
#![allow(clippy::unwrap_used)]

use conclave::mpc::dealer::{load_party_file, write_party_files, MaterialSpec};
use conclave::mpc::runtime::PartyError;
use proptest::prelude::*;
use std::path::PathBuf;

const PARTIES: usize = 3;

fn small_spec() -> MaterialSpec {
    MaterialSpec {
        triples: 8,
        bit_triples: 6,
        shared_bits: 4,
        dabits: 2,
        input_masks: 3,
    }
}

/// Writes a fresh set of dealer files into a unique temp dir and returns
/// (dir, per-party paths). Callers clean up via [`Scratch`]'s `Drop`.
struct Scratch {
    dir: PathBuf,
    paths: Vec<PathBuf>,
}

impl Scratch {
    fn new(tag: &str, seed: u64) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "conclave-dealer-files-{tag}-{}-{seed}",
            std::process::id()
        ));
        let paths = write_party_files(&dir, seed, PARTIES, small_spec()).unwrap();
        Scratch { dir, paths }
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn clean_files_round_trip() {
    let scratch = Scratch::new("roundtrip", 11);
    for (p, path) in scratch.paths.iter().enumerate() {
        let blocks = load_party_file(path).unwrap();
        assert_eq!(blocks.party as usize, p);
        assert_eq!(blocks.parties as usize, PARTIES);
        assert_eq!(blocks.triples.len(), small_spec().triples);
        assert_eq!(blocks.bit_triples.len(), small_spec().bit_triples);
        assert_eq!(blocks.shared_bits.len(), small_spec().shared_bits);
        assert_eq!(blocks.dabits.len(), small_spec().dabits);
        // Clear mask values appear only in the owner's own column.
        for (owner, masks) in blocks.input_masks.iter().enumerate() {
            assert_eq!(masks.len(), small_spec().input_masks);
            for m in masks {
                assert_eq!(m.clear.is_some(), owner == p);
            }
        }
    }
}

#[test]
fn missing_file_is_a_typed_io_error() {
    let scratch = Scratch::new("missing", 12);
    let gone = scratch.dir.join("party-9.dealer");
    match load_party_file(&gone) {
        Err(PartyError::Proto(msg)) => assert!(msg.contains("read"), "got {msg:?}"),
        other => panic!("expected Proto error for missing file, got {other:?}"),
    }
}

#[test]
fn wrong_header_and_bad_endpoints_are_rejected() {
    let scratch = Scratch::new("header", 13);
    let path = scratch.dir.join("mangled.dealer");

    // A file from some other tool entirely.
    std::fs::write(&path, "totally-not-a-dealer-file v9\n").unwrap();
    assert!(load_party_file(&path).is_err());

    // A structurally valid prefix claiming party 5 of 3: out of range.
    std::fs::write(&path, "conclave-dealer v1\nparty 5 of 3\nalpha 1\n").unwrap();
    match load_party_file(&path) {
        Err(PartyError::Proto(msg)) => {
            assert!(msg.contains("not a valid endpoint"), "got {msg:?}");
        }
        other => panic!("expected endpoint error, got {other:?}"),
    }

    // A degenerate single-party deal is equally meaningless.
    std::fs::write(&path, "conclave-dealer v1\nparty 0 of 1\nalpha 1\n").unwrap();
    assert!(load_party_file(&path).is_err());
}

#[test]
fn absurd_counts_error_instead_of_allocating() {
    let scratch = Scratch::new("counts", 14);
    let path = scratch.dir.join("mangled.dealer");
    // Claims ~2^60 triples but holds none: the parser must hit the typed
    // truncation error without first reserving memory the size of the lie.
    std::fs::write(
        &path,
        "conclave-dealer v1\nparty 0 of 3\nalpha 7\ntriples 1152921504606846976\n",
    )
    .unwrap();
    match load_party_file(&path) {
        Err(PartyError::Proto(msg)) => assert!(msg.contains("truncated"), "got {msg:?}"),
        other => panic!("expected truncation error, got {other:?}"),
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let scratch = Scratch::new("trailing", 15);
    let path = &scratch.paths[0];
    let mut text = std::fs::read_to_string(path).unwrap();
    text.push_str("\nleftover 123\n");
    std::fs::write(path, text).unwrap();
    match load_party_file(path) {
        Err(PartyError::Proto(msg)) => assert!(msg.contains("trailing"), "got {msg:?}"),
        other => panic!("expected trailing-data error, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Truncating a valid file at any byte boundary yields a typed error
    /// (or, for a cut inside trailing whitespace, the full parse) — never
    /// a panic.
    #[test]
    fn truncated_files_never_panic(seed in 0u64..4, party in 0usize..PARTIES, ppm in 0u64..1_000_000) {
        let scratch = Scratch::new("truncate", seed);
        let full = std::fs::read(&scratch.paths[party]).unwrap();
        let cut = (full.len() * ppm as usize) / 1_000_000;
        let path = scratch.dir.join("cut.dealer");
        std::fs::write(&path, &full[..cut]).unwrap();
        let result = load_party_file(&path);
        let suffix = &full[cut..];
        if suffix.iter().all(u8::is_ascii_whitespace) {
            // Only trailing whitespace was removed: every token is intact.
            prop_assert!(result.is_ok(), "cut at {} of {}: {:?}", cut, full.len(), result.err());
        } else {
            // Skip the (possibly shortened) token the cut landed in; if any
            // further token was removed, the parser must report truncation.
            let ws = suffix
                .iter()
                .position(|b| b.is_ascii_whitespace())
                .unwrap_or(suffix.len());
            if !suffix[ws..].iter().all(u8::is_ascii_whitespace) {
                prop_assert!(result.is_err(), "cut at {} of {}", cut, full.len());
            }
            // A cut inside the final token may shorten a number and still
            // parse; the contract under test there is absence of panics.
        }
    }

    /// Splicing garbage over one byte of a valid file either still parses
    /// (the byte landed in a digit and produced another number) or errors —
    /// never panics. Corrupting a letter of a section header always errors.
    #[test]
    fn spliced_bytes_never_panic(
        seed in 0u64..4,
        party in 0usize..PARTIES,
        ppm in 0u64..1_000_000,
        junk_ix in 0usize..4,
    ) {
        let junk = [b'x', b'-', b'?', 0xffu8][junk_ix];
        let scratch = Scratch::new("splice", seed);
        let mut bytes = std::fs::read(&scratch.paths[party]).unwrap();
        let at = (bytes.len() * ppm as usize) / 1_000_000 % bytes.len();
        let original = bytes[at];
        bytes[at] = junk;
        let path = scratch.dir.join("spliced.dealer");
        std::fs::write(&path, &bytes).unwrap();
        let result = load_party_file(&path);
        if original.is_ascii_alphabetic() {
            // A corrupted keyword can never re-parse as the expected token.
            prop_assert!(result.is_err());
        }
        // Digits hit by another digit-ish byte may legally re-parse; the
        // contract under test is absence of panics, which reaching this
        // line demonstrates.
        let _ = result;
    }
}
