//! Property-based integration tests: for randomly generated inputs, every
//! compiler configuration must produce the same query results as direct
//! cleartext evaluation, and the compiler's rewrites must never increase the
//! amount of work left under MPC.

// Demo/test target: panicking on bad setup is the desired behavior here
// (the workspace-level clippy::unwrap_used lint targets library code).
#![allow(clippy::unwrap_used)]

use conclave::prelude::*;
use conclave_engine::Relation;
use conclave_ir::expr::Expr;
use proptest::prelude::*;
use std::collections::HashMap;

/// Generates a small random (key, value) relation.
fn relation_strategy(max_rows: usize) -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0i64..8, 0i64..100), 1..max_rows)
}

fn to_relation(rows: &[(i64, i64)]) -> Relation {
    Relation::from_ints(
        &["key", "value"],
        &rows.iter().map(|(k, v)| vec![*k, *v]).collect::<Vec<_>>(),
    )
}

/// The reference result: per-key sums of values > threshold across both
/// parties' data.
fn reference(a: &[(i64, i64)], b: &[(i64, i64)], threshold: i64) -> HashMap<i64, i64> {
    let mut out = HashMap::new();
    for (k, v) in a.iter().chain(b.iter()) {
        if *v > threshold {
            *out.entry(*k).or_insert(0) += *v;
        }
    }
    out
}

fn build_query(threshold: i64) -> conclave_ir::builder::Query {
    let pa = Party::new(1, "a");
    let pb = Party::new(2, "b");
    let schema = Schema::new(vec![
        ColumnDef::new("key", DataType::Int),
        ColumnDef::new("value", DataType::Int),
    ]);
    let mut q = QueryBuilder::new();
    let a = q.input("a", schema.clone(), pa.clone());
    let b = q.input("b", schema, pb);
    let cat = q.concat(&[a, b]);
    let filtered = q.filter(cat, Expr::col("value").gt(Expr::lit(threshold)));
    let agg = q.aggregate(filtered, "total", AggFunc::Sum, &["key"], "value");
    q.collect(agg, &[pa]);
    q.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn compiled_execution_matches_reference_for_random_inputs(
        a in relation_strategy(30),
        b in relation_strategy(30),
        threshold in 0i64..50,
    ) {
        let query = build_query(threshold);
        let expected = reference(&a, &b, threshold);
        let mut inputs = HashMap::new();
        inputs.insert("a".to_string(), to_relation(&a));
        inputs.insert("b".to_string(), to_relation(&b));

        for config in [
            ConclaveConfig::standard().with_sequential_local(),
            ConclaveConfig::mpc_only().with_sequential_local(),
        ] {
            let plan = conclave_core::compile(&query, &config).unwrap();
            let mut driver = Driver::new(config);
            let report = driver.run(&plan, &inputs).unwrap();
            let out = report.output_for(1).unwrap();
            prop_assert_eq!(out.num_rows(), expected.len());
            for row in &out.rows {
                let key = row[0].as_int().unwrap();
                let total = row[1].as_int().unwrap();
                prop_assert_eq!(expected[&key], total, "key {}", key);
            }
        }
    }

    #[test]
    fn optimizations_never_increase_mpc_work(
        a in relation_strategy(20),
        b in relation_strategy(20),
    ) {
        let query = build_query(10);
        let optimized = conclave_core::compile(&query, &ConclaveConfig::standard()).unwrap();
        let baseline = conclave_core::compile(&query, &ConclaveConfig::mpc_only()).unwrap();
        prop_assert!(optimized.mpc_node_count() <= baseline.mpc_node_count());

        // And the actual executed MPC work (non-linear operations) is no
        // larger either.
        let mut inputs = HashMap::new();
        inputs.insert("a".to_string(), to_relation(&a));
        inputs.insert("b".to_string(), to_relation(&b));
        let mut d1 = Driver::new(ConclaveConfig::standard().with_sequential_local());
        let mut d2 = Driver::new(ConclaveConfig::mpc_only().with_sequential_local());
        let opt = d1.run(&optimized, &inputs).unwrap();
        let base = d2.run(&baseline, &inputs).unwrap();
        prop_assert!(
            opt.mpc_stats.counts.nonlinear_ops() <= base.mpc_stats.counts.nonlinear_ops()
        );
        prop_assert!(opt
            .output_for(1)
            .unwrap()
            .same_rows_unordered(base.output_for(1).unwrap()));
    }
}
