//! Active-adversary certification of the SPDZ-MACed online phase.
//!
//! The offline/online split claims *malicious security for opened values*:
//! every share carries a MAC under a secret-shared global key α, every opened
//! value is logged, and reveal boundaries run a deferred `check_integrity`
//! that aborts on any additive forgery. This suite certifies the claim with
//! the [`TamperingTransport`] man-in-the-middle harness from `conclave-net`:
//!
//! * a property test tampers **one** online message — a Beaver `d`/`e`
//!   opening, a circuit masked opening, or a reveal broadcast — at one
//!   receiver with a random fault, and asserts the whole mesh aborts with
//!   [`PartyError::Integrity`] instead of accepting a wrong opening;
//! * a pinned pair of tests mounts the *consistent additive lie*: every
//!   receiver offsets its successor's reveal frames by the same Δ, so all
//!   parties reconstruct the **same** wrong value and every cross-party
//!   equality check passes. On the pre-MAC runtime shape (commit `79e4f04`,
//!   reproduced bit-for-bit by [`PartySession::unauthenticated`]) the attack
//!   succeeds silently — the mesh returns `expected + Δ` with no error — and
//!   on the authenticated runtime the very same attack aborts on every party;
//! * a pinned trio documents the *known* soundness gap of MACs over the ring
//!   Z_2^64: a consistent Δ = 2^63 lie escapes the check whenever
//!   `α · Σρ` is even (≈ 3/4 of seeds), while any low-bit Δ is always
//!   caught. See the "high-bit soundness gap" section below.

// Demo/test target: panicking on bad setup is the desired behavior here
// (the workspace-level clippy::unwrap_used lint targets library code).
#![allow(clippy::unwrap_used)]

use conclave::mpc::runtime::{PartyError, PartyResult, PartySession};
use conclave::mpc::AuthShare;
use conclave::net::{ChannelTransport, Fault, FaultSpec, MessageKind, TamperingTransport};
use proptest::prelude::*;
use std::sync::atomic::Ordering;

/// Input sentinels: the adversary wins if a forged opening of these is
/// accepted.
const INPUTS_X: [i64; 3] = [1_000_003, -77, 40_000];
const INPUTS_Y: [i64; 3] = [12, 5_000_011, -40_001];

/// The honest result of [`party_program`]: the pairwise products followed by
/// the pairwise less-than bits.
fn honest_output() -> Vec<i64> {
    let mut out: Vec<i64> = INPUTS_X
        .iter()
        .zip(&INPUTS_Y)
        .map(|(&x, &y)| x * y)
        .collect();
    out.extend(
        INPUTS_X
            .iter()
            .zip(&INPUTS_Y)
            .map(|(&x, &y)| i64::from(x < y)),
    );
    out
}

/// Shares both input columns, multiplies and compares them, opens everything
/// and — on the authenticated runtime — runs the deferred MAC check, exactly
/// like the party runtime's reveal boundary does.
fn party_program(sess: &mut PartySession) -> PartyResult<Vec<i64>> {
    let mut proto = sess.step(0);
    let own0 = proto.party() == 0;
    let own1 = proto.party() == 1;
    let sx = proto.input_column(0, own0.then_some(INPUTS_X.as_slice()), INPUTS_X.len())?;
    let sy = proto.input_column(1, own1.then_some(INPUTS_Y.as_slice()), INPUTS_Y.len())?;
    let pairs: Vec<(AuthShare, AuthShare)> = sx.iter().copied().zip(sy.iter().copied()).collect();
    let mut vals = proto.mul_batch(&pairs)?;
    vals.extend(proto.lt_batch(&pairs)?);
    let out = proto.open_column(&vals)?;
    proto.session().check_integrity()?;
    Ok(out)
}

/// Runs [`party_program`] on a 3-party channel mesh wrapped by the tamper
/// harness. Returns each party's result plus whether each endpoint's armed
/// fault actually fired.
fn run_attacked_mesh(
    authenticated: bool,
    seed: u64,
    spec_for: impl FnMut(u32) -> Option<FaultSpec>,
) -> (Vec<PartyResult<Vec<i64>>>, Vec<bool>) {
    let mesh = TamperingTransport::wrap_mesh(ChannelTransport::mesh(3), spec_for);
    let fired: Vec<_> = mesh.iter().map(|t| t.fired_handle()).collect();
    let results = std::thread::scope(|s| {
        let handles: Vec<_> = mesh
            .into_iter()
            .map(|t| {
                s.spawn(move || -> PartyResult<Vec<i64>> {
                    let mut sess = if authenticated {
                        PartySession::new(&t, seed)
                    } else {
                        PartySession::unauthenticated(&t, seed)
                    };
                    party_program(&mut sess)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("party thread panicked"))
            .collect::<Vec<_>>()
    });
    let fired = fired.iter().map(|f| f.load(Ordering::SeqCst)).collect();
    (results, fired)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tampering any single online open — a Beaver/circuit masked opening or
    /// a reveal broadcast — at any receiver, from any sender, with any
    /// payload corruption, makes the deferred MAC check abort on **every**
    /// party. No party ever accepts a wrong opening.
    #[test]
    fn any_single_online_tamper_aborts_the_whole_mesh(
        target in 0u32..3,
        from in 0u32..3,
        masked in any::<bool>(),
        offset in any::<bool>(),
        corruption in 1u64..u64::MAX,
        skip in 0usize..6,
    ) {
        let kind = if masked { MessageKind::MaskedOpen } else { MessageKind::Reveal };
        let fault = if offset {
            Fault::Offset { delta: corruption }
        } else {
            Fault::FlipBits { mask: corruption }
        };
        let (results, fired) = run_attacked_mesh(true, 555, |p| {
            (p == target).then(|| FaultSpec::new(fault).kind(kind).from(from).skip(skip))
        });
        if fired.iter().any(|&f| f) {
            // The attack landed: nobody may accept. The tampered receiver's
            // σ-share (or XOR digest) breaks the global MAC relation, so the
            // collective check fails everywhere.
            for (p, r) in results.iter().enumerate() {
                prop_assert!(r.is_err(), "P{p} accepted a tampered opening: {r:?}");
            }
            prop_assert!(
                results
                    .iter()
                    .any(|r| matches!(r, Err(PartyError::Integrity(_)))),
                "the abort must be an integrity violation, got {results:?}"
            );
        } else {
            // The spec matched nothing (e.g. self-directed fault or skip past
            // the end of the stream): the run must be byte-for-byte honest.
            for r in results {
                prop_assert_eq!(r.unwrap(), honest_output());
            }
        }
    }
}

/// The coordinated man-in-the-middle: every receiver adds Δ to the reveal
/// frames of its successor peer, so each party reconstructs `value + Δ` —
/// the *same* wrong value everywhere.
fn consistent_lie(delta: u64) -> impl FnMut(u32) -> Option<FaultSpec> {
    move |p| {
        Some(
            FaultSpec::new(Fault::Offset { delta })
                .kind(MessageKind::Reveal)
                .from((p + 1) % 3),
        )
    }
}

/// **Pinned regression — the attack this PR exists to kill.** On the pre-MAC
/// runtime shape (commit `79e4f04`: unauthenticated shares, no opened-value
/// log, no reveal-boundary check — preserved bit-for-bit by
/// [`PartySession::unauthenticated`]) the consistent additive lie succeeds
/// *silently*: every party completes, every cross-party equality check would
/// pass (all parties hold identical outputs), and the accepted result is
/// wrong by exactly Δ in every opened word. If this test ever fails, the
/// unauthenticated baseline stopped reproducing the historical runtime and
/// the malicious-security suite lost its falsifier.
#[test]
fn the_pre_mac_runtime_accepts_the_consistent_lie_silently() {
    const DELTA: u64 = 5;
    let (results, fired) = run_attacked_mesh(false, 555, consistent_lie(DELTA));
    assert!(
        fired.iter().all(|&f| f),
        "the attack must land on every link"
    );
    let forged: Vec<Vec<i64>> = results
        .into_iter()
        .map(|r| r.expect("the unauthenticated runtime accepts the forgery"))
        .collect();
    let expected_forgery: Vec<i64> = honest_output()
        .into_iter()
        .map(|v| v + DELTA as i64)
        .collect();
    for out in &forged {
        assert_eq!(
            out, &expected_forgery,
            "every party silently accepts the same forged opening"
        );
    }
}

/// The same coordinated attack against the authenticated runtime: the forged
/// opening is consistent across parties — cross-party equality cannot see it
/// — but `Σ m_i − α·x'` is off by `α·Δ`, so the deferred MAC check aborts on
/// every party.
#[test]
fn the_authenticated_runtime_aborts_the_same_consistent_lie() {
    let (results, fired) = run_attacked_mesh(true, 555, consistent_lie(5));
    assert!(
        fired.iter().all(|&f| f),
        "the attack must land on every link"
    );
    for (p, r) in results.iter().enumerate() {
        assert!(
            matches!(r, Err(PartyError::Integrity(_))),
            "P{p} must abort with an integrity violation, got {r:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// The Z_2^64 high-bit soundness gap.
// ---------------------------------------------------------------------------
//
// MACs over the *ring* Z_2^64 are strictly weaker than SPDZ's field MACs.
// The deferred check accepts a forged opening `x' = x + Δ` iff the combined
// residue `α · Δ · Σ_j ρ_j` vanishes mod 2^64 (α the global key, ρ_j the
// random batching coefficients of the tampered openings). For Δ = 2^63 the
// product only needs `α · Σ ρ_j` to be *even* — probability ≈ 3/4 over the
// key material (the PoC sweep measured 33 escapes in 40 seeds) — because the
// top bit annihilates under any even factor. A low-bit Δ enjoys the full
// 2^-64-ish soundness and is always caught. This is the classic reason
// SPDZ2k carries MACs in the extended ring Z_2^{64+s} and only uses the low
// 64 bits of the value: the extra s bits restore soundness 2^-s against
// exactly this attack. Our dealer stays in plain Z_2^64, so the gap is real
// and these tests *pin* it rather than hide it — if either starts failing,
// the MAC arithmetic changed and the documented threat model must be
// re-audited.

/// Pinned escape: at session seed 2 the key material makes `α·Σρ` even, so
/// the consistent Δ = 2^63 lie passes the MAC check on every party. The
/// forgery is total — all three parties accept, they accept the *same*
/// wrong column, and every word is off by exactly 2^63.
#[test]
fn high_bit_consistent_lie_escapes_at_a_pinned_seed() {
    const DELTA: u64 = 1 << 63;
    let (results, fired) = run_attacked_mesh(true, 2, consistent_lie(DELTA));
    assert!(
        fired.iter().all(|&f| f),
        "the attack must land on every link"
    );
    let forged: Vec<Vec<i64>> = results
        .into_iter()
        .map(|r| r.expect("seed 2 is a pinned escape: the MAC check passes"))
        .collect();
    let expected_forgery: Vec<i64> = honest_output()
        .into_iter()
        .map(|v| v.wrapping_add(DELTA as i64))
        .collect();
    for out in &forged {
        assert_eq!(
            out, &expected_forgery,
            "an escape means every party accepts the identical forged column"
        );
    }
}

/// Pinned catch: at session seed 3 the combined residue is odd, so the very
/// same Δ = 2^63 attack aborts with an integrity violation on every party.
/// Together with the pinned escape this brackets the ≈3/4 escape rate.
#[test]
fn high_bit_consistent_lie_is_caught_at_a_pinned_seed() {
    let (results, fired) = run_attacked_mesh(true, 3, consistent_lie(1 << 63));
    assert!(
        fired.iter().all(|&f| f),
        "the attack must land on every link"
    );
    for (p, r) in results.iter().enumerate() {
        assert!(
            matches!(r, Err(PartyError::Integrity(_))),
            "P{p} must abort with an integrity violation, got {r:?}"
        );
    }
}

/// The gap is strictly a high-bit phenomenon: at the *escaping* seed, a
/// low-bit Δ on the same links is still caught everywhere, because
/// `α · Δ · Σρ` can only vanish mod 2^64 when Δ contributes most of the
/// 64 zero bits itself.
#[test]
fn low_bit_delta_is_still_caught_at_the_escaping_seed() {
    let (results, fired) = run_attacked_mesh(true, 2, consistent_lie(5));
    assert!(
        fired.iter().all(|&f| f),
        "the attack must land on every link"
    );
    for (p, r) in results.iter().enumerate() {
        assert!(
            matches!(r, Err(PartyError::Integrity(_))),
            "P{p} must abort with an integrity violation, got {r:?}"
        );
    }
}
