//! Property-based differential tests between the two cleartext engines.
//!
//! Every test generates random relations (including null cells, mixed-type
//! columns, duplicate keys, empty and single-row inputs) and random operator
//! parameters, executes the operator on both the row engine
//! (`conclave_engine::execute`) and the vectorized columnar engine
//! (`conclave_engine::execute_vectorized`), and requires *identical* results:
//! same schema, same rows in the same order — or the same error disposition.
//! Each operator class runs at least 64 generated cases.

// Demo/test target: panicking on bad setup is the desired behavior here
// (the workspace-level clippy::unwrap_used lint targets library code).
#![allow(clippy::unwrap_used)]

use conclave_engine::{execute, execute_vectorized, Relation};
use conclave_ir::expr::Expr;
use conclave_ir::ops::{AggFunc, JoinKind, Operand, Operator};
use conclave_ir::schema::{ColumnDef, Schema};
use conclave_ir::types::{DataType, Value};
use proptest::prelude::*;

/// Raw generated cell material: `(int value, type selector)`.
type RawRow = (i64, i64, i64, u8);

/// Maps a raw integer plus a selector to a runtime value. Selector ranges
/// keep columns mostly integer (the realistic case) with a tail of nulls,
/// floats, bools and strings to exercise the generic engine paths.
fn to_value(raw: i64, sel: u8) -> Value {
    match sel % 12 {
        0 => Value::Null,
        1 => Value::Float(raw as f64 / 2.0),
        2 => Value::Bool(raw % 2 == 0),
        3 => Value::Str(format!("s{}", raw.rem_euclid(5))),
        _ => Value::Int(raw),
    }
}

/// Builds a three-column relation from generated rows. Column `a` is a small
/// integer key (duplicate-heavy), column `b` is mixed-typed via the selector,
/// column `c` is a plain integer value.
fn to_relation(rows: &[RawRow]) -> Relation {
    let schema = Schema::new(vec![
        ColumnDef::new("a", DataType::Int),
        ColumnDef::new("b", DataType::Int),
        ColumnDef::new("c", DataType::Int),
    ]);
    let data = rows
        .iter()
        .map(|&(k, v, w, sel)| vec![Value::Int(k.rem_euclid(6)), to_value(v, sel), Value::Int(w)])
        .collect();
    Relation::new(schema, data).unwrap()
}

/// All-integer variant (exercises the typed fast paths end to end).
fn to_int_relation(rows: &[RawRow], names: [&str; 3]) -> Relation {
    Relation::from_ints(
        &names,
        &rows
            .iter()
            .map(|&(k, v, w, _)| vec![k.rem_euclid(6), v, w])
            .collect::<Vec<_>>(),
    )
}

fn rows_strategy(max: usize) -> impl Strategy<Value = Vec<RawRow>> {
    prop::collection::vec((0i64..1000, -500i64..500, -3i64..40, 0u8..255), 0..max)
}

/// Executes `op` on both engines and requires identical outcomes.
fn assert_engines_identical(op: &Operator, inputs: &[&Relation]) {
    let row = execute(op, inputs);
    let vec = execute_vectorized(op, inputs);
    match (row, vec) {
        (Ok(r), Ok(v)) => {
            assert_eq!(
                r.schema.names(),
                v.schema.names(),
                "{op}: schema divergence"
            );
            assert_eq!(r.rows, v.rows, "{op}: result divergence");
        }
        (Err(_), Err(_)) => {}
        (r, v) => panic!("{op}: engines disagree on success: row={r:?} columnar={v:?}"),
    }
}

/// Deterministically derives a predicate tree from a seed, covering every
/// comparison, boolean combinators and negation.
fn predicate_from_seed(seed: i64, threshold: i64) -> Expr {
    let base = match seed.rem_euclid(6) {
        0 => Expr::col("a").gt(Expr::lit(threshold.rem_euclid(6))),
        1 => Expr::col("b").le(Expr::lit(threshold)),
        2 => Expr::col("c").eq(Expr::lit(threshold.rem_euclid(40))),
        3 => Expr::col("b").ne(Expr::col("c")),
        4 => Expr::col("a").ge(Expr::col("c")),
        _ => Expr::col("b").lt(Expr::col("a").add(Expr::lit(threshold))),
    };
    match (seed / 6).rem_euclid(4) {
        0 => base,
        1 => base.not(),
        2 => base.and(Expr::col("c").gt(Expr::lit(0))),
        _ => base.or(Expr::col("a").eq(Expr::lit(threshold.rem_euclid(3)))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn differential_filter(rows in rows_strategy(40), seed in 0i64..10_000, threshold in -20i64..20) {
        let rel = to_relation(&rows);
        let op = Operator::Filter { predicate: predicate_from_seed(seed, threshold) };
        assert_engines_identical(&op, &[&rel]);
        // Also over a pure-int relation (typed fast path).
        let ints = to_int_relation(&rows, ["a", "b", "c"]);
        assert_engines_identical(&op, &[&ints]);
    }

    #[test]
    fn differential_project(rows in rows_strategy(30), sel in 0usize..64) {
        let rel = to_relation(&rows);
        let all = ["a", "b", "c", "a"]; // duplicates allowed
        let count = sel % 4;
        let columns: Vec<String> = (0..=count).map(|i| all[(sel + i) % 4].to_string()).collect();
        let op = Operator::Project { columns };
        assert_engines_identical(&op, &[&rel]);
    }

    #[test]
    fn differential_aggregate(rows in rows_strategy(40), which in 0u8..8) {
        let rel = to_relation(&rows);
        let func = match which % 4 {
            0 => AggFunc::Sum,
            1 => AggFunc::Count,
            2 => AggFunc::Min,
            _ => AggFunc::Max,
        };
        let group_by: Vec<String> = if which < 4 { vec!["a".into()] } else { vec![] };
        let over = if func == AggFunc::Count { None } else { Some("b".to_string()) };
        let op = Operator::Aggregate { group_by: group_by.clone(), func, over, out: "agg".into() };
        assert_engines_identical(&op, &[&rel]);
        // Pure-int variant over `c` (fast path), and mixed grouping keys.
        let int_op = Operator::Aggregate {
            group_by,
            func,
            over: if func == AggFunc::Count { None } else { Some("c".to_string()) },
            out: "agg".into(),
        };
        let ints = to_int_relation(&rows, ["a", "b", "c"]);
        assert_engines_identical(&int_op, &[&ints]);
        let mixed_key = Operator::Aggregate {
            group_by: vec!["b".into()],
            func,
            over: if func == AggFunc::Count { None } else { Some("c".to_string()) },
            out: "agg".into(),
        };
        assert_engines_identical(&mixed_key, &[&rel]);
    }

    #[test]
    fn differential_join(left in rows_strategy(30), right in rows_strategy(30), mixed in 0u8..2) {
        let (l, r) = if mixed == 0 {
            (to_int_relation(&left, ["k", "x", "y"]), to_int_relation(&right, ["k", "u", "v"]))
        } else {
            // Mixed-typed join keys via column `b` renamed to `k`.
            let mut l = to_relation(&left);
            let mut r = to_relation(&right);
            l.schema.columns[1].name = "k".into();
            r.schema.columns[1].name = "k".into();
            (l, r)
        };
        let op = Operator::Join {
            left_keys: vec!["k".into()],
            right_keys: vec!["k".into()],
            kind: JoinKind::Inner,
        };
        assert_engines_identical(&op, &[&l, &r]);
    }

    #[test]
    fn differential_compute(rows in rows_strategy(30), which in 0u8..12, lit in -5i64..6) {
        let rel = to_relation(&rows);
        let operand = |i: u8| -> Operand {
            match i % 4 {
                0 => Operand::col("a"),
                1 => Operand::col("b"),
                2 => Operand::col("c"),
                _ => Operand::lit(lit),
            }
        };
        let op = if which % 2 == 0 {
            Operator::Multiply {
                // `out` may collide with an existing column (replace) or not
                // (append).
                out: if which < 6 { "b".into() } else { "prod".into() },
                operands: vec![operand(which), operand(which / 2)],
            }
        } else {
            Operator::Divide {
                out: if which < 6 { "c".into() } else { "ratio".into() },
                num: operand(which),
                den: operand(which / 2), // includes division by zero
            }
        };
        assert_engines_identical(&op, &[&rel]);
    }

    #[test]
    fn differential_ordering_ops(rows in rows_strategy(40), which in 0u8..12, n in 0usize..50) {
        let rel = to_relation(&rows);
        let column = ["a", "b", "c"][(which % 3) as usize].to_string();
        let op = match which % 6 {
            0 => Operator::SortBy { column, ascending: true },
            1 => Operator::SortBy { column, ascending: false },
            2 => Operator::Limit { n },
            3 => Operator::Distinct { columns: vec![column, "a".into()] },
            4 => Operator::DistinctCount { column, out: "n".into() },
            _ => Operator::Shuffle,
        };
        assert_engines_identical(&op, &[&rel]);
        assert_engines_identical(&Operator::Enumerate { out: "idx".into() }, &[&rel]);
    }

    #[test]
    fn differential_nary_ops(a in rows_strategy(20), b in rows_strategy(20), asc in 0u8..2) {
        let ra = to_relation(&a);
        let rb = to_relation(&b);
        assert_engines_identical(&Operator::Concat, &[&ra, &rb]);
        assert_engines_identical(&Operator::Concat, &[&ra, &rb, &ra]);
        let merge = Operator::Merge { column: "c".into(), ascending: asc == 0 };
        assert_engines_identical(&merge, &[&ra, &rb]);
    }

    #[test]
    fn differential_select_by_index(rows in rows_strategy(25), picks in prop::collection::vec(0i64..40, 0..10)) {
        let rel = to_relation(&rows);
        // Indices may fall out of bounds; both engines must then agree on the
        // error.
        let indexes = Relation::from_ints(
            &["i"],
            &picks.iter().map(|&p| vec![p]).collect::<Vec<_>>(),
        );
        let op = Operator::ObliviousSelect { index_column: "i".into() };
        assert_engines_identical(&op, &[&rel, &indexes]);
    }

    #[test]
    fn differential_operator_pipelines(rows in rows_strategy(35), seeds in prop::collection::vec((0u8..6, -10i64..10), 1..5)) {
        // A random chain of unary operators, with engine agreement checked
        // after every stage.
        let mut row_rel = to_relation(&rows);
        for &(kind, p) in &seeds {
            let op = match kind {
                0 => Operator::Filter { predicate: predicate_from_seed(p, p + 3) },
                1 => Operator::SortBy { column: "b".into(), ascending: p % 2 == 0 },
                2 => Operator::Multiply {
                    out: "c".into(),
                    operands: vec![Operand::col("c"), Operand::lit(p)],
                },
                3 => Operator::Limit { n: p.unsigned_abs() as usize * 3 },
                4 => Operator::Shuffle,
                _ => Operator::Aggregate {
                    group_by: vec!["a".into()],
                    func: AggFunc::Sum,
                    over: Some("c".into()),
                    out: "c".into(),
                },
            };
            // Aggregation changes the schema; only apply it as a terminal op.
            if matches!(op, Operator::Aggregate { .. }) {
                assert_engines_identical(&op, &[&row_rel]);
                break;
            }
            assert_engines_identical(&op, &[&row_rel]);
            row_rel = match execute(&op, &[&row_rel]) {
                Ok(r) => r,
                Err(_) => break,
            };
        }
    }
}

#[test]
fn differential_edge_shapes() {
    // Deterministic shapes the random generator may or may not hit: empty,
    // single-row, all-duplicate keys, all-null columns.
    let empty = to_relation(&[]);
    let single = to_relation(&[(3, 7, -1, 9)]);
    let dups: Vec<RawRow> = (0..12).map(|i| (6, i, 1, 4)).collect(); // key 0 everywhere
    let dup_rel = to_relation(&dups);
    let all_null = Relation::new(
        Schema::ints(&["a", "b", "c"]),
        (0..4)
            .map(|i| vec![Value::Int(i), Value::Null, Value::Null])
            .collect(),
    )
    .unwrap();
    for rel in [&empty, &single, &dup_rel, &all_null] {
        for op in [
            Operator::Filter {
                predicate: Expr::col("b").gt(Expr::lit(0)),
            },
            Operator::Aggregate {
                group_by: vec!["a".into()],
                func: AggFunc::Sum,
                over: Some("b".into()),
                out: "s".into(),
            },
            Operator::Aggregate {
                group_by: vec![],
                func: AggFunc::Min,
                over: Some("b".into()),
                out: "m".into(),
            },
            Operator::SortBy {
                column: "b".into(),
                ascending: true,
            },
            Operator::Distinct {
                columns: vec!["a".into(), "b".into()],
            },
            Operator::DistinctCount {
                column: "b".into(),
                out: "n".into(),
            },
        ] {
            assert_engines_identical(&op, &[rel]);
        }
        let join = Operator::Join {
            left_keys: vec!["a".into()],
            right_keys: vec!["a".into()],
            kind: JoinKind::Inner,
        };
        assert_engines_identical(&join, &[rel, &dup_rel]);
    }
}
