//! Plan-lint golden corpus: `EXPLAIN LEAKAGE` over the example queries.
//!
//! Every query in the example corpus is compiled under the standard
//! configuration and its statically certified [`LeakageReport`] is rendered
//! and diffed against a checked-in golden file in `tests/golden/`. A diff
//! means the compiler changed what some party learns — which must be a
//! conscious, reviewed decision, never an accident.
//!
//! CI runs this suite as the `plan-lint` job. To refresh the goldens after
//! an intentional change, run:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test plan_lint
//! ```
//!
//! and review the resulting diff like any other code change.

// Demo/test target: panicking on bad setup is the desired behavior here
// (the workspace-level clippy::unwrap_used lint targets library code).
#![allow(clippy::unwrap_used)]

use conclave::data::health::{ASPIRIN, HEART_DISEASE};
use conclave::ir::ops::Operand;
use conclave::prelude::*;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.leakage.txt"))
}

/// Diffs a rendered report against its golden file (or rewrites the golden
/// when `UPDATE_GOLDEN=1`).
fn check_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, rendered).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        rendered, expected,
        "leakage report for `{name}` changed — a party now learns something \
         different; if intentional, refresh with UPDATE_GOLDEN=1 and review \
         the diff"
    );
}

fn lint_sql(name: &str, sql: &str) {
    let report = Session::new(ConclaveConfig::standard())
        .explain_leakage_sql(sql)
        .unwrap_or_else(|e| panic!("{name} failed the leakage lint: {e}"));
    check_golden(name, &report.render());
}

fn lint_query(name: &str, query: &conclave::ir::builder::Query) {
    let plan = compile(query, &ConclaveConfig::standard())
        .unwrap_or_else(|e| panic!("{name} failed the leakage lint: {e}"));
    check_golden(name, &plan.leakage.render());
}

#[test]
fn comorbidity_leakage_is_pinned() {
    lint_sql(
        "comorbidity",
        "CREATE TABLE diagnoses1 (patientID INT PUBLIC, diagnosis INT)
             WITH OWNER p1 AT 'hospital-a.org';
         CREATE TABLE diagnoses2 (patientID INT PUBLIC, diagnosis INT)
             WITH OWNER p2 AT 'hospital-b.org';
         SELECT diagnosis, COUNT(*) AS cnt
         FROM (diagnoses1 UNION ALL diagnoses2)
         GROUP BY diagnosis
         ORDER BY cnt DESC
         LIMIT 10
         REVEAL TO p1;",
    );
}

#[test]
fn aspirin_count_leakage_is_pinned() {
    lint_sql(
        "aspirin_count",
        &format!(
            "CREATE TABLE diagnoses1 (patientID INT PUBLIC, diagnosis INT)
                 WITH OWNER p1 AT 'hospital-a.org';
             CREATE TABLE diagnoses2 (patientID INT PUBLIC, diagnosis INT)
                 WITH OWNER p2 AT 'hospital-b.org';
             CREATE TABLE medications1 (patientID INT PUBLIC, medication INT)
                 WITH OWNER p1 AT 'hospital-a.org';
             CREATE TABLE medications2 (patientID INT PUBLIC, medication INT)
                 WITH OWNER p2 AT 'hospital-b.org';
             SELECT COUNT(DISTINCT patientID) AS num_patients
             FROM (diagnoses1 UNION ALL diagnoses2)
                  JOIN (medications1 UNION ALL medications2) ON patientID = patientID
             WHERE diagnosis = {HEART_DISEASE} AND medication = {ASPIRIN}
             REVEAL TO p1;"
        ),
    );
}

/// The credit-regulation query of §2.1/§7.3 (builder form, SSN trust
/// annotation on — the hybrid-join configuration).
#[test]
fn credit_regulation_leakage_is_pinned() {
    let regulator = Party::new(1, "mpc.ftc.gov");
    let agency_a = Party::new(2, "mpc.a.com");
    let agency_b = Party::new(3, "mpc.b.cash");
    let demo_schema = Schema::new(vec![
        ColumnDef::new("ssn", DataType::Int),
        ColumnDef::with_trust("zip", DataType::Int, TrustSet::of([1])),
    ]);
    let agency_schema = Schema::new(vec![
        ColumnDef::with_trust("ssn", DataType::Int, TrustSet::of([1])),
        ColumnDef::new("score", DataType::Int),
    ]);
    let mut q = QueryBuilder::new();
    let demographics = q.input("demographics", demo_schema, regulator.clone());
    let scores1 = q.input("scores1", agency_schema.clone(), agency_a);
    let scores2 = q.input("scores2", agency_schema, agency_b);
    let scores = q.concat(&[scores1, scores2]);
    let joined = q.join(demographics, scores, &["ssn"], &["ssn"]);
    let by_zip = q.count(joined, "count", &["zip"]);
    let totals = q.aggregate(joined, "total", AggFunc::Sum, &["zip"], "score");
    let combined = q.join(totals, by_zip, &["zip"], &["zip"]);
    let avg = q.divide(
        combined,
        "avg_score",
        Operand::col("total"),
        Operand::col("count"),
    );
    q.collect(avg, &[regulator]);
    lint_query("credit_regulation", &q.build().unwrap());
}

/// The two-party sales aggregation of `examples/multi_party_demo.rs`.
#[test]
fn multi_party_demo_leakage_is_pinned() {
    let org_a = Party::new(1, "mpc.org-a.example");
    let org_b = Party::new(2, "mpc.org-b.example");
    let schema = Schema::new(vec![
        ColumnDef::new("region", DataType::Int),
        ColumnDef::new("amount", DataType::Int),
    ]);
    let mut q = QueryBuilder::new();
    let sales_a = q.input("sales_a", schema.clone(), org_a.clone());
    let sales_b = q.input("sales_b", schema, org_b);
    let all_sales = q.concat(&[sales_a, sales_b]);
    let by_region = q.aggregate(all_sales, "total", AggFunc::Sum, &["region"], "amount");
    q.collect(by_region, &[org_a]);
    lint_query("multi_party_demo", &q.build().unwrap());
}
