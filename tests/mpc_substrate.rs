//! Integration tests for the MPC substrate used through the public facade:
//! cross-backend result agreement and cost-model sanity over generated data.

use conclave::mpc::backend::{BackendKind, MpcBackendConfig, MpcEngine};
use conclave::prelude::*;
use conclave_data::SyntheticGenerator;
use conclave_ir::ops::{JoinKind, Operator};

fn agg_op() -> Operator {
    Operator::Aggregate {
        group_by: vec!["key".into()],
        func: AggFunc::Sum,
        over: Some("value".into()),
        out: "total".into(),
    }
}

#[test]
fn secret_sharing_and_garbled_backends_agree_with_cleartext() {
    let mut gen = SyntheticGenerator::new(21);
    let rel = gen.uniform(&["key", "value"], 120, 12);
    let expected = conclave_engine::execute(&agg_op(), &[&rel]).unwrap();
    for kind in [
        BackendKind::SharemindLike,
        BackendKind::OblivCLike,
        BackendKind::OblivVmLike,
    ] {
        let mut engine = MpcEngine::new(MpcBackendConfig::new(kind));
        let (out, stats) = engine.execute_op(&agg_op(), &[&rel]).unwrap();
        assert!(out.same_rows_unordered(&expected), "{kind} result mismatch");
        assert!(stats.simulated_time.as_secs_f64() > 0.0);
    }
}

#[test]
fn join_results_agree_across_backends() {
    let mut gen = SyntheticGenerator::new(22);
    let (left, right) = gen.overlapping_pair(80, 0.5);
    let op = Operator::Join {
        left_keys: vec!["key".into()],
        right_keys: vec!["key".into()],
        kind: JoinKind::Inner,
    };
    let expected = conclave_engine::execute(&op, &[&left, &right]).unwrap();
    let mut ss = MpcEngine::new(MpcBackendConfig::sharemind());
    let (ss_out, ss_stats) = ss.execute_op(&op, &[&left, &right]).unwrap();
    assert!(ss_out.same_rows_unordered(&expected));
    assert_eq!(ss_stats.counts.equalities, 80 * 80);

    let mut gc = MpcEngine::new(MpcBackendConfig::obliv_c());
    let (gc_out, gc_stats) = gc.execute_op(&op, &[&left, &right]).unwrap();
    assert!(gc_out.same_rows_unordered(&expected));
    assert!(gc_stats.circuit.and_gates > 0);
}

#[test]
fn secret_sharing_is_cheaper_than_garbled_circuits_for_relational_work() {
    // §7.4's backend argument: for the arithmetic-heavy relational workloads,
    // the Sharemind-like backend is the better fit.
    let ss = MpcEngine::new(MpcBackendConfig::sharemind());
    let vm = MpcEngine::new(MpcBackendConfig::obliv_vm());
    let n = 50_000u64;
    let ss_time = ss
        .estimate_op(&agg_op(), &[n], &[2], n / 10)
        .unwrap()
        .simulated_time;
    let vm_time = vm
        .estimate_op(&agg_op(), &[n], &[2], n / 10)
        .unwrap()
        .simulated_time;
    assert!(ss_time < vm_time, "{ss_time:?} vs {vm_time:?}");
}

#[test]
fn hybrid_protocol_estimates_beat_full_mpc_at_scale_for_all_sizes() {
    let engine = MpcEngine::new(MpcBackendConfig::sharemind());
    let join = Operator::Join {
        left_keys: vec!["key".into()],
        right_keys: vec!["key".into()],
        kind: JoinKind::Inner,
    };
    for n in [10_000u64, 100_000, 1_000_000] {
        let full = engine
            .estimate_op(&join, &[n / 2, n / 2], &[2, 2], n / 2)
            .unwrap()
            .simulated_time;
        let hybrid = engine
            .estimate_hybrid_join(n / 2, n / 2, n / 2, 2)
            .simulated_time;
        let public = engine.estimate_public_join(n, n / 2).simulated_time;
        assert!(hybrid < full, "n={n}");
        assert!(public < hybrid, "n={n}");
    }
}
