//! Wire-privacy regression test for the comparison circuits.
//!
//! The pre-circuit party runtime "compared" shared values by broadcasting
//! both operands' shares and letting every party sum them up — so a passive
//! observer on the wire could reconstruct every compared column value by
//! element-wise summing the broadcasts of one logical stream across its
//! senders. This suite mounts exactly that attack through a sniffing
//! [`Transport`] wrapper: it runs lt/eq/sort over secret sentinel values and
//! asserts that no envelope payload — taken raw, summed across senders, or
//! XOR-combined across senders — ever contains a secret operand. On the
//! pre-circuit runtime the summed reconstruction recovers the operands and
//! the test fails; on the circuit path everything that crosses the wire is
//! either a share or a uniformly-masked value.

// Demo/test target: panicking on bad setup is the desired behavior here
// (the workspace-level clippy::unwrap_used lint targets library code).
#![allow(clippy::unwrap_used)]

use conclave::mpc::dealer::{serve_party, DealerSource};
use conclave::mpc::runtime::{share_relation, sort_by, PartyResult, PartySession, StepCtx};
use conclave::mpc::{AuthShare, RingElem};
use conclave::net::{
    ChannelTransport, Envelope, MessageKind, NetStats, StreamTag, Transport, TransportError,
};
use conclave::prelude::*;
use std::sync::{Arc, Mutex};

/// One captured directed frame.
#[derive(Debug, Clone)]
struct SniffedFrame {
    from: u32,
    kind: MessageKind,
    tag: StreamTag,
    payload: Vec<u64>,
}

/// A [`Transport`] wrapper that records every outgoing envelope into a log
/// shared across all parties — the view of a passive network observer who
/// does *not* know the dealer seed.
struct SniffTransport {
    inner: ChannelTransport,
    log: Arc<Mutex<Vec<SniffedFrame>>>,
}

impl Transport for SniffTransport {
    fn party(&self) -> u32 {
        self.inner.party()
    }

    fn parties(&self) -> u32 {
        self.inner.parties()
    }

    fn send_to(
        &self,
        to: u32,
        kind: MessageKind,
        label: &str,
        payload: &[u64],
    ) -> Result<(), TransportError> {
        self.send_tagged(to, StreamTag::default(), kind, label, payload)
    }

    fn send_tagged(
        &self,
        to: u32,
        tag: StreamTag,
        kind: MessageKind,
        label: &str,
        payload: &[u64],
    ) -> Result<(), TransportError> {
        self.log.lock().unwrap().push(SniffedFrame {
            from: self.party(),
            kind,
            tag,
            payload: payload.to_vec(),
        });
        self.inner.send_tagged(to, tag, kind, label, payload)
    }

    fn recv_from(&self, from: u32) -> Result<Envelope, TransportError> {
        self.inner.recv_from(from)
    }

    fn recv_tagged(&self, from: u32, tag: StreamTag) -> Result<Envelope, TransportError> {
        self.inner.recv_tagged(from, tag)
    }

    fn record_round(&self) {
        self.inner.record_round()
    }

    fn stats(&self) -> NetStats {
        self.inner.stats()
    }
}

/// Distinctive operand sentinels: values a uniformly-masked word matches
/// with probability 2^-64, so any hit in the capture is a leak.
const SECRETS_X: [i64; 4] = [
    123_456_789_123_456_789,
    -987_654_321_987_654_321,
    444_555_666_777_888_999,
    -111_222_333_444_555_666,
];
const SECRETS_Y: [i64; 4] = [
    135_791_357_913_579_135,
    -246_802_468_024_680_246,
    444_555_666_777_888_999, // equal pair against SECRETS_X[2]
    999_888_777_666_555_444,
];

/// Runs lt/eq/sort over the sentinels on a sniffed 3-party mesh and returns
/// the complete wire capture plus the (correct) opened comparison bits.
fn capture_comparison_traffic() -> (Vec<SniffedFrame>, Vec<Vec<i64>>) {
    let log = Arc::new(Mutex::new(Vec::new()));
    let mesh: Vec<SniffTransport> = ChannelTransport::mesh(3)
        .into_iter()
        .map(|inner| SniffTransport {
            inner,
            log: Arc::clone(&log),
        })
        .collect();
    let opened = std::thread::scope(|s| {
        let handles: Vec<_> = mesh
            .into_iter()
            .map(|t| {
                s.spawn(move || -> PartyResult<Vec<i64>> {
                    let mut sess = PartySession::new(&t, 2024);
                    let mut proto = sess.step(0);
                    program(&mut proto)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("party panicked").expect("party failed"))
            .collect::<Vec<_>>()
    });
    let frames = log.lock().unwrap().clone();
    (frames, opened)
}

/// The party program: share the sentinels, compare them (lt + eq), sort a
/// relation keyed by them, and open **only the comparison bits** — the
/// operands themselves stay shared, so nothing on the wire may expose them.
fn program(proto: &mut StepCtx) -> PartyResult<Vec<i64>> {
    let own0 = proto.party() == 0;
    let own1 = proto.party() == 1;
    let sx = proto.input_column(0, own0.then_some(SECRETS_X.as_slice()), SECRETS_X.len())?;
    let sy = proto.input_column(1, own1.then_some(SECRETS_Y.as_slice()), SECRETS_Y.len())?;
    let pairs: Vec<(AuthShare, AuthShare)> = sx.iter().copied().zip(sy.iter().copied()).collect();
    let lt = proto.lt_batch(&pairs)?;
    let eq = proto.eq_batch(&pairs)?;

    // Sort a relation keyed by the secret column; keep the result shared.
    let rel = Relation::from_ints(
        &["s"],
        &SECRETS_X.iter().map(|&v| vec![v]).collect::<Vec<_>>(),
    );
    let shared = share_relation(
        proto,
        0,
        own0.then_some(&rel),
        &Schema::ints(&["s"]),
        SECRETS_X.len(),
    )?;
    let sorted = sort_by(proto, &shared, "s", true)?;
    assert_eq!(sorted.num_rows(), SECRETS_X.len());

    let mut bits = lt;
    bits.extend(eq);
    proto.open_column(&bits)
}

/// Every u64 bit pattern that would constitute an operand leak.
fn secret_patterns() -> Vec<u64> {
    SECRETS_X
        .iter()
        .chain(SECRETS_Y.iter())
        .map(|&v| RingElem::from_i64(v).0)
        .collect()
}

#[test]
fn comparison_traffic_never_carries_operands() {
    let (frames, opened) = capture_comparison_traffic();
    assert!(!frames.is_empty(), "the sniffer must observe traffic");

    // Sanity: the protocol still computes the right answers.
    let mut expected: Vec<i64> = SECRETS_X
        .iter()
        .zip(&SECRETS_Y)
        .map(|(&x, &y)| i64::from(x < y))
        .collect();
    expected.extend(
        SECRETS_X
            .iter()
            .zip(&SECRETS_Y)
            .map(|(&x, &y)| i64::from(x == y)),
    );
    for out in &opened {
        assert_eq!(out, &expected);
    }

    let patterns = secret_patterns();

    // Attack 1: raw payload scan — no frame may carry an operand verbatim.
    for f in &frames {
        for w in &f.payload {
            assert!(
                !patterns.contains(w),
                "raw payload of P{} on {:?} contains a secret operand",
                f.from,
                f.tag
            );
        }
    }

    // Attack 2: cross-sender reconstruction.
    assert_no_cross_sender_reconstruction(&frames, &patterns);
}

/// Reconstruction attack: broadcast exchanges send each party's words to
/// every peer on one logical stream, so an observer holds every sender's
/// contribution per stream tag. Element-wise summing them is exactly how the
/// pre-circuit runtime's comparison openings reconstruct (additive shares);
/// XOR-combining covers the binary-shared exchanges.
fn assert_no_cross_sender_reconstruction(frames: &[SniffedFrame], patterns: &[u64]) {
    let mut tags: Vec<StreamTag> = frames.iter().map(|f| f.tag).collect();
    tags.sort_unstable_by_key(|t| format!("{t:?}"));
    tags.dedup();
    for tag in tags {
        // One contribution per sender (broadcasts repeat the same words to
        // every receiver).
        let mut per_sender: Vec<(u32, &[u64])> = Vec::new();
        for f in frames.iter().filter(|f| f.tag == tag) {
            if !per_sender.iter().any(|(from, _)| *from == f.from) {
                per_sender.push((f.from, &f.payload));
            }
        }
        let len = per_sender.iter().map(|(_, p)| p.len()).max().unwrap_or(0);
        for i in 0..len {
            let mut sum = 0u64;
            let mut xor = 0u64;
            for (_, payload) in &per_sender {
                let w = payload.get(i).copied().unwrap_or(0);
                sum = sum.wrapping_add(w);
                xor ^= w;
            }
            assert!(
                !patterns.contains(&sum),
                "summing senders' words on {tag:?} reconstructs a secret operand \
                 (the pre-circuit comparison leak)"
            );
            assert!(
                !patterns.contains(&xor),
                "xor-combining senders' words on {tag:?} reconstructs a secret operand"
            );
        }
    }
}

/// The party program of the dealer-stream sniff: party 0 feeds the sentinels
/// through dealer input masks (δ = x − r broadcast), the mesh compares them
/// pairwise, and only the comparison bits are opened.
fn dealer_program(proto: &mut StepCtx) -> PartyResult<Vec<i64>> {
    let own0 = proto.party() == 0;
    let sx = proto.input_column(0, own0.then_some(SECRETS_X.as_slice()), SECRETS_X.len())?;
    let rev: Vec<AuthShare> = sx.iter().rev().copied().collect();
    let pairs: Vec<(AuthShare, AuthShare)> = sx.iter().copied().zip(rev).collect();
    let lt = proto.lt_batch(&pairs)?;
    proto.open_column(&lt)
}

/// Runs a streamed-dealer session on a sniffed 3-party mesh, additionally
/// tapping the dedicated dealer links of the two **non-owning** parties.
/// The owner's own dealer link stays private — it delivers the owner's clear
/// input masks and the model treats it exactly as secret as the owner's
/// memory. Returns (mesh capture, per-link dealer capture, opened bits).
#[allow(clippy::type_complexity)]
fn capture_dealer_traffic() -> (Vec<SniffedFrame>, Vec<(u32, SniffedFrame)>, Vec<Vec<i64>>) {
    let mesh_log = Arc::new(Mutex::new(Vec::new()));
    let mesh: Vec<SniffTransport> = ChannelTransport::mesh(3)
        .into_iter()
        .map(|inner| SniffTransport {
            inner,
            log: Arc::clone(&mesh_log),
        })
        .collect();
    let mut link_logs: Vec<(u32, Arc<Mutex<Vec<SniffedFrame>>>)> = Vec::new();
    let opened = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (i, t) in mesh.into_iter().enumerate() {
            let mut ends = ChannelTransport::mesh(2).into_iter();
            let party_end = ends.next().unwrap();
            let dealer_end = ends.next().unwrap();
            let link_log = Arc::new(Mutex::new(Vec::new()));
            if i != 0 {
                link_logs.push((i as u32, Arc::clone(&link_log)));
            }
            let party = i as u32;
            s.spawn(move || {
                // The observer taps the dealer's side of every non-owner
                // link: all block payloads (triples, masks, daBits) that the
                // dealer ships to parties 1 and 2 land in the capture.
                let tapped = SniffTransport {
                    inner: dealer_end,
                    log: link_log,
                };
                serve_party(&tapped, party, 3, 4242).expect("dealer server failed");
            });
            handles.push(s.spawn(move || -> PartyResult<Vec<i64>> {
                let link: Box<dyn Transport> = Box::new(party_end);
                let mut sess = PartySession::with_dealer(
                    &t,
                    2024,
                    DealerSource::Streamed { link, dealer: 1 },
                )?;
                let mut proto = sess.step(0);
                dealer_program(&mut proto)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("party panicked").expect("party failed"))
            .collect::<Vec<_>>()
    });
    let mesh_frames = mesh_log.lock().unwrap().clone();
    let dealer_frames: Vec<(u32, SniffedFrame)> = link_logs
        .iter()
        .flat_map(|(p, log)| {
            let frames = log.lock().unwrap().clone();
            frames.into_iter().map(move |f| (*p, f))
        })
        .collect();
    (mesh_frames, dealer_frames, opened)
}

/// Sniffing the dealer stream: an observer who taps the whole online mesh
/// **plus** the dealer links of every non-owning party still cannot recover
/// party 0's inputs. The input broadcast is δ = x − r where the clear mask
/// `r` travels only on the owner's private dealer link; the tapped links
/// carry the other parties' *shares* of `r` (plus their triple/daBit
/// blocks), and no combination — raw, summed per stream, XORed, or δ
/// recombined with any tapped word or any same-position pair across the two
/// tapped links — yields an operand.
#[test]
fn dealer_stream_traffic_never_exposes_inputs() {
    let (mesh_frames, dealer_frames, opened) = capture_dealer_traffic();
    assert!(!mesh_frames.is_empty(), "the sniffer must observe the mesh");
    assert!(
        dealer_frames
            .iter()
            .map(|(_, f)| f.payload.len())
            .sum::<usize>()
            > 0,
        "the sniffer must observe dealer blocks"
    );

    // Sanity: the protocol still computes the right answers.
    let expected: Vec<i64> = (0..SECRETS_X.len())
        .map(|i| i64::from(SECRETS_X[i] < SECRETS_X[SECRETS_X.len() - 1 - i]))
        .collect();
    for out in &opened {
        assert_eq!(out, &expected);
    }

    let patterns = secret_patterns();

    // Attack 1: raw payload scan over everything captured.
    for f in mesh_frames
        .iter()
        .chain(dealer_frames.iter().map(|(_, f)| f))
    {
        for w in &f.payload {
            assert!(
                !patterns.contains(w),
                "raw captured payload (kind {:?}) contains a secret operand",
                f.kind
            );
        }
    }

    // Attack 2: cross-sender reconstruction on the online mesh.
    assert_no_cross_sender_reconstruction(&mesh_frames, &patterns);

    // Attack 3: δ recombination. The only SecretShare frames this program
    // broadcasts are the input offsets δ = x − r; combine each δ word with
    // every tapped dealer word (x = δ + r would need the owner's clear r).
    let deltas: Vec<u64> = mesh_frames
        .iter()
        .filter(|f| f.kind == MessageKind::SecretShare)
        .flat_map(|f| f.payload.iter().copied())
        .collect();
    assert!(!deltas.is_empty(), "the input broadcast must be captured");
    for &d in &deltas {
        for (_, f) in &dealer_frames {
            for &r in &f.payload {
                assert!(!patterns.contains(&d.wrapping_add(r)));
                assert!(!patterns.contains(&d.wrapping_sub(r)));
            }
        }
    }
    // Colluding taps: same-position words across the two tapped links (the
    // non-owners' shares of the same dealt element) still miss the owner's
    // share of r.
    let by_link = |p: u32| -> Vec<&SniffedFrame> {
        dealer_frames
            .iter()
            .filter(|(lp, _)| *lp == p)
            .map(|(_, f)| f)
            .collect()
    };
    let (l1, l2) = (by_link(1), by_link(2));
    for (f1, f2) in l1.iter().zip(&l2) {
        for (w1, w2) in f1.payload.iter().zip(&f2.payload) {
            let pair = w1.wrapping_add(*w2);
            for &d in &deltas {
                assert!(!patterns.contains(&d.wrapping_add(pair)));
                assert!(!patterns.contains(&d.wrapping_sub(pair)));
            }
        }
    }
}
