//! Smoke test for the `conclave::prelude` surface.
//!
//! Guards against re-export regressions: every documented entry point must be
//! nameable through the prelude alone, and compiling a trivial two-party
//! aggregate query through it must yield a non-empty plan.

use conclave::prelude::*;

#[test]
fn prelude_exposes_documented_entry_points_and_compiles_a_query() {
    let pa = Party::new(1, "a.example");
    let pb = Party::new(2, "b.example");
    let schema = Schema::new(vec![
        ColumnDef::new("key", DataType::Int),
        ColumnDef::new("val", DataType::Int),
    ]);

    let mut q = QueryBuilder::new();
    let ta = q.input("ta", schema.clone(), pa.clone());
    let tb = q.input("tb", schema, pb);
    let both = q.concat(&[ta, tb]);
    let sums = q.aggregate(both, "total", AggFunc::Sum, &["key"], "val");
    q.collect(sums, std::slice::from_ref(&pa));
    let query = q.build().expect("query builds");

    let config = ConclaveConfig::standard();
    let plan: PhysicalPlan = compile(&query, &config).expect("query compiles");
    assert!(!plan.stages().is_empty(), "compiled plan must be non-empty");

    // The documented `Session` entry point drives the query end to end,
    // binding one row-backed and one column-backed table.
    let report: RunReport = Session::new(ConclaveConfig::standard().with_sequential_local())
        .bind("ta", Relation::from_ints(&["key", "val"], &[vec![1, 2]]))
        .bind(
            "tb",
            ColumnarRelation::from_rows(&Relation::from_ints(&["key", "val"], &[vec![1, 3]])),
        )
        .run(&query)
        .expect("session drives the query");
    assert_eq!(
        report.output_for(1).expect("party 1 is the recipient").rows[0],
        vec![Value::Int(1), Value::Int(5)]
    );

    // The remaining prelude items must at least be nameable and constructible.
    let _driver: Driver = Driver::new(ConclaveConfig::standard());
    let _relation = Relation::from_ints(&["key", "val"], &[vec![1, 2]]);
    let _table: Table = _relation.clone().into();
    let _counts: ConversionCounts = _table.conversion_counts();
    let _mode: EngineMode = EngineMode::Columnar;
    let _row_exec: &dyn Executor = &RowExecutor::new();
    let _col_exec: &dyn Executor = &ColumnarExecutor::new();
    let _backend: MpcBackendConfig = MpcBackendConfig::sharemind();
    let _kind: BackendKind = _backend.kind;
    let _value = Value::Int(42);
    let _gen_credit = CreditGenerator::new(7);
    let _gen_health = HealthGenerator::new(7);
    let _gen_taxi = TaxiGenerator::new(7);
    let _err_ty = std::marker::PhantomData::<SessionError>;
}
