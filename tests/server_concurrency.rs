//! Serving-layer certification: the multi-tenant `conclave-server` under
//! concurrency.
//!
//! The suite proves four properties of the serving core:
//!
//! 1. **Tenant isolation (differential)** — N tenants with different data
//!    submitting interleaved queries from concurrent threads get results
//!    cell-identical to fresh one-shot [`Session`]s run sequentially. A
//!    plan-cache mixup, a cross-tenant binding leak or a mesh-reuse bug
//!    would all surface as a mismatch here.
//! 2. **Plan cache** — hit/miss/invalidation counters are pinned exactly:
//!    repeats (including whitespace/keyword-case variants) hit, catalog
//!    changes invalidate.
//! 3. **Pool starvation** — with the shared dealer pool paused, a query
//!    *blocks* holding its admission slot and completes correctly once the
//!    pool refills: starvation degrades latency, never correctness.
//! 4. **Admission control** — beyond `max_in_flight` + `queue_depth`, new
//!    queries are shed with typed [`ServerError::Rejected`] carrying the
//!    occupancy snapshot; queued queries run after a slot frees.

// Demo/test target: panicking on bad setup is the desired behavior here
// (the workspace-level clippy::unwrap_used lint targets library code).
#![allow(clippy::unwrap_used)]

use conclave::prelude::*;
use conclave::server::{ConclaveServer, ServerError};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

const SUM_SQL: &str = "
    CREATE TABLE ta (k INT, v INT) WITH OWNER p1;
    CREATE TABLE tb (k INT, v INT) WITH OWNER p2;
    SELECT k, SUM(v) AS total FROM (ta UNION ALL tb) GROUP BY k REVEAL TO p1;
";

const COUNT_SQL: &str = "
    CREATE TABLE ta (k INT, v INT) WITH OWNER p1;
    CREATE TABLE tb (k INT, v INT) WITH OWNER p2;
    SELECT k, COUNT(*) AS n FROM (ta UNION ALL tb) GROUP BY k REVEAL TO p1;
";

/// A small material spec so pool refills are cheap; each bundle comfortably
/// covers one small query.
fn small_spec() -> MaterialSpec {
    MaterialSpec {
        triples: 512,
        bit_triples: 1024,
        shared_bits: 512,
        dabits: 128,
        input_masks: 256,
    }
}

fn rel(rows: &[(i64, i64)]) -> Relation {
    Relation::from_ints(
        &["k", "v"],
        &rows.iter().map(|(k, v)| vec![*k, *v]).collect::<Vec<_>>(),
    )
}

/// The serving configuration under test: channel-mesh party runtime fed by a
/// shared background-refilled dealer pool.
fn pooled_server_config(seed: u64, depth: usize) -> ServerConfig {
    let pool = MaterialPool::start(seed, 3, small_spec(), depth);
    ServerConfig::new(
        ConclaveConfig::standard()
            .with_sequential_local()
            .with_channel_runtime(),
    )
    .with_pool(pool)
}

/// The oracle: a fresh single-query session per (data, sql), simulated
/// runtime, no cache, no pool, no mesh reuse.
fn oracle(a: &[(i64, i64)], b: &[(i64, i64)], sql: &str) -> Relation {
    Session::new(ConclaveConfig::standard().with_sequential_local())
        .bind("ta", rel(a))
        .bind("tb", rel(b))
        .run_sql(sql)
        .unwrap()
        .output_for(1)
        .unwrap()
        .clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Property 1: interleaved multi-tenant serving is observationally
    /// identical to sequential fresh one-shot sessions.
    #[test]
    fn concurrent_tenants_match_sequential_oneshot_sessions(
        data in prop::collection::vec(
            (
                prop::collection::vec((0i64..6, -50i64..50), 1..6),
                prop::collection::vec((0i64..6, -50i64..50), 1..6),
            ),
            3..4,
        ),
    ) {
        let server = ConclaveServer::start(pooled_server_config(11, 2));
        for (i, (a, b)) in data.iter().enumerate() {
            let name = format!("tenant{i}");
            server.register_tenant(&name, Catalog::new()).unwrap();
            server.bind(&name, "ta", rel(a)).unwrap();
            server.bind(&name, "tb", rel(b)).unwrap();
        }

        // Every tenant fires its queries from its own thread, so cache,
        // pool and admission state are all exercised concurrently.
        let answers: HashMap<(usize, usize), Relation> = thread::scope(|s| {
            let handles: Vec<_> = data
                .iter()
                .enumerate()
                .map(|(i, _)| {
                    let server = server.clone();
                    s.spawn(move || {
                        let name = format!("tenant{i}");
                        [SUM_SQL, COUNT_SQL, SUM_SQL]
                            .iter()
                            .enumerate()
                            .map(|(qi, sql)| {
                                let outcome = server.query(&name, sql).unwrap();
                                ((i, qi), outcome.report.outputs[&1].clone())
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("tenant thread panicked"))
                .collect()
        });

        for (i, (a, b)) in data.iter().enumerate() {
            for (qi, sql) in [SUM_SQL, COUNT_SQL, SUM_SQL].iter().enumerate() {
                let expected = oracle(a, b, sql);
                let got = &answers[&(i, qi)];
                prop_assert!(
                    got.same_rows_unordered(&expected),
                    "tenant {} query {} diverged:\ngot:\n{}\nexpected:\n{}",
                    i, qi, got, expected
                );
            }
        }

        // Each tenant's mesh was built exactly once and is still alive; the
        // repeated SUM was a cache hit (2 distinct texts -> 2 misses).
        for i in 0..data.len() {
            let stats = server.tenant_stats(&format!("tenant{i}")).unwrap();
            prop_assert!(stats.mesh_live, "tenant {} keeps its mesh", i);
            prop_assert_eq!(stats.cache.misses, 2);
            prop_assert_eq!(stats.cache.hits, 1);
            prop_assert_eq!(stats.completed, 3);
            prop_assert_eq!(stats.rejected, 0);
        }
        let pool = server.stats().pool.unwrap();
        prop_assert!(pool.taken >= 3, "every tenant drew from the shared pool");
    }
}

/// Property 1b: one tenant's mesh is built exactly once across many serial
/// queries (the per-query reports sum to a single build).
#[test]
fn mesh_builds_stay_at_one_across_queries() {
    let server = ConclaveServer::start(pooled_server_config(23, 2));
    server.register_tenant("acme", Catalog::new()).unwrap();
    server.bind("acme", "ta", rel(&[(1, 2), (2, 10)])).unwrap();
    server.bind("acme", "tb", rel(&[(1, 3)])).unwrap();
    let mut total_builds = 0;
    for _ in 0..4 {
        let outcome = server.query("acme", SUM_SQL).unwrap();
        assert!(outcome.report.net_measured, "channel mesh measured traffic");
        total_builds += outcome.report.mesh_builds();
    }
    assert_eq!(total_builds, 1, "one mesh serves every query");
    // Rebinding data does not rebuild the mesh or touch the plan cache.
    server.bind("acme", "tb", rel(&[(2, 5)])).unwrap();
    let outcome = server.query("acme", SUM_SQL).unwrap();
    assert!(outcome.cache_hit);
    assert_eq!(outcome.report.mesh_builds(), 0);
    let expected = Relation::from_ints(&["k", "total"], &[vec![1, 2], vec![2, 15]]);
    assert!(outcome.report.outputs[&1].same_rows_unordered(&expected));
}

/// Property 2: cache hit/miss/invalidation counters, pinned exactly.
#[test]
fn plan_cache_counts_are_pinned() {
    let server = ConclaveServer::start(ServerConfig::default());
    server.register_tenant("acme", Catalog::new()).unwrap();
    server.bind("acme", "ta", rel(&[(1, 2)])).unwrap();
    server.bind("acme", "tb", rel(&[(1, 3)])).unwrap();

    assert!(!server.query("acme", SUM_SQL).unwrap().cache_hit);
    // Identical text: hit.
    assert!(server.query("acme", SUM_SQL).unwrap().cache_hit);
    // Whitespace and keyword case differences normalize away: hit.
    let messy = SUM_SQL
        .replace("SELECT", "select\n\t")
        .replace("GROUP BY", "group   by");
    assert!(server.query("acme", &messy).unwrap().cache_hit);
    // A genuinely different query: miss.
    assert!(!server.query("acme", COUNT_SQL).unwrap().cache_hit);
    let stats = server.tenant_stats("acme").unwrap();
    assert_eq!(stats.cache.hits, 2);
    assert_eq!(stats.cache.misses, 2);
    assert_eq!(stats.cache.invalidations, 0);
    assert_eq!(stats.cached_plans, 2);

    // Catalog change: both cached plans invalidated, next lookups miss.
    let changed = Catalog::new().with_table("tc", Schema::ints(&["x"]), Party::new(1, "p1"));
    server.update_catalog("acme", changed).unwrap();
    assert!(!server.query("acme", SUM_SQL).unwrap().cache_hit);
    let stats = server.tenant_stats("acme").unwrap();
    assert_eq!(stats.cache.invalidations, 2);
    assert_eq!(stats.cached_plans, 1);
    assert_eq!(stats.cache.misses, 3);

    // Tenants are isolated: a fresh tenant starts cold.
    server.register_tenant("zenith", Catalog::new()).unwrap();
    server.bind("zenith", "ta", rel(&[(7, 1)])).unwrap();
    server.bind("zenith", "tb", rel(&[])).unwrap();
    assert!(!server.query("zenith", SUM_SQL).unwrap().cache_hit);
    assert_eq!(server.tenant_stats("zenith").unwrap().cache.hits, 0);
}

/// Property 3: a paused (empty) pool blocks queries — holding their
/// admission slot — and they complete correctly once material arrives.
#[test]
fn pool_starvation_blocks_then_succeeds() {
    let pool = MaterialPool::start_paused(31, 3, small_spec(), 1);
    let config = ServerConfig::new(
        ConclaveConfig::standard()
            .with_sequential_local()
            .with_channel_runtime(),
    )
    .with_pool(pool.clone());
    let server = ConclaveServer::start(config);
    server.register_tenant("acme", Catalog::new()).unwrap();
    server.bind("acme", "ta", rel(&[(1, 2)])).unwrap();
    server.bind("acme", "tb", rel(&[(1, 3)])).unwrap();

    let (done_tx, done_rx) = mpsc::channel();
    let worker = {
        let server = server.clone();
        thread::spawn(move || {
            let outcome = server.query("acme", SUM_SQL);
            done_tx.send(()).ok();
            outcome
        })
    };
    // Starved: the query must still be blocked (not failed!) after a grace
    // period, with its admission slot held.
    assert!(
        done_rx.recv_timeout(Duration::from_millis(120)).is_err(),
        "query must block on the empty pool, not complete or error"
    );
    assert_eq!(pool.stats().dealt, 0, "paused pool dealt nothing");
    assert_eq!(server.tenant_stats("acme").unwrap().in_flight, 1);

    // Refill: the blocked query completes with the right answer.
    pool.resume();
    let outcome = worker.join().unwrap().expect("blocked query succeeds");
    let expected = Relation::from_ints(&["k", "total"], &[vec![1, 5]]);
    assert!(outcome.report.outputs[&1].same_rows_unordered(&expected));
    assert!(pool.stats().starved >= 1, "the starvation was recorded");
    assert_eq!(server.tenant_stats("acme").unwrap().in_flight, 0);
}

/// Property 4: typed rejections at the queue limit, queued execution below
/// it.
#[test]
fn admission_control_rejects_beyond_queue_and_queues_below_it() {
    let pool = MaterialPool::start_paused(43, 3, small_spec(), 1);
    let config = ServerConfig::new(
        ConclaveConfig::standard()
            .with_sequential_local()
            .with_channel_runtime(),
    )
    .with_pool(pool.clone())
    .with_limits(AdmissionLimits {
        max_in_flight: 1,
        queue_depth: 1,
    });
    let server = ConclaveServer::start(config);
    server.register_tenant("acme", Catalog::new()).unwrap();
    server.bind("acme", "ta", rel(&[(1, 2)])).unwrap();
    server.bind("acme", "tb", rel(&[(1, 3)])).unwrap();

    // Query 1 occupies the only in-flight slot (blocked on the paused pool).
    let q1 = {
        let server = server.clone();
        thread::spawn(move || server.query("acme", SUM_SQL))
    };
    while server.tenant_stats("acme").unwrap().in_flight == 0 {
        thread::sleep(Duration::from_millis(1));
    }
    // Query 2 parks in the queue.
    let q2 = {
        let server = server.clone();
        thread::spawn(move || server.query("acme", SUM_SQL))
    };
    while server.tenant_stats("acme").unwrap().queued == 0 {
        thread::sleep(Duration::from_millis(1));
    }

    // Query 3 finds slot and queue full: typed rejection, snapshot attached.
    let err = server.query("acme", SUM_SQL).unwrap_err();
    match &err {
        ServerError::Rejected { tenant, limits } => {
            assert_eq!(tenant, "acme");
            assert_eq!(limits.in_flight, 1);
            assert_eq!(limits.queued, 1);
            assert_eq!(limits.max_in_flight, 1);
            assert_eq!(limits.queue_depth, 1);
        }
        other => panic!("expected a rejection, got {other}"),
    }
    assert!(err.to_string().contains("rejected"));

    // Unknown tenants are typed too, and do not consume admission slots.
    assert!(matches!(
        server.query("ghost", SUM_SQL),
        Err(ServerError::UnknownTenant(_))
    ));

    // Resume the pool: both the blocked and the queued query complete.
    pool.resume();
    let expected = Relation::from_ints(&["k", "total"], &[vec![1, 5]]);
    for handle in [q1, q2] {
        let outcome = handle.join().unwrap().expect("admitted queries succeed");
        assert!(outcome.report.outputs[&1].same_rows_unordered(&expected));
    }
    let stats = server.tenant_stats("acme").unwrap();
    assert_eq!(stats.admitted, 2);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.in_flight, 0);
    assert_eq!(stats.queued, 0);
}

/// The wire API serves concurrent client links against one shared server:
/// results stay per-tenant even when two links interleave submissions.
#[test]
fn wire_clients_interleave_without_cross_talk() {
    use conclave::net::ChannelTransport;
    use conclave::server::query_remote;

    let server = ConclaveServer::start(pooled_server_config(57, 2));
    for (name, a, b) in [
        ("left", vec![(1i64, 10i64)], vec![(1i64, 1i64)]),
        ("right", vec![(1, 200)], vec![(1, 2)]),
    ] {
        server.register_tenant(name, Catalog::new()).unwrap();
        server.bind(name, "ta", rel(&a)).unwrap();
        server.bind(name, "tb", rel(&b)).unwrap();
    }

    let expected = HashMap::from([("left", 11i64), ("right", 202i64)]);
    let mut listeners = Vec::new();
    let mut client_threads = Vec::new();
    for name in ["left", "right"] {
        let mut link = ChannelTransport::mesh(2);
        let server_end = link.pop().unwrap();
        let client_end = link.pop().unwrap();
        let listener_server = server.clone();
        listeners.push(thread::spawn(move || listener_server.serve(&server_end)));
        let expected_total = expected[name];
        client_threads.push(thread::spawn(move || {
            for _ in 0..3 {
                let outputs = query_remote(&client_end, name, SUM_SQL).unwrap();
                let total = outputs[&1].rows[0][1].as_int().unwrap();
                assert_eq!(total, expected_total, "tenant {name}");
            }
            // Dropping `client_end` here disconnects the listener cleanly.
        }));
    }
    for client in client_threads {
        client.join().unwrap();
    }
    for listener in listeners {
        listener.join().unwrap().unwrap();
    }
}
