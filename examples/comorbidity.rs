//! The comorbidity query of §7.4: the ten most common diagnoses across two
//! hospitals' private data, compared between Conclave and the SMCQL baseline.
//!
//! Run with: `cargo run --release --example comorbidity`

use conclave::prelude::*;
use conclave_smcql::queries as smcql;
use conclave_smcql::SmcqlPlanner;
use std::collections::HashMap;

fn build_query() -> conclave_ir::builder::Query {
    let hospital_a = Party::new(1, "hospital-a.org");
    let hospital_b = Party::new(2, "hospital-b.org");
    let diag_schema = Schema::new(vec![
        ColumnDef::public("patientID", DataType::Int),
        ColumnDef::new("diagnosis", DataType::Int),
    ]);
    let mut q = QueryBuilder::new();
    let d1 = q.input("diagnoses1", diag_schema.clone(), hospital_a.clone());
    let d2 = q.input("diagnoses2", diag_schema, hospital_b);
    let diag = q.concat(&[d1, d2]);
    let counts = q.count(diag, "cnt", &["diagnosis"]);
    let sorted = q.sort_by(counts, "cnt", false);
    let top = q.limit(sorted, 10);
    q.collect(top, &[hospital_a]);
    q.build().expect("well formed")
}

fn main() {
    let rows_per_hospital = 1_500;
    let mut gen = HealthGenerator::new(5);
    let d0 = gen.comorbidity_diagnoses(0, rows_per_hospital);
    let d1 = gen.comorbidity_diagnoses(1, rows_per_hospital);
    let reference = HealthGenerator::reference_comorbidity(&[d0.clone(), d1.clone()], 10);

    // --- Conclave ---
    let query = build_query();
    let config = ConclaveConfig::standard().with_sequential_local();
    let plan = compile(&query, &config).expect("compiles");
    println!("=== Conclave plan ===");
    for t in &plan.transformations {
        println!("  - {t}");
    }
    let mut inputs = HashMap::new();
    inputs.insert("diagnoses1".to_string(), d0.clone());
    inputs.insert("diagnoses2".to_string(), d1.clone());
    let mut driver = Driver::new(config);
    let report = driver.run(&plan, &inputs).expect("runs");
    let conclave_top = report
        .output_for(1)
        .expect("hospital A receives the output");

    // --- SMCQL baseline ---
    let mut planner = SmcqlPlanner::default_paper_setup();
    let smcql_run = smcql::comorbidity(&mut planner, [&d0, &d1], 10).expect("runs");

    // Both systems must agree with the cleartext reference on the counts of
    // the top-10 diagnoses (ties may reorder diagnosis codes).
    let reference_counts: Vec<i64> = reference.iter().map(|(_, c)| *c).collect();
    let conclave_counts: Vec<i64> = conclave_top
        .column_values("cnt")
        .unwrap()
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    let smcql_counts: Vec<i64> = smcql_run
        .result
        .column_values("cnt")
        .unwrap()
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    assert_eq!(conclave_counts, reference_counts, "Conclave top-10 counts");
    assert_eq!(smcql_counts, reference_counts, "SMCQL top-10 counts");

    println!("\ntop-10 diagnosis counts  : {reference_counts:?}");
    println!(
        "Conclave (Sharemind-like): {:.1} s simulated",
        report.total_time().as_secs_f64()
    );
    println!(
        "SMCQL (ObliVM-like)      : {:.1} s simulated",
        smcql_run.total_time().as_secs_f64()
    );
    println!(
        "\nBoth systems split the aggregation into local partials; the gap is the\n\
         MPC backend difference the paper highlights in §7.4 (secret sharing vs\n\
         garbled circuits for arithmetic-heavy queries)."
    );
}
