//! The comorbidity query of §7.4: the ten most common diagnoses across two
//! hospitals' private data, compared between Conclave and the SMCQL baseline.
//!
//! The query is written twice — in the Conclave SQL dialect (the
//! analyst-facing surface, see `docs/SQL.md`) and through the programmatic
//! `QueryBuilder` — and the two must produce cell-identical results.
//!
//! Run with: `cargo run --release --example comorbidity`

// Demo/test target: panicking on bad setup is the desired behavior here
// (the workspace-level clippy::unwrap_used lint targets library code).
#![allow(clippy::unwrap_used)]

use conclave::prelude::*;
use conclave_smcql::queries as smcql;
use conclave_smcql::SmcqlPlanner;
use std::collections::HashMap;

/// The comorbidity query as SQL: count diagnoses across both hospitals'
/// (concatenated) rows, keep the ten most common, reveal to hospital A.
const COMORBIDITY_SQL: &str = "
    CREATE TABLE diagnoses1 (patientID INT PUBLIC, diagnosis INT)
        WITH OWNER p1 AT 'hospital-a.org';
    CREATE TABLE diagnoses2 (patientID INT PUBLIC, diagnosis INT)
        WITH OWNER p2 AT 'hospital-b.org';

    SELECT diagnosis, COUNT(*) AS cnt
    FROM (diagnoses1 UNION ALL diagnoses2)
    GROUP BY diagnosis
    ORDER BY cnt DESC
    LIMIT 10
    REVEAL TO p1;
";

fn build_query() -> conclave_ir::builder::Query {
    let hospital_a = Party::new(1, "hospital-a.org");
    let hospital_b = Party::new(2, "hospital-b.org");
    let diag_schema = Schema::new(vec![
        ColumnDef::public("patientID", DataType::Int),
        ColumnDef::new("diagnosis", DataType::Int),
    ]);
    let mut q = QueryBuilder::new();
    let d1 = q.input("diagnoses1", diag_schema.clone(), hospital_a.clone());
    let d2 = q.input("diagnoses2", diag_schema, hospital_b);
    let diag = q.concat(&[d1, d2]);
    let counts = q.count(diag, "cnt", &["diagnosis"]);
    let sorted = q.sort_by(counts, "cnt", false);
    let top = q.limit(sorted, 10);
    q.collect(top, &[hospital_a]);
    q.build().expect("well formed")
}

fn main() {
    let rows_per_hospital = 1_500;
    let mut gen = HealthGenerator::new(5);
    let d0 = gen.comorbidity_diagnoses(0, rows_per_hospital);
    let d1 = gen.comorbidity_diagnoses(1, rows_per_hospital);
    let reference = HealthGenerator::reference_comorbidity(&[d0.clone(), d1.clone()], 10);

    // --- Conclave, from SQL ---
    let session = Session::new(ConclaveConfig::standard().with_sequential_local())
        .bind("diagnoses1", d0.clone())
        .bind("diagnoses2", d1.clone());
    println!("=== Conclave SQL query ===\n{COMORBIDITY_SQL}");
    let report = session.run_sql(COMORBIDITY_SQL).expect("SQL query runs");
    let conclave_top = report
        .output_for(1)
        .expect("hospital A receives the output");

    // --- Conclave, from the programmatic builder (must agree cell for cell) ---
    let query = build_query();
    let config = ConclaveConfig::standard().with_sequential_local();
    let plan = compile(&query, &config).expect("compiles");
    println!("=== Conclave plan ===");
    for t in &plan.transformations {
        println!("  - {t}");
    }
    let mut inputs = HashMap::new();
    inputs.insert("diagnoses1".to_string(), d0.clone());
    inputs.insert("diagnoses2".to_string(), d1.clone());
    let mut driver = Driver::new(config);
    let builder_report = driver.run(&plan, &inputs).expect("runs");
    let builder_top = builder_report
        .output_for(1)
        .expect("hospital A receives the output");
    assert_eq!(
        conclave_top, builder_top,
        "SQL and builder plans must produce identical results"
    );

    // --- SMCQL baseline ---
    let mut planner = SmcqlPlanner::default_paper_setup();
    let smcql_run = smcql::comorbidity(&mut planner, [&d0, &d1], 10).expect("runs");

    // Both systems must agree with the cleartext reference on the counts of
    // the top-10 diagnoses (ties may reorder diagnosis codes).
    let reference_counts: Vec<i64> = reference.iter().map(|(_, c)| *c).collect();
    let conclave_counts: Vec<i64> = conclave_top
        .column_values("cnt")
        .unwrap()
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    let smcql_counts: Vec<i64> = smcql_run
        .result
        .column_values("cnt")
        .unwrap()
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    assert_eq!(conclave_counts, reference_counts, "Conclave top-10 counts");
    assert_eq!(smcql_counts, reference_counts, "SMCQL top-10 counts");

    println!("\ntop-10 diagnosis counts  : {reference_counts:?}");
    println!(
        "Conclave (Sharemind-like): {:.1} s simulated",
        report.total_time().as_secs_f64()
    );
    println!(
        "SMCQL (ObliVM-like)      : {:.1} s simulated",
        smcql_run.total_time().as_secs_f64()
    );
    println!(
        "\nBoth systems split the aggregation into local partials; the gap is the\n\
         MPC backend difference the paper highlights in §7.4 (secret sharing vs\n\
         garbled circuits for arithmetic-heavy queries)."
    );
}
