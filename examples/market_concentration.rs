//! The market-concentration (HHI) scenario of §2.1 and §7.1.
//!
//! Three vehicle-for-hire companies hold private trip books; an antitrust
//! regulator wants the Herfindahl–Hirschman Index of the market without any
//! company revealing its per-trip data. The example:
//!
//! 1. generates synthetic trip data (the paper uses NYC taxi trips),
//! 2. compiles the query with and without Conclave's optimizations,
//! 3. executes both plans and checks they agree with the cleartext reference,
//! 4. prints the simulated runtimes, showing why the MPC-only plan cannot
//!    scale (Figure 4).
//!
//! Run with: `cargo run --release --example market_concentration`

use conclave::prelude::*;
use conclave_core::WorkloadStats;
use conclave_ir::expr::Expr;
use conclave_ir::ops::Operand;
use std::collections::HashMap;

fn build_query() -> conclave_ir::builder::Query {
    let pa = Party::new(1, "mpc.a.com");
    let pb = Party::new(2, "mpc.b.com");
    let pc = Party::new(3, "mpc.c.org");
    let schema = Schema::new(vec![
        ColumnDef::new("companyID", DataType::Int),
        ColumnDef::new("price", DataType::Int),
        ColumnDef::new("airport", DataType::Int),
    ]);
    let mut q = QueryBuilder::new();
    let a = q.input("inputA", schema.clone(), pa.clone());
    let b = q.input("inputB", schema.clone(), pb);
    let c = q.input("inputC", schema, pc);
    let trips = q.concat(&[a, b, c]);
    let paid = q.filter(trips, Expr::col("price").gt(Expr::lit(0)));
    let proj = q.project(paid, &["companyID", "price"]);
    let revenue = q.aggregate(proj, "local_rev", AggFunc::Sum, &["companyID"], "price");
    let squared = q.multiply(
        revenue,
        "rev_sq",
        vec![Operand::col("local_rev"), Operand::col("local_rev")],
    );
    let hhi_numerator = q.aggregate_scalar(squared, "hhi_numerator", AggFunc::Sum, "rev_sq");
    q.collect(hhi_numerator, &[pa]);
    q.build().expect("well formed")
}

fn main() {
    let total_trips = 6_000;
    let mut gen = TaxiGenerator::new(2024);
    let parts = gen.split_across_parties(total_trips, 3);
    let reference_hhi = TaxiGenerator::reference_hhi(&parts);

    let mut inputs = HashMap::new();
    for (name, rel) in ["inputA", "inputB", "inputC"].iter().zip(parts.iter()) {
        inputs.insert(name.to_string(), rel.clone());
    }

    let query = build_query();
    let optimized_cfg = ConclaveConfig::standard().with_sequential_local();
    let baseline_cfg = ConclaveConfig::mpc_only().with_sequential_local();

    for (name, config) in [("Conclave", optimized_cfg), ("MPC only", baseline_cfg)] {
        let plan = compile(&query, &config).expect("compiles");
        let mut driver = Driver::new(config.clone());
        let report = driver.run(&plan, &inputs).expect("runs");
        let output = report.output_for(1).expect("party 1 receives the output");
        // The revealed value is the sum of squared revenues; dividing by the
        // squared total revenue (known to the recipient from its own output)
        // yields the HHI. That division is exactly the kind of reversible
        // post-processing Conclave pushes out of MPC.
        let sum_sq = output.rows[0][0].as_float().unwrap_or(0.0);
        let total_rev: f64 = parts
            .iter()
            .flat_map(|p| p.rows.iter())
            .filter(|r| r[1].as_int().unwrap_or(0) > 0)
            .map(|r| r[1].as_int().unwrap_or(0) as f64)
            .sum();
        let hhi = sum_sq / (total_rev * total_rev);
        println!("== {name} ==");
        println!("  operators under MPC : {}", plan.mpc_node_count());
        println!(
            "  simulated runtime   : {:.1} s",
            report.total_time().as_secs_f64()
        );
        println!("  HHI                 : {hhi:.4} (cleartext reference {reference_hhi:.4})");
        assert!(
            (hhi - reference_hhi).abs() < 1e-9,
            "HHI must match the reference"
        );
    }

    // Paper-scale projection (Figure 4): what would happen at 1.3 B trips?
    let stats = WorkloadStats {
        filter_selectivity: 0.99,
        max_groups: Some(12),
        ..Default::default()
    };
    let plan = compile(&query, &ConclaveConfig::standard()).expect("compiles");
    let estimator = conclave_core::CardinalityEstimator::new(ConclaveConfig::standard(), stats);
    let mut big = HashMap::new();
    big.insert("inputA".to_string(), 433_000_000u64);
    big.insert("inputB".to_string(), 433_000_000u64);
    big.insert("inputC".to_string(), 434_000_000u64);
    let estimate = estimator.estimate(&plan, &big).expect("estimate");
    println!(
        "\nAt 1.3 billion trips, the compiled Conclave plan is estimated to take {:.0} s (~{:.0} min).",
        estimate.total_time().as_secs_f64(),
        estimate.total_time().as_secs_f64() / 60.0
    );
}
