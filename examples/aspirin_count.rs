//! The aspirin-count medical-research query of §7.4, comparing Conclave with
//! the SMCQL baseline on the same synthetic HealthLNK-style data.
//!
//! Two hospitals hold diagnoses and medications keyed by (public) patient
//! IDs; the query counts distinct patients diagnosed with heart disease who
//! were prescribed aspirin. Patient IDs being public lets Conclave use its
//! public join; diagnosis and medication codes stay private.
//!
//! The query is written twice — in the Conclave SQL dialect (see
//! `docs/SQL.md`) and through the programmatic `QueryBuilder` — and the two
//! must agree on the count.
//!
//! Run with: `cargo run --release --example aspirin_count`

// Demo/test target: panicking on bad setup is the desired behavior here
// (the workspace-level clippy::unwrap_used lint targets library code).
#![allow(clippy::unwrap_used)]

use conclave::prelude::*;
use conclave_data::health::{ASPIRIN, HEART_DISEASE};
use conclave_ir::expr::Expr;
use conclave_smcql::queries as smcql;
use conclave_smcql::SmcqlPlanner;
use std::collections::HashMap;

/// The aspirin-count query as SQL. The `{hd}` / `{asp}` placeholders are
/// filled with the HealthLNK-style diagnosis and medication codes.
fn aspirin_sql() -> String {
    format!(
        "CREATE TABLE diagnoses1 (patientID INT PUBLIC, diagnosis INT)
             WITH OWNER p1 AT 'hospital-a.org';
         CREATE TABLE diagnoses2 (patientID INT PUBLIC, diagnosis INT)
             WITH OWNER p2 AT 'hospital-b.org';
         CREATE TABLE medications1 (patientID INT PUBLIC, medication INT)
             WITH OWNER p1 AT 'hospital-a.org';
         CREATE TABLE medications2 (patientID INT PUBLIC, medication INT)
             WITH OWNER p2 AT 'hospital-b.org';

         SELECT COUNT(DISTINCT patientID) AS num_patients
         FROM (diagnoses1 UNION ALL diagnoses2)
              JOIN (medications1 UNION ALL medications2) ON patientID = patientID
         WHERE diagnosis = {hd} AND medication = {asp}
         REVEAL TO p1;",
        hd = HEART_DISEASE,
        asp = ASPIRIN,
    )
}

fn build_query() -> conclave_ir::builder::Query {
    let hospital_a = Party::new(1, "hospital-a.org");
    let hospital_b = Party::new(2, "hospital-b.org");
    let diag_schema = Schema::new(vec![
        ColumnDef::public("patientID", DataType::Int),
        ColumnDef::new("diagnosis", DataType::Int),
    ]);
    let med_schema = Schema::new(vec![
        ColumnDef::public("patientID", DataType::Int),
        ColumnDef::new("medication", DataType::Int),
    ]);
    let mut q = QueryBuilder::new();
    let d1 = q.input("diagnoses1", diag_schema.clone(), hospital_a.clone());
    let d2 = q.input("diagnoses2", diag_schema, hospital_b.clone());
    let m1 = q.input("medications1", med_schema.clone(), hospital_a.clone());
    let m2 = q.input("medications2", med_schema, hospital_b);
    let diag = q.concat(&[d1, d2]);
    let meds = q.concat(&[m1, m2]);
    // Join on the public patient IDs first (enabling the public join), then
    // filter on the private diagnosis and medication codes.
    let joined = q.join(diag, meds, &["patientID"], &["patientID"]);
    let matching = q.filter(
        joined,
        Expr::col("diagnosis")
            .eq(Expr::lit(HEART_DISEASE))
            .and(Expr::col("medication").eq(Expr::lit(ASPIRIN))),
    );
    let count = q.distinct_count(matching, "patientID", "num_patients");
    q.collect(count, &[hospital_a]);
    q.build().expect("well formed")
}

fn main() {
    let rows_per_hospital = 1_000;
    let mut gen = HealthGenerator::new(17);
    let d0 = gen.diagnoses(0, rows_per_hospital);
    let d1 = gen.diagnoses(1, rows_per_hospital);
    let m0 = gen.medications(0, rows_per_hospital);
    let m1 = gen.medications(1, rows_per_hospital);
    let reference = HealthGenerator::reference_aspirin_count(
        &[d0.clone(), d1.clone()],
        &[m0.clone(), m1.clone()],
    );

    // --- Conclave, from SQL ---
    let sql = aspirin_sql();
    let sql_report = Session::new(ConclaveConfig::standard().with_sequential_local())
        .bind("diagnoses1", d0.clone())
        .bind("diagnoses2", d1.clone())
        .bind("medications1", m0.clone())
        .bind("medications2", m1.clone())
        .run_sql(&sql)
        .expect("SQL query runs");
    let sql_count = sql_report
        .output_for(1)
        .and_then(|r| r.scalar().cloned())
        .and_then(|v| v.as_int())
        .expect("single count value");

    // --- Conclave, from the programmatic builder (must agree) ---
    let query = build_query();
    let config = ConclaveConfig::standard().with_sequential_local();
    let plan = compile(&query, &config).expect("compiles");
    let mut inputs = HashMap::new();
    inputs.insert("diagnoses1".to_string(), d0.clone());
    inputs.insert("diagnoses2".to_string(), d1.clone());
    inputs.insert("medications1".to_string(), m0.clone());
    inputs.insert("medications2".to_string(), m1.clone());
    let mut driver = Driver::new(config);
    let report = driver.run(&plan, &inputs).expect("runs");
    let conclave_count = report
        .output_for(1)
        .and_then(|r| r.scalar().cloned())
        .and_then(|v| v.as_int())
        .expect("single count value");
    assert_eq!(
        sql_count, conclave_count,
        "SQL and builder plans must count the same patients"
    );

    // --- SMCQL baseline ---
    let mut planner = SmcqlPlanner::default_paper_setup();
    let smcql_run = smcql::aspirin_count(&mut planner, [&d0, &d1], [&m0, &m1]).expect("runs");

    println!("cleartext reference count : {reference}");
    println!("Conclave                  : {conclave_count} patients, {:.1} s simulated, {} MPC operators",
        report.total_time().as_secs_f64(), plan.mpc_node_count());
    println!(
        "SMCQL                     : {} patients, {:.1} s simulated",
        smcql_run.result,
        smcql_run.total_time().as_secs_f64()
    );
    assert_eq!(conclave_count, reference);
    assert_eq!(smcql_run.result, reference);
    assert!(
        report.total_time() < smcql_run.total_time(),
        "Conclave should outperform SMCQL on this query (Figure 7a)"
    );
}
