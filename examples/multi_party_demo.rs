//! Real multi-party execution: the same query over the in-process channel
//! mesh and over genuine TCP sockets on localhost.
//!
//! Three things are demonstrated:
//!
//! 1. the **channel-transport one-liner** — switching a [`Session`] to the
//!    distributed party runtime is a single `.with_channel_runtime()` call;
//! 2. **two TCP parties on localhost** — a raw two-party share/multiply/open
//!    exchange over real sockets, printing the observed per-link traffic;
//! 3. a full query over the **TCP party runtime**, whose `RunReport` carries
//!    measured (not modeled) per-link bytes and rounds.
//!
//! Run with: `cargo run --example multi_party_demo [channel|tcp|both]`
//! (default: `both`; CI runs `channel` as a smoke test).

// Demo/test target: panicking on bad setup is the desired behavior here
// (the workspace-level clippy::unwrap_used lint targets library code).
#![allow(clippy::unwrap_used)]

use conclave::mpc::runtime::PartySession;
use conclave::mpc::AuthShare;
use conclave::net::{merge_mesh_stats, TcpTransport, Transport};
use conclave::prelude::*;

fn demo_query() -> (conclave::ir::builder::Query, Party) {
    let org_a = Party::new(1, "mpc.org-a.example");
    let org_b = Party::new(2, "mpc.org-b.example");
    let schema = Schema::new(vec![
        ColumnDef::new("region", DataType::Int),
        ColumnDef::new("amount", DataType::Int),
    ]);
    let mut q = QueryBuilder::new();
    let sales_a = q.input("sales_a", schema.clone(), org_a.clone());
    let sales_b = q.input("sales_b", schema, org_b);
    let all_sales = q.concat(&[sales_a, sales_b]);
    let by_region = q.aggregate(all_sales, "total", AggFunc::Sum, &["region"], "amount");
    q.collect(by_region, std::slice::from_ref(&org_a));
    (q.build().expect("query is well formed"), org_a)
}

fn bind(session: Session) -> Session {
    session
        .bind(
            "sales_a",
            Relation::from_ints(
                &["region", "amount"],
                &[vec![1, 100], vec![2, 20], vec![1, 3]],
            ),
        )
        .bind(
            "sales_b",
            Relation::from_ints(&["region", "amount"], &[vec![2, 7], vec![3, 50]]),
        )
}

fn print_measured(report: &RunReport) {
    assert!(report.net_measured, "party runtime must measure traffic");
    println!(
        "  measured: {} bytes over {} messages; {} rounds/query on {} \
         transport mesh build(s)",
        report.net.total_bytes(),
        report.net.total_messages(),
        report.rounds_per_query(),
        report.mesh_builds(),
    );
    for ((from, to), link) in &report.net.links {
        println!(
            "    link P{from} -> P{to}: {} B / {} msgs",
            link.bytes, link.messages
        );
    }
}

/// The channel-transport one-liner: same session API, real per-party
/// protocol endpoints on an in-process mesh.
fn run_channel() {
    println!("=== channel party runtime (3 computing parties, 1 thread each) ===");
    let (query, regulator) = demo_query();
    let report = bind(Session::new(
        ConclaveConfig::standard()
            .with_sequential_local()
            .with_channel_runtime(),
    ))
    .run(&query)
    .expect("channel-transport run succeeds");
    let out = report
        .output_for(regulator.id)
        .expect("regulator receives the result");
    println!("  per-region totals:\n{}", indent(&out.to_string()));
    print_measured(&report);
}

/// A raw two-party exchange over genuine TCP sockets: share, multiply with a
/// Beaver triple (one real message round), and open.
fn run_tcp_two_party() {
    println!("=== two TCP parties on localhost: share / multiply / open ===");
    let mesh = TcpTransport::localhost_mesh(2).expect("localhost mesh");
    let results: Vec<(i64, conclave::net::NetStats)> = std::thread::scope(|s| {
        let handles: Vec<_> = mesh
            .into_iter()
            .map(|transport| {
                s.spawn(move || {
                    let mut sess = PartySession::new(&transport, 2024);
                    let mut proto = sess.step(0);
                    // Party 0 contributes 21, party 1 contributes 2.
                    let party = proto.party();
                    let mine0 = (party == 0).then_some([21i64]);
                    let x = proto
                        .input_column(0, mine0.as_ref().map(|a| a.as_slice()), 1)
                        .expect("share x");
                    let mine1 = (party == 1).then_some([2i64]);
                    let y = proto
                        .input_column(1, mine1.as_ref().map(|a| a.as_slice()), 1)
                        .expect("share y");
                    let product: AuthShare = proto.mul(x[0], y[0]).expect("beaver multiply");
                    let opened = proto.open(product).expect("open");
                    (opened, transport.stats())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (party, (value, _)) in results.iter().enumerate() {
        println!("  party {party} opened 21 x 2 = {value}");
        assert_eq!(*value, 42);
    }
    let merged = merge_mesh_stats(results.into_iter().map(|(_, s)| s));
    println!(
        "  observed on the wire: {} bytes, {} messages, {} rounds",
        merged.total_bytes(),
        merged.total_messages(),
        merged.rounds
    );
}

/// The full query over the TCP party runtime.
fn run_tcp_query() {
    println!("=== TCP party runtime: full query, measured RunReport ===");
    let (query, regulator) = demo_query();
    let report = bind(Session::new(
        ConclaveConfig::standard()
            .with_sequential_local()
            .with_tcp_runtime(),
    ))
    .run(&query)
    .expect("tcp-transport run succeeds");
    let out = report
        .output_for(regulator.id)
        .expect("regulator receives the result");
    println!("  per-region totals:\n{}", indent(&out.to_string()));
    print_measured(&report);

    // Differential check: the simulated oracle reveals identical cells.
    let oracle = bind(Session::new(
        ConclaveConfig::standard().with_sequential_local(),
    ))
    .run(&query)
    .expect("simulated run succeeds");
    assert!(out.same_rows_unordered(oracle.output_for(regulator.id).unwrap()));
    println!("  result is cell-identical to the single-process oracle");
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "both".into());
    match mode.as_str() {
        "channel" => run_channel(),
        "tcp" => {
            run_tcp_two_party();
            run_tcp_query();
        }
        "both" => {
            run_channel();
            run_tcp_two_party();
            run_tcp_query();
        }
        other => {
            eprintln!("unknown mode `{other}`; use channel, tcp or both");
            std::process::exit(2);
        }
    }
}
