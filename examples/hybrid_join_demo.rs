//! A close-up of the hybrid join protocol of §5.3 (Figure 3).
//!
//! This example runs the protocol step by step over a small input, printing
//! the primitive counts of the MPC side, and contrasts them with a standard
//! Cartesian-product MPC join — the asymptotic difference
//! (`𝒪((n+m)·log(n+m))` vs `𝒪(n²)`) that drives Figure 5a.
//!
//! Run with: `cargo run --release --example hybrid_join_demo`

use conclave::prelude::*;
use conclave_core::hybrid_exec;
use conclave_ir::ops::{JoinKind, Operator};
use conclave_mpc::backend::MpcEngine;

fn main() {
    // Two parties' relations sharing the `key` column; party 1 is trusted to
    // see the key values (it is the STP).
    let mut gen = conclave_data::SyntheticGenerator::new(3);
    let (left, right) = gen.overlapping_pair(300, 0.5);

    // Hybrid join.
    let mut engine = MpcEngine::new(MpcBackendConfig::sharemind());
    let outcome = hybrid_exec::hybrid_join(
        &mut engine,
        &ColumnarExecutor::new(),
        &Table::from_rows(left.clone()),
        &Table::from_rows(right.clone()),
        &["key".to_string()],
        &["key".to_string()],
        1,
    )
    .expect("hybrid join runs");

    // Standard MPC join for comparison.
    let mut engine2 = MpcEngine::new(MpcBackendConfig::sharemind());
    let (mpc_result, mpc_stats) = engine2
        .execute_op(
            &Operator::Join {
                left_keys: vec!["key".into()],
                right_keys: vec!["key".into()],
                kind: JoinKind::Inner,
            },
            &[&left, &right],
        )
        .expect("MPC join runs");

    assert!(outcome.result.as_rows().same_rows_unordered(&mpc_result));
    println!(
        "both protocols produce the same {} joined rows\n",
        mpc_result.num_rows()
    );

    println!("hybrid join (STP = P{}):", outcome.revealed_to);
    println!(
        "  revealed to STP      : {:?} (shuffled order only)",
        outcome.revealed_columns
    );
    println!(
        "  oblivious shuffles   : {} elements",
        outcome.mpc_stats.counts.shuffled_elems
    );
    println!(
        "  Beaver mults (select): {}",
        outcome.mpc_stats.counts.mults
    );
    println!(
        "  equality tests       : {}",
        outcome.mpc_stats.counts.equalities
    );
    println!(
        "  simulated MPC time   : {:.2} s",
        outcome.mpc_stats.simulated_time.as_secs_f64()
    );
    println!(
        "  simulated STP time   : {:.2} s",
        outcome.stp_time.as_secs_f64()
    );

    println!("\nstandard MPC join:");
    println!(
        "  equality tests       : {} (= n × m)",
        mpc_stats.counts.equalities
    );
    println!(
        "  simulated MPC time   : {:.2} s",
        mpc_stats.simulated_time.as_secs_f64()
    );

    let speedup =
        mpc_stats.simulated_time.as_secs_f64() / outcome.mpc_stats.simulated_time.as_secs_f64();
    println!("\nhybrid join speedup on this input: {speedup:.1}x (grows with input size)");
}
