//! The standalone Conclave dealer: pregenerates the offline phase.
//!
//! SPDZ-style MPC splits into an **offline phase** — a dealer generates
//! authenticated Beaver triples, binary triples, shared bits, daBits, and
//! input masks, all under one global MAC key α — and an **online phase**
//! that only consumes that material. This binary is the offline phase as a
//! program: it writes one `party-{i}.dealer` file per computing party, which
//! a distributed run then loads via
//! [`ConclaveConfig::with_dealer_files`](conclave::prelude::ConclaveConfig::with_dealer_files).
//!
//! Run with:
//!
//! ```text
//! cargo run --example conclave_dealer -- [DIR] [--seed N] [--parties N] \
//!     [--triples N] [--bit-triples N] [--shared-bits N] [--dabits N] \
//!     [--input-masks N] [--demo]
//! ```
//!
//! With no arguments the dealer writes a default-sized stock for 3 parties
//! into a temporary directory and (as `--demo` does) runs an end-to-end
//! query over the channel party runtime that consumes the files, printing
//! the measured online traffic and the deferred-MAC-check count.

// Demo/CLI target: panicking on bad arguments is the desired behavior here
// (the workspace-level clippy::unwrap_used lint targets library code).
#![allow(clippy::unwrap_used)]

use conclave::mpc::dealer::MaterialSpec;
use conclave::prelude::*;
use std::path::PathBuf;

struct Args {
    dir: PathBuf,
    seed: u64,
    parties: u32,
    spec: MaterialSpec,
    demo: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        dir: std::env::temp_dir().join("conclave-dealer-demo"),
        seed: 42,
        parties: 3,
        spec: MaterialSpec::default(),
        demo: std::env::args().len() <= 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let num = |it: &mut dyn Iterator<Item = String>| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("flag {a} needs a numeric argument"))
        };
        match a.as_str() {
            "--seed" => args.seed = num(&mut it) as u64,
            "--parties" => args.parties = num(&mut it) as u32,
            "--triples" => args.spec.triples = num(&mut it),
            "--bit-triples" => args.spec.bit_triples = num(&mut it),
            "--shared-bits" => args.spec.shared_bits = num(&mut it),
            "--dabits" => args.spec.dabits = num(&mut it),
            "--input-masks" => args.spec.input_masks = num(&mut it),
            "--demo" => args.demo = true,
            dir if !dir.starts_with('-') => args.dir = PathBuf::from(dir),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    std::fs::create_dir_all(&args.dir).unwrap();
    let files = conclave::mpc::dealer::write_party_files(
        &args.dir,
        args.seed,
        args.parties as usize,
        args.spec,
    )
    .unwrap();
    println!(
        "dealt {} triples, {} bit-triples, {} shared bits, {} daBits, \
         {} input masks/party (seed {}):",
        args.spec.triples,
        args.spec.bit_triples,
        args.spec.shared_bits,
        args.spec.dabits,
        args.spec.input_masks,
        args.seed
    );
    for f in &files {
        let len = std::fs::metadata(f).map(|m| m.len()).unwrap_or(0);
        println!("  {} ({len} B)", f.display());
    }

    if args.demo {
        demo_online_run(&args);
    }
}

/// The online phase: a query whose MPC steps load the files written above.
fn demo_online_run(args: &Args) {
    let pa = Party::new(1, "mpc.a.org");
    let pb = Party::new(2, "mpc.b.org");
    let report = Session::new(
        ConclaveConfig::standard()
            .with_sequential_local()
            .with_channel_runtime()
            .with_dealer_files(&args.dir),
    )
    .bind(
        "ta",
        Relation::from_ints(&["key", "val"], &[vec![1, 2], vec![2, 7], vec![1, 4]]),
    )
    .bind("tb", Relation::from_ints(&["key", "val"], &[vec![1, 3]]))
    .run_sql(
        "CREATE TABLE ta (key INT, val INT) WITH OWNER p1;
         CREATE TABLE tb (key INT, val INT) WITH OWNER p2;
         SELECT key, SUM(val) AS total FROM (ta UNION ALL tb)
         GROUP BY key
         REVEAL TO p1;",
    )
    .unwrap();
    let _ = (&pa, &pb);
    println!("\nonline run over the pregenerated material:");
    println!(
        "  measured traffic: {} B in {} rounds, {} deferred MAC check(s)",
        report.net.total_bytes(),
        report.net.rounds,
        report.mpc_stats.counts.mac_checks
    );
    println!("  output for P1:");
    for row in &report.output_for(1).unwrap().rows {
        println!("    {row:?}");
    }
}
