//! Quickstart: compile and run a small two-party query end to end.
//!
//! Two organizations each hold a `(region, amount)` sales relation. A
//! regulator (party 1, who also contributes data here) should learn the total
//! amount per region — and nothing else. Conclave compiles the query so that
//! only the small cross-party aggregation runs under MPC.
//!
//! Run with: `cargo run --example quickstart`

use conclave::prelude::*;

fn main() {
    // 1. Declare the parties and their input schemas.
    let org_a = Party::new(1, "mpc.org-a.example");
    let org_b = Party::new(2, "mpc.org-b.example");
    let schema = Schema::new(vec![
        ColumnDef::new("region", DataType::Int),
        ColumnDef::new("amount", DataType::Int),
    ]);

    // 2. Write the query as if all data were in one place (Listing 1 style).
    let mut q = QueryBuilder::new();
    let sales_a = q.input("sales_a", schema.clone(), org_a.clone());
    let sales_b = q.input("sales_b", schema, org_b.clone());
    let all_sales = q.concat(&[sales_a, sales_b]);
    let by_region = q.aggregate(all_sales, "total", AggFunc::Sum, &["region"], "amount");
    q.collect(by_region, std::slice::from_ref(&org_a));
    let query = q.build().expect("query is well formed");

    // 3. Compile. The plan shows which operators stay under MPC.
    let config = ConclaveConfig::standard().with_sequential_local();
    let plan = compile(&query, &config).expect("compiles");
    println!("=== compiled plan ===\n{}", plan.render());
    println!("transformations applied:");
    for t in &plan.transformations {
        println!("  - {t}");
    }
    println!("operators under MPC: {}\n", plan.mpc_node_count());

    // 4. Bind each party's private data and execute through the `Session`
    //    facade. Bindings accept row relations, columnar relations, or
    //    `Table`s; the driver moves everything through the unified `Table`
    //    data plane.
    let report = Session::new(config)
        .bind(
            "sales_a",
            Relation::from_ints(
                &["region", "amount"],
                &[vec![1, 100], vec![2, 50], vec![1, 25]],
            ),
        )
        .bind(
            "sales_b",
            Relation::from_ints(&["region", "amount"], &[vec![1, 10], vec![3, 70]]),
        )
        .run_plan(&plan)
        .expect("execution succeeds");

    // 5. Party 1 receives the result; the report shows the cost breakdown and
    //    the leakage audit.
    println!("=== result delivered to {org_a} ===");
    println!(
        "{}",
        report.output_for(1).expect("party 1 is the recipient")
    );
    println!("{report}");
}
