//! Quickstart: compile and run a small two-party query end to end.
//!
//! Two organizations each hold a `(region, amount)` sales relation. A
//! regulator (party 1, who also contributes data here) should learn the total
//! amount per region — and nothing else. The query is written in the Conclave
//! SQL dialect (see `docs/SQL.md`); Conclave compiles it so that only the
//! small cross-party aggregation runs under MPC.
//!
//! Run with: `cargo run --example quickstart`

use conclave::prelude::*;

/// The analyst-facing query: table declarations carry the ownership
/// annotations, `REVEAL TO` names the output recipient.
const SALES_SQL: &str = "
    CREATE TABLE sales_a (region INT, amount INT) WITH OWNER p1 AT 'mpc.org-a.example';
    CREATE TABLE sales_b (region INT, amount INT) WITH OWNER p2 AT 'mpc.org-b.example';

    SELECT region, SUM(amount) AS total
    FROM (sales_a UNION ALL sales_b)
    GROUP BY region
    REVEAL TO p1;
";

fn main() {
    // 1. Bind each party's private data to a session.
    let config = ConclaveConfig::standard().with_sequential_local();
    let session = Session::new(config.clone())
        .bind(
            "sales_a",
            Relation::from_ints(
                &["region", "amount"],
                &[vec![1, 100], vec![2, 50], vec![1, 25]],
            ),
        )
        .bind(
            "sales_b",
            Relation::from_ints(&["region", "amount"], &[vec![1, 10], vec![3, 70]]),
        );

    // 2. Lower the SQL to a query DAG and compile it. The plan shows which
    //    operators stay under MPC after the pass pipeline ran.
    let query = session.sql_query(SALES_SQL).expect("SQL parses and binds");
    let plan = compile(&query, &config).expect("compiles");
    println!("=== compiled plan ===\n{}", plan.render());
    println!("transformations applied:");
    for t in &plan.transformations {
        println!("  - {t}");
    }
    println!("operators under MPC: {}\n", plan.mpc_node_count());

    // 3. Execute. (`session.run_sql(SALES_SQL)` does steps 2 and 3 in one
    //    call; they are split here to show the plan.)
    let report = session.run_plan(&plan).expect("execution succeeds");

    // 4. Party 1 receives the result; the report shows the cost breakdown and
    //    the leakage audit.
    println!("=== result delivered to party 1 ===");
    println!(
        "{}",
        report.output_for(1).expect("party 1 is the recipient")
    );
    println!("{report}");

    // The same query can be built programmatically — the SQL frontend lowers
    // to exactly this builder DAG.
    let org_a = Party::new(1, "mpc.org-a.example");
    let org_b = Party::new(2, "mpc.org-b.example");
    let schema = Schema::new(vec![
        ColumnDef::new("region", DataType::Int),
        ColumnDef::new("amount", DataType::Int),
    ]);
    let mut q = QueryBuilder::new();
    let sales_a = q.input("sales_a", schema.clone(), org_a.clone());
    let sales_b = q.input("sales_b", schema, org_b);
    let all_sales = q.concat(&[sales_a, sales_b]);
    let by_region = q.aggregate(all_sales, "total", AggFunc::Sum, &["region"], "amount");
    q.collect(by_region, std::slice::from_ref(&org_a));
    let built = q.build().expect("query is well formed");
    let builder_report = session.run(&built).expect("builder query runs");
    assert_eq!(
        report.output_for(1),
        builder_report.output_for(1),
        "SQL and builder queries agree"
    );
    println!("SQL and programmatic builder produced identical results.");
}
