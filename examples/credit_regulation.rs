//! The credit-card regulation scenario of §2.1, Listing 1 and §7.3.
//!
//! A government regulator holds demographics (SSN → ZIP); two credit agencies
//! hold SSN-keyed credit scores. The regulator should learn the average score
//! per ZIP code. The agencies are willing to let the *regulator* (and only
//! the regulator) see their SSN columns — the trust annotation that enables
//! Conclave's hybrid join and hybrid aggregation.
//!
//! Run with: `cargo run --release --example credit_regulation`

// Demo/test target: panicking on bad setup is the desired behavior here
// (the workspace-level clippy::unwrap_used lint targets library code).
#![allow(clippy::unwrap_used)]

use conclave::prelude::*;
use conclave_ir::ops::Operand;
use conclave_ir::trust::TrustSet;
use std::collections::HashMap;

fn build_query(trust_regulator_with_ssn: bool) -> conclave_ir::builder::Query {
    let regulator = Party::new(1, "mpc.ftc.gov");
    let agency_a = Party::new(2, "mpc.a.com");
    let agency_b = Party::new(3, "mpc.b.cash");
    let ssn_trust = if trust_regulator_with_ssn {
        TrustSet::of([1])
    } else {
        TrustSet::private()
    };
    let demo_schema = Schema::new(vec![
        ColumnDef::new("ssn", DataType::Int),
        ColumnDef::with_trust("zip", DataType::Int, TrustSet::of([1])),
    ]);
    let agency_schema = Schema::new(vec![
        ColumnDef::with_trust("ssn", DataType::Int, ssn_trust),
        ColumnDef::new("score", DataType::Int),
    ]);
    let mut q = QueryBuilder::new();
    let demographics = q.input("demographics", demo_schema, regulator.clone());
    let scores1 = q.input("scores1", agency_schema.clone(), agency_a);
    let scores2 = q.input("scores2", agency_schema, agency_b);
    let scores = q.concat(&[scores1, scores2]);
    let joined = q.join(demographics, scores, &["ssn"], &["ssn"]);
    let by_zip = q.count(joined, "count", &["zip"]);
    let totals = q.aggregate(joined, "total", AggFunc::Sum, &["zip"], "score");
    let combined = q.join(totals, by_zip, &["zip"], &["zip"]);
    let avg = q.divide(
        combined,
        "avg_score",
        Operand::col("total"),
        Operand::col("count"),
    );
    q.collect(avg, &[regulator]);
    q.build().expect("well formed")
}

fn main() {
    let population = 2_000;
    let mut gen = CreditGenerator::new(99);
    let demographics = gen.demographics(population);
    let scores1 = gen.agency_scores(population);
    let scores2 = gen.agency_scores(population);
    let reference = CreditGenerator::reference_average_by_zip(
        &demographics,
        &[scores1.clone(), scores2.clone()],
    );

    let mut inputs = HashMap::new();
    inputs.insert("demographics".to_string(), demographics);
    inputs.insert("scores1".to_string(), scores1);
    inputs.insert("scores2".to_string(), scores2);

    for (name, annotated) in [
        ("with SSN trust annotation", true),
        ("without annotation", false),
    ] {
        let query = build_query(annotated);
        let config = ConclaveConfig::standard().with_sequential_local();
        let plan = compile(&query, &config).expect("compiles");
        let mut driver = Driver::new(config);
        let report = driver.run(&plan, &inputs).expect("runs");
        let output = report.output_for(1).expect("the regulator gets the output");

        // Check a few averages against the cleartext reference.
        let mut checked = 0;
        for row in &output.rows {
            let zip = row[output.schema.index_of("zip").unwrap()]
                .as_int()
                .unwrap();
            let avg = row[output.schema.index_of("avg_score").unwrap()]
                .as_float()
                .unwrap();
            if let Some((_, expected)) = reference.iter().find(|(z, _)| *z == zip) {
                assert!(
                    (avg - expected).abs() < 1e-6,
                    "zip {zip}: {avg} vs {expected}"
                );
                checked += 1;
            }
        }
        println!("== {name} ==");
        println!("  hybrid operators      : {}", plan.hybrid_node_count());
        println!("  operators under MPC   : {}", plan.mpc_node_count());
        println!(
            "  simulated runtime     : {:.1} s",
            report.total_time().as_secs_f64()
        );
        println!("  ZIP averages verified : {checked}");
        println!("  leakage audit entries : {}", report.leakage.len());
        for event in report.leakage.iter().take(3) {
            println!(
                "    - to P{}: {} ({})",
                event.to_party, event.what, event.justification
            );
        }
        println!();
    }
}
