//! Quickstart for the multi-tenant query service in `conclave-server`.
//!
//! A long-lived deployment amortizes per-query setup three ways: a shared
//! dealer pool keeps MACed preprocessed material ready ahead of demand, each
//! tenant's persistent session keeps one worker mesh alive across queries,
//! and compiled leakage-certified plans are cached by (normalized SQL,
//! catalog fingerprint). This example starts such a server in process,
//! serves two tenants — one through the in-process [`ServerHandle`], one
//! over the framed wire protocol — and prints the cache/pool counters that
//! show the amortization actually happening.
//!
//! Run with: `cargo run --release --example conclave_serve`

// Demo/test target: panicking on bad setup is the desired behavior here
// (the workspace-level clippy::unwrap_used lint targets library code).
#![allow(clippy::unwrap_used)]

use conclave::net::ChannelTransport;
use conclave::prelude::*;
use conclave::server::query_remote;
use conclave_mpc::dealer::MaterialSpec;

const SUM_SQL: &str = "CREATE TABLE ta (k INT, v INT) WITH OWNER p1;
     CREATE TABLE tb (k INT, v INT) WITH OWNER p2;
     SELECT k, SUM(v) AS total FROM (ta UNION ALL tb)
     GROUP BY k
     REVEAL TO p1;";

fn main() {
    // The dealer pool runs the offline phase in the background: 3 parties
    // (the size of the MPC backend's mesh), two bundles of material deep.
    let spec = MaterialSpec {
        triples: 512,
        bit_triples: 1024,
        shared_bits: 512,
        dabits: 128,
        input_masks: 256,
    };
    let pool = MaterialPool::start(7, 3, spec, 2);
    let config = ServerConfig::new(
        ConclaveConfig::standard()
            .with_sequential_local()
            .with_channel_runtime(),
    )
    .with_pool(pool)
    .with_limits(AdmissionLimits {
        max_in_flight: 2,
        queue_depth: 8,
    });
    let server = ConclaveServer::start(config);

    // Tenant "acme" queries in process through the handle.
    server.register_tenant("acme", Catalog::new()).unwrap();
    server
        .bind(
            "acme",
            "ta",
            Relation::from_ints(&["k", "v"], &[vec![1, 10], vec![2, 20]]),
        )
        .unwrap();
    server
        .bind(
            "acme",
            "tb",
            Relation::from_ints(&["k", "v"], &[vec![1, 5]]),
        )
        .unwrap();

    let first = server.query("acme", SUM_SQL).unwrap();
    let second = server.query("acme", SUM_SQL).unwrap();
    println!(
        "acme: first run cache_hit={}, second run cache_hit={}",
        first.cache_hit, second.cache_hit
    );
    let out = second.report.output_for(1).unwrap();
    println!("acme: SUM(v) per k -> {out:?}");

    // Tenant "globex" talks over the framed wire protocol. Any transport
    // works; here a channel pair stands in for a TCP link.
    server.register_tenant("globex", Catalog::new()).unwrap();
    server
        .bind(
            "globex",
            "ta",
            Relation::from_ints(&["k", "v"], &[vec![7, 100]]),
        )
        .unwrap();
    server
        .bind(
            "globex",
            "tb",
            Relation::from_ints(&["k", "v"], &[vec![7, 102]]),
        )
        .unwrap();

    let mut link = ChannelTransport::mesh(2);
    let client_end = link.pop().unwrap();
    let server_end = link.pop().unwrap();
    let listener = {
        let server = server.clone();
        std::thread::spawn(move || {
            // Serves queries on this link until the client disconnects.
            let _ = server.serve(&server_end);
        })
    };
    let outputs = query_remote(&client_end, "globex", SUM_SQL).unwrap();
    println!("globex (wire): outputs for p1 -> {:?}", outputs[&1]);

    // A query against an unregistered tenant comes back as a typed error.
    let err = query_remote(&client_end, "initech", SUM_SQL).unwrap_err();
    println!("initech (wire): rejected with {err}");
    drop(client_end);
    listener.join().unwrap();

    // The counters that make the serving layer worth having.
    let stats = server.stats();
    for (name, t) in &stats.tenants {
        println!(
            "tenant {name}: plans cached={} hits={} misses={} completed={} mesh_live={}",
            t.cached_plans, t.cache.hits, t.cache.misses, t.completed, t.mesh_live
        );
    }
    if let Some(pool) = &stats.pool {
        println!(
            "dealer pool: dealt={} taken={} starved={}",
            pool.dealt, pool.taken, pool.starved
        );
    }
}
